"""Ablation A1 — DtHeap shared counters versus naive per-edge counters.

DESIGN.md calls out the heap organisation of Section 5.2 as the load-bearing
design choice: without it, every update would touch every incident DT
instance (Θ(d) counter increments).  This ablation drives both trackers with
an identical update stream over a hub-heavy graph and compares both the
wall-clock time and the operation counts.
"""

from __future__ import annotations

import random

from repro.dt.tracker import NaiveTracker, UpdateTracker
from repro.instrumentation import OpCounter

FAN_OUT = 400
THRESHOLD = 800
UPDATES = 3000


def _drive(tracker) -> None:
    rng = random.Random(7)
    for v in range(1, FAN_OUT + 1):
        tracker.track(0, v, THRESHOLD)
    for _ in range(UPDATES):
        matured = tracker.register_update(0 if rng.random() < 0.7 else rng.randint(1, FAN_OUT))
        for edge in matured:
            tracker.track(*edge, THRESHOLD)


def test_ablation_heap_tracker(benchmark):
    counter = OpCounter()
    benchmark.pedantic(lambda: _drive(UpdateTracker(counter)), rounds=3, iterations=1)
    benchmark.extra_info["heap_ops"] = counter.get("heap_op") // 3


def test_ablation_naive_tracker(benchmark):
    counter = OpCounter()
    benchmark.pedantic(lambda: _drive(NaiveTracker(counter)), rounds=3, iterations=1)
    benchmark.extra_info["counter_increments"] = counter.get("counter_increment") // 3


def test_ablation_heap_does_asymptotically_less_work(benchmark):
    heap_counter, naive_counter = OpCounter(), OpCounter()

    def run_both():
        _drive(UpdateTracker(heap_counter))
        _drive(NaiveTracker(naive_counter))

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    heap_work = heap_counter.total()
    naive_work = naive_counter.total()
    print(f"\nAblation A1: heap tracker ops = {heap_work}, naive tracker ops = {naive_work}")
    assert heap_work * 5 < naive_work
