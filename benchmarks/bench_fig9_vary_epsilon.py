"""Figure 9 — overall running time versus the similarity threshold ε.

Paper shape: the dynamic algorithms are consistently far cheaper than the
baselines across the whole ε range, and their running time decreases
slightly as ε grows (larger ε ⇒ larger affordability thresholds under the
same ρ·ε product ⇒ fewer re-labellings).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_epsilon_sweep

EPSILONS = (0.1, 0.15, 0.2, 0.25, 0.3)


def test_fig9_running_time_vs_epsilon(benchmark, small_scale):
    rows = run_once(
        benchmark,
        lambda: run_epsilon_sweep(
            epsilons=EPSILONS,
            datasets=["dense"],
            algorithms=("DynELM", "pSCAN"),
            update_multiplier=small_scale,
            rho=0.8,
            max_samples=64,
        ),
        "Figure 9: overall running time vs epsilon",
    )
    dyn = {row["epsilon"]: row for row in rows if row["algorithm"] == "DynELM"}
    pscan = {row["epsilon"]: row for row in rows if row["algorithm"] == "pSCAN"}
    assert set(dyn) == set(EPSILONS)
    for epsilon in EPSILONS:
        assert dyn[epsilon]["ops"] < pscan[epsilon]["ops"]
    # larger epsilon gives DynELM at least as large affordability buffers:
    # the number of operations must not grow substantially with epsilon
    assert dyn[0.3]["ops"] <= dyn[0.1]["ops"] * 1.5
