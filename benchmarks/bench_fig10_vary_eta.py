"""Figure 10 — overall running time versus the deletion ratio η.

Paper shape: more deletions (larger η) make the DynELM/DynStrClu update
stream slightly more expensive (deletions shrink degrees, shrinking the
affordability thresholds), while the exact baselines get slightly cheaper
(smaller neighbourhoods to re-scan); the dynamic algorithms stay far ahead
throughout.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_eta_sweep

ETAS = (0.0, 0.01, 0.1, 0.2, 0.5)


def test_fig10_running_time_vs_eta(benchmark, small_scale):
    rows = run_once(
        benchmark,
        lambda: run_eta_sweep(
            etas=ETAS,
            datasets=["dense"],
            algorithms=("DynELM", "pSCAN"),
            update_multiplier=small_scale,
            epsilon=0.3,
            rho=0.8,
            max_samples=64,
        ),
        "Figure 10: overall running time vs eta",
    )
    dyn = {row["eta"]: row for row in rows if row["algorithm"] == "DynELM"}
    pscan = {row["eta"]: row for row in rows if row["algorithm"] == "pSCAN"}
    assert set(dyn) == set(ETAS)
    for eta in ETAS:
        assert dyn[eta]["ops"] < pscan[eta]["ops"]
