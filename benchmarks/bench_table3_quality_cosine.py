"""Table 3 — approximate clustering quality under cosine similarity.

Paper shape: quality remains high for ρ = 0.01 but degrades faster than
under Jaccard when ρ grows to 0.1 (Section 9.3 concludes Jaccard is the more
robust similarity for the ρ-approximate notion).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_quality_table
from repro.graph.similarity import SimilarityKind

DATASETS = ["slashdot", "google"]
RHOS = (0.01, 0.1)


def test_table3_quality_under_cosine(benchmark):
    rows = run_once(
        benchmark,
        lambda: run_quality_table(
            SimilarityKind.COSINE, rhos=RHOS, datasets=DATASETS, top_ks=(1, 5, 10, 20)
        ),
        "Table 3: approximate clustering quality (cosine)",
    )
    by_key = {(row["dataset"], row["rho"]): row for row in rows}
    for dataset in DATASETS:
        tight = by_key[(dataset, 0.01)]
        loose = by_key[(dataset, 0.1)]
        assert tight["ARI"] > 0.7
        assert tight["mislabelled_%"] < 20.0
        assert tight["ARI"] >= loose["ARI"] - 0.05


def test_jaccard_vs_cosine_comparison(benchmark):
    """Section 9.3: at matching ρ the Jaccard approximation is at least as
    faithful as the cosine approximation (ARI-wise) on the same datasets."""

    def both():
        jac = run_quality_table(
            SimilarityKind.JACCARD, rhos=(0.01,), datasets=DATASETS, top_ks=(1,)
        )
        cos = run_quality_table(
            SimilarityKind.COSINE, rhos=(0.01,), datasets=DATASETS, top_ks=(1,)
        )
        return jac + cos

    rows = run_once(benchmark, both, "Section 9.3: Jaccard vs cosine approximation quality")
    half = len(rows) // 2
    jaccard_mean_ari = sum(r["ARI"] for r in rows[:half]) / half
    cosine_mean_ari = sum(r["ARI"] for r in rows[half:]) / half
    # Note: the paper finds Jaccard strictly more faithful.  Under the
    # harness sample cap the Jaccard experiments run at a smaller ε (per the
    # paper's per-dataset defaults), which leaves proportionally more edges
    # inside the estimator's error band, so the comparison is asserted with a
    # tolerance (recorded in EXPERIMENTS.md).
    assert jaccard_mean_ari >= cosine_mean_ari - 0.25
    assert jaccard_mean_ari > 0.7 and cosine_mean_ari > 0.7
