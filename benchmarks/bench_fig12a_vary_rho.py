"""Figure 12(a) — DynELM overall running time versus the approximation slack ρ.

Paper shape: the running time is not very sensitive to ρ (the theoretical
dependence is logarithmic through the sample size and linear through 1/ρ in
the re-label frequency); larger ρ gives larger affordability buffers, so the
number of re-labelling invocations must decrease monotonically in ρ.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_rho_sweep

RHOS = (0.01, 0.1, 0.5)


def test_fig12a_running_time_vs_rho(benchmark, small_scale):
    rows = run_once(
        benchmark,
        lambda: run_rho_sweep(
            rhos=RHOS, datasets=["slashdot", "google"], update_multiplier=small_scale,
            epsilon=0.3,
        ),
        "Figure 12(a): DynELM overall running time vs rho",
    )
    for dataset in ("slashdot", "google"):
        per_rho = {row["rho"]: row for row in rows if row["dataset"] == dataset}
        assert set(per_rho) == set(RHOS)
        # a looser approximation re-labels edges less often
        assert (
            per_rho[0.5]["relabel_invocations"]
            <= per_rho[0.1]["relabel_invocations"]
            <= per_rho[0.01]["relabel_invocations"]
        )
