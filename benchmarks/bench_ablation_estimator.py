"""Ablation A3 — sampling estimator versus exact similarity inside DynELM.

The sampling estimator of Section 4 is what makes a single re-labelling
poly-logarithmic instead of Θ(d).  This ablation runs the same DynELM update
stream with (a) the sampling oracle and (b) the exact oracle, and compares
the neighbourhood-probe counts: with the exact oracle every re-labelling
scans a neighbourhood, with the sampling oracle it draws a bounded number of
samples regardless of degree.
"""

from __future__ import annotations

from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM
from repro.core.estimator import ExactSimilarityOracle
from repro.graph.generators import planted_partition_graph
from repro.instrumentation import OpCounter
from repro.workloads.updates import InsertionStrategy, generate_update_sequence

EDGES = planted_partition_graph(3, 50, 0.45, 0.01, seed=31)
WORKLOAD = generate_update_sequence(
    150, EDGES, int(0.3 * len(EDGES)), InsertionStrategy.DEGREE_RANDOM, eta=0.1, seed=32
)
PARAMS = StrCluParams(epsilon=0.4, mu=5, rho=0.5, delta_star=0.01, seed=1, max_samples=96)


def _run(use_exact_oracle: bool, counter: OpCounter) -> None:
    if use_exact_oracle:
        algo = DynELM(PARAMS, counter=counter)
        algo.oracle = ExactSimilarityOracle(algo.graph, PARAMS.similarity, counter)
        algo.strategy.oracle = algo.oracle
    else:
        algo = DynELM(PARAMS, counter=counter)
    for update in WORKLOAD.all_updates():
        algo.apply(update)


def test_ablation_sampling_estimator(benchmark):
    counter = OpCounter()
    benchmark.pedantic(lambda: _run(False, counter), rounds=1, iterations=1)
    benchmark.extra_info["samples"] = counter.get("sample")
    benchmark.extra_info["neighbour_probes"] = counter.get("neighbour_probe")


def test_ablation_exact_oracle(benchmark):
    counter = OpCounter()
    benchmark.pedantic(lambda: _run(True, counter), rounds=1, iterations=1)
    benchmark.extra_info["neighbour_probes"] = counter.get("neighbour_probe")


def test_ablation_estimator_avoids_neighbourhood_scans(benchmark):
    sampling_counter, exact_counter = OpCounter(), OpCounter()

    def run_both():
        _run(False, sampling_counter)
        _run(True, exact_counter)

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(
        f"\nAblation A3: sampling probes = {sampling_counter.get('neighbour_probe')}, "
        f"exact probes = {exact_counter.get('neighbour_probe')}"
    )
    # the sampling oracle performs no neighbourhood scans at all; the exact
    # oracle scans one neighbourhood per re-labelling
    assert sampling_counter.get("neighbour_probe") == 0
    assert exact_counter.get("neighbour_probe") > 0
