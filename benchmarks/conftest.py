"""Shared helpers for the benchmark suite.

Every module under ``benchmarks/`` reproduces one table or figure of the
paper (see DESIGN.md section 3 for the index).  Each benchmark

* runs the corresponding experiment runner once (``benchmark.pedantic`` with
  a single round — the experiment itself already iterates over a whole
  update sequence),
* prints the reproduced rows/series in the same layout as the paper, and
* asserts the qualitative *shape* of the paper's result (who wins, by
  roughly what factor, which direction a sweep moves) — absolute numbers are
  not comparable because the substrate is a pure-Python simulator on
  synthetic stand-in datasets.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import pytest

from repro.experiments.reporting import format_table


def run_once(benchmark, func: Callable[[], List[Dict[str, object]]], label: str):
    """Run an experiment exactly once under pytest-benchmark and print its table."""
    rows = benchmark.pedantic(func, rounds=1, iterations=1)
    print()
    print(format_table(rows, title=label))
    benchmark.extra_info["rows"] = len(rows)
    return rows


@pytest.fixture
def small_scale() -> float:
    """Update-sequence length as a multiple of the initial edge count."""
    return 0.3
