"""Table 2 — approximate clustering quality under Jaccard similarity.

Paper shape: with ρ = 0.01 the mis-labelled rate is a fraction of a percent
and ARI ≥ 0.99; with ρ = 0.5 the rate rises to a few percent and ARI dips but
stays above ~0.96.  On the synthetic stand-ins (and with the harness's
capped sample size) the absolute numbers are looser, but the ordering
"smaller ρ ⇒ fewer mis-labels and higher ARI" and "quality stays high" must
hold.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_quality_table
from repro.graph.similarity import SimilarityKind

DATASETS = ["slashdot", "google", "email"]
RHOS = (0.01, 0.5)


def test_table2_quality_under_jaccard(benchmark):
    rows = run_once(
        benchmark,
        lambda: run_quality_table(
            SimilarityKind.JACCARD, rhos=RHOS, datasets=DATASETS, top_ks=(1, 5, 10, 20)
        ),
        "Table 2: approximate clustering quality (Jaccard)",
    )
    by_key = {(row["dataset"], row["rho"]): row for row in rows}
    for dataset in DATASETS:
        tight = by_key[(dataset, 0.01)]
        loose = by_key[(dataset, 0.5)]
        # quality is high overall ...
        assert tight["ARI"] > 0.75
        assert tight["mislabelled_%"] < 15.0
        # ... and the smaller rho is at least as good as the larger one
        assert tight["mislabelled_%"] <= loose["mislabelled_%"] + 1.0
        assert tight["ARI"] >= loose["ARI"] - 0.05
        # top-k individual cluster quality stays high for the tight setting
        assert tight["top5_avg"] > 0.6
