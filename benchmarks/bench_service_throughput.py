"""Service throughput benchmark: ingest rate and query latency under load.

Unlike the table/figure benchmarks (which reproduce the paper), this one
characterises the new serving layer: a :class:`ClusteringEngine` ingesting a
generated insert/delete stream at full speed while reader threads issue
snapshot-consistent group-by queries against the published views.

Emits ``BENCH_service.json`` into the working directory with

* ingest throughput in updates/second (offered == accepted at full speed
  with an adequately sized queue),
* query latency percentiles (p50/p90/p99) observed by the concurrent
  readers,
* per-batch apply latency percentiles from the engine's own metrics.

Runs both under pytest (``pytest benchmarks/bench_service_throughput.py``)
and standalone (``python benchmarks/bench_service_throughput.py``).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Dict, List

from repro.bench.report import host_fingerprint
from repro.core.config import StrCluParams
from repro.graph.generators import planted_partition_graph
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.service.loadgen import EngineTarget, LoadGenConfig, LoadGenerator
from repro.service.metrics import ServiceMetrics
from repro.workloads.updates import generate_update_sequence

#: Output document, written next to the other BENCH artefacts.
OUTPUT_PATH = Path("BENCH_service.json")

# rho = 0.5 matches the overall-time benchmarks: the point here is the
# serving layer's concurrency behaviour, not the estimator's sampling cost
PARAMS = StrCluParams(epsilon=0.3, mu=3, rho=0.5, seed=7)


def _build_stream(n: int = 100, num_updates: int = 400, seed: int = 11):
    edges = planted_partition_graph(4, n // 4, p_intra=0.2, p_inter=0.01, seed=seed)
    workload = generate_update_sequence(n, edges, num_updates, eta=0.25, seed=seed)
    return list(workload.all_updates()), list(range(n))


def run_service_benchmark(
    num_updates: int = 400, readers: int = 2, query_size: int = 32
) -> Dict[str, object]:
    """Ingest a full stream at maximum speed with concurrent readers."""
    stream, vertex_pool = _build_stream(num_updates=num_updates)
    config = EngineConfig(batch_size=128, flush_interval=0.01, queue_capacity=len(stream))
    engine = ClusteringEngine(PARAMS, config=config)
    reader_metrics = ServiceMetrics()
    done = threading.Event()

    def reader_loop(seed: int) -> None:
        import random

        rng = random.Random(seed)
        while not done.is_set():
            query = rng.sample(vertex_pool, query_size)
            start = time.perf_counter()
            engine.view().group_by(query)
            reader_metrics.observe_query(time.perf_counter() - start)
            # ~1 kHz per reader: a heavy but not GIL-saturating query load
            time.sleep(0.001)

    threads = [
        threading.Thread(target=reader_loop, args=(seed,)) for seed in range(readers)
    ]
    with engine:
        for thread in threads:
            thread.start()
        generator = LoadGenerator(
            EngineTarget(engine),
            stream,
            vertex_pool=vertex_pool,
            config=LoadGenConfig(ingest_batch=64, query_ratio=0.0),
        )
        ingest_started = time.monotonic()
        report = generator.run()
        engine.flush(timeout=120)
        ingest_seconds = time.monotonic() - ingest_started
        done.set()
        for thread in threads:
            thread.join()
        engine_metrics = engine.metrics.snapshot()
        final_stats = engine.view().stats()

    applied = engine.applied
    document: Dict[str, object] = {
        "benchmark": "service_throughput",
        "host": host_fingerprint(),
        "config": {
            "num_updates": len(stream),
            "batch_size": config.batch_size,
            "flush_interval": config.flush_interval,
            "queue_capacity": config.queue_capacity,
            "ingest_batch": 64,
            "readers": readers,
            "query_size": query_size,
            "epsilon": PARAMS.epsilon,
            "mu": PARAMS.mu,
            "rho": PARAMS.rho,
        },
        "ingest": {
            "updates_offered": report.updates_sent,
            "updates_applied": applied,
            "wall_seconds": ingest_seconds,
            "updates_per_second": applied / ingest_seconds if ingest_seconds else 0.0,
            "batch_apply_latency": engine_metrics["ingest"],
        },
        "query": {
            "requests": reader_metrics.query.count,
            "p50_s": reader_metrics.query.percentile(50),
            "p90_s": reader_metrics.query.percentile(90),
            "p99_s": reader_metrics.query.percentile(99),
            "mean_s": reader_metrics.query.mean,
        },
        "final_view": final_stats,
    }
    return document


def _emit(document: Dict[str, object]) -> None:
    OUTPUT_PATH.write_text(json.dumps(document, indent=2), encoding="utf-8")


def _print_summary(document: Dict[str, object]) -> None:
    ingest = document["ingest"]
    query = document["query"]
    print()
    print("service throughput benchmark")
    print(f"  ingest: {ingest['updates_applied']} updates in "
          f"{ingest['wall_seconds']:.2f}s "
          f"-> {ingest['updates_per_second']:.0f} updates/s")
    print(f"  query:  {query['requests']} group-by requests, "
          f"p50 {query['p50_s'] * 1e6:.0f}us  "
          f"p90 {query['p90_s'] * 1e6:.0f}us  "
          f"p99 {query['p99_s'] * 1e6:.0f}us")
    print(f"  report: {OUTPUT_PATH.resolve()}")


def test_service_throughput(benchmark):
    document = benchmark.pedantic(run_service_benchmark, rounds=1, iterations=1)
    _emit(document)
    _print_summary(document)

    ingest = document["ingest"]
    query = document["query"]
    # every offered update is applied (full-speed run, queue sized to stream)
    assert ingest["updates_applied"] == document["config"]["num_updates"]
    assert ingest["updates_per_second"] > 0
    # readers made real progress concurrently with ingest, and snapshot reads
    # stay far below batch-apply latency (the point of view publication)
    assert query["requests"] > 0
    assert query["p50_s"] < 0.05
    assert OUTPUT_PATH.exists()
    emitted = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
    assert emitted["benchmark"] == "service_throughput"
    benchmark.extra_info["updates_per_second"] = ingest["updates_per_second"]


if __name__ == "__main__":
    result = run_service_benchmark()
    _emit(result)
    _print_summary(result)
