"""Figures 4, 5 and 6 — cluster visualisations (density-statistics substitution).

Paper shape: at the per-dataset ε the top-20 clusters are internally dense
(intra-cluster edges much denser than inter-cluster edges); raising ε
fragments clusters into more, smaller pieces and creates more noise, while
lowering ε merges them (Figure 5's sweep on Google).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_visualisation
from repro.graph.similarity import SimilarityKind


def test_fig4_top20_density_jaccard(benchmark):
    rows = run_once(
        benchmark,
        lambda: run_visualisation(datasets=["slashdot", "google", "wiki"]),
        "Figure 4: top-20 cluster statistics (Jaccard, per-dataset epsilon)",
    )
    for row in rows:
        assert row["num_clusters"] >= 1
        assert row["top_k_intra_density"] > 0.1


def test_fig5_epsilon_evolution_on_google(benchmark):
    rows = run_once(
        benchmark,
        lambda: run_visualisation(
            datasets=["google"], epsilon_sweep=(0.13, 0.135, 0.15, 0.2, 0.3)
        ),
        "Figure 5: evolution of the clusters on Google with varying epsilon",
    )
    cores = [row["num_cores"] for row in rows]
    noise = [row["num_noise"] for row in rows]
    # raising epsilon can only demote cores and create noise
    assert cores[0] >= cores[-1]
    assert noise[-1] >= noise[0]


def test_fig6_top20_density_cosine(benchmark):
    rows = run_once(
        benchmark,
        lambda: run_visualisation(
            datasets=["slashdot", "google"], similarity=SimilarityKind.COSINE
        ),
        "Figure 6: top-20 cluster statistics (cosine, per-dataset epsilon)",
    )
    for row in rows:
        assert row["num_clusters"] >= 1
        assert row["top_k_intra_density"] > 0.1
