"""Figure 12(b) — cluster-group-by query time versus the query size |Q|.

Paper shape: the query time grows roughly linearly with |Q| (the theoretical
cost is O(|Q| log n)) and stays in the microsecond-to-millisecond range even
on the larger datasets — far below the O(n + m) cost of retrieving the whole
clustering.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_query_size_sweep

SIZES = (2, 8, 32, 128, 512)


def test_fig12b_group_by_query_time_vs_query_size(benchmark):
    rows = run_once(
        benchmark,
        lambda: run_query_size_sweep(
            query_sizes=SIZES, datasets=["slashdot", "google"], queries_per_size=20
        ),
        "Figure 12(b): cluster-group-by query time vs |Q|",
    )
    for dataset in ("slashdot", "google"):
        series = [row for row in rows if row["dataset"] == dataset]
        sizes = [row["query_size"] for row in series]
        times = [row["avg_query_us"] for row in series]
        assert sizes == sorted(sizes)
        # query time grows with |Q| ...
        assert times[-1] > times[0]
        # ... but sub-quadratically: the 256x size growth costs far less than 256^2
        growth = times[-1] / max(times[0], 1e-9)
        assert growth < (sizes[-1] / sizes[0]) ** 2
