"""Sharded ingest-throughput benchmark: 1 vs 2 vs 4 shards, equivalence-checked.

Drives the service benchmark workload (a planted-partition graph hot start
plus a generated insert/delete stream, as in
``bench_service_throughput.py``) through :func:`make_engine` at shard
counts 1, 2 and 4, at full speed, and reports ingest throughput per shape.

Why sharding scales even on one core: a shard labels only the edges it
owns on both ends (the expensive similarity decisions), while cross-shard
edges are replicated as graph-only boundary copies whose similarity is
resolved once, at read time, by the scatter-gather merge.  Splitting the
vertex space N ways therefore divides the per-update labelling work by
roughly N — on top of any multi-core parallelism the runtime offers.

The run is **equivalence-verified**: the 4-shard merged clustering (and a
group-by over the whole vertex pool) must exactly equal a sequential
single-engine DynStrClu run of the same stream (ρ = 0, so the comparison
is exact, not band-tolerant).

Emits ``BENCH_sharding.json``; the CI gate asserts the verification flag
and ``speedup_4x >= 1.5``.  Runs both under pytest
(``pytest benchmarks/bench_sharded_throughput.py``) and standalone
(``python benchmarks/bench_sharded_throughput.py [--updates N]``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List

from repro.bench.report import host_fingerprint
from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.graph.generators import planted_partition_graph
from repro.service.engine import EngineConfig
from repro.service.sharding import make_engine
from repro.workloads.updates import generate_update_sequence

#: Output document, written next to the other BENCH artefacts.
OUTPUT_PATH = Path("BENCH_sharding.json")

#: ρ = 0: exact labelling, so the equivalence check is exact equality.
PARAMS = StrCluParams(epsilon=0.3, mu=3, rho=0.0, seed=7)

SHARD_COUNTS = (1, 2, 4)


def _build_stream(n: int, num_updates: int, seed: int = 11):
    blocks = 8
    edges = planted_partition_graph(
        blocks, n // blocks, p_intra=0.25, p_inter=0.01, seed=5
    )
    workload = generate_update_sequence(n, edges, num_updates, eta=0.25, seed=seed)
    return list(workload.all_updates()), list(range(n))


def run_sharding_benchmark(
    n: int = 400, num_updates: int = 400, verify: bool = True, rounds: int = 2
) -> Dict[str, object]:
    """Full-speed ingest at each shard count plus the equivalence check.

    Each shard count is measured ``rounds`` times and the best run kept —
    the gate compares wall-clock on shared CI runners, so a single noisy
    measurement must not swing the reported ratio.
    """
    stream, vertex_pool = _build_stream(n, num_updates)
    throughput: Dict[str, float] = {}
    wall: Dict[str, float] = {}
    final_views = {}
    for shards in SHARD_COUNTS:
        best = None
        for _round in range(max(1, rounds)):
            config = EngineConfig(
                batch_size=128,
                flush_interval=0.01,
                queue_capacity=len(stream) + 16,
                shards=shards,
            )
            engine = make_engine(PARAMS, config=config)
            with engine:
                started = time.monotonic()
                for update in stream:
                    engine.submit(update)
                engine.flush(timeout=600)
                elapsed = time.monotonic() - started
                final_views[shards] = engine.view()
            if best is None or elapsed < best:
                best = elapsed
        throughput[str(shards)] = len(stream) / best
        wall[str(shards)] = best

    verified = None
    if verify:
        reference = DynStrClu(PARAMS)
        applied = 0
        present = set()
        for update in stream:
            edge = (min(update.u, update.v), max(update.u, update.v))
            if update.kind.value == "insert":
                if update.u == update.v or edge in present:
                    continue
                present.add(edge)
            else:
                if edge not in present:
                    continue
                present.discard(edge)
            reference.apply(update)
            applied += 1
        expected = reference.clustering()
        expected_groups = {
            frozenset(g) for g in reference.group_by(vertex_pool).as_sets()
        }
        verified = True
        for shards in SHARD_COUNTS[1:]:
            merged = final_views[shards].clustering
            groups = {
                frozenset(g)
                for g in final_views[shards].group_by(vertex_pool).as_sets()
            }
            if (
                merged.as_frozen() != expected.as_frozen()
                or merged.cores != expected.cores
                or merged.hubs != expected.hubs
                or merged.noise != expected.noise
                or groups != expected_groups
            ):
                verified = False

    base = throughput["1"]
    document: Dict[str, object] = {
        "benchmark": "sharded_throughput",
        "host": host_fingerprint(),
        "config": {
            "num_vertices": n,
            "stream_updates": len(stream),
            "batch_size": 128,
            "epsilon": PARAMS.epsilon,
            "mu": PARAMS.mu,
            "rho": PARAMS.rho,
            "shard_counts": list(SHARD_COUNTS),
            "verified_equivalence": verified,
        },
        "updates_per_second": throughput,
        "wall_seconds": wall,
        "speedup_2x": throughput["2"] / base if base else 0.0,
        "speedup_4x": throughput["4"] / base if base else 0.0,
    }
    return document


def _emit(document: Dict[str, object]) -> None:
    OUTPUT_PATH.write_text(json.dumps(document, indent=2), encoding="utf-8")


def _print_summary(document: Dict[str, object]) -> None:
    print()
    print("sharded ingest throughput benchmark")
    for shards in SHARD_COUNTS:
        ups = document["updates_per_second"][str(shards)]
        print(f"  {shards} shard(s): {ups:,.0f} updates/s")
    print(
        f"  speedup: {document['speedup_2x']:.2f}x at 2 shards, "
        f"{document['speedup_4x']:.2f}x at 4 shards"
    )
    print(f"  equivalence verified: {document['config']['verified_equivalence']}")
    print(f"  report: {OUTPUT_PATH.resolve()}")


def test_sharded_throughput(benchmark):
    document = benchmark.pedantic(
        lambda: run_sharding_benchmark(n=240, num_updates=240),
        rounds=1,
        iterations=1,
    )
    _emit(document)
    _print_summary(document)

    assert document["config"]["verified_equivalence"] is True
    # the pytest-sized run asserts the direction (sharding never loses);
    # the CI gate runs the full-size standalone benchmark and asserts the
    # 1.5x floor on the 4-shard configuration
    assert document["speedup_4x"] > 1.0
    assert OUTPUT_PATH.exists()
    emitted = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
    assert emitted["benchmark"] == "sharded_throughput"
    benchmark.extra_info["speedup_4x"] = document["speedup_4x"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vertices", type=int, default=400)
    parser.add_argument("--updates", type=int, default=400)
    parser.add_argument(
        "--no-verify", action="store_true", help="skip the equivalence check"
    )
    args = parser.parse_args()
    result = run_sharding_benchmark(
        n=args.vertices, num_updates=args.updates, verify=not args.no_verify
    )
    _emit(result)
    _print_summary(result)
