"""Table 1 — dataset meta information and memory footprint over the update sequence.

Paper shape: every method is linear in the graph size; DynELM and pSCAN are
the most compact and close to each other, DynStrClu adds 10–20 % for the CC
structure, the hSCAN index is the largest (roughly 2× DynELM).
"""

from __future__ import annotations

from repro.experiments.runner import run_memory_table

DATASETS = ["email", "grqc", "condmat", "slashdot", "dblp", "google"]


def test_table1_memory_footprint(benchmark, small_scale):
    rows = benchmark.pedantic(
        run_memory_table,
        kwargs={"datasets": DATASETS, "update_multiplier": small_scale},
        rounds=1,
        iterations=1,
    )
    from repro.experiments.reporting import format_table

    print()
    print(format_table(rows, title="Table 1: memory footprint (model words)"))

    for row in rows:
        dynelm = row["DynELM_memory_words"]
        dynstrclu = row["DynStrClu_memory_words"]
        pscan = row["pSCAN_memory_words"]
        hscan = row["hSCAN_memory_words"]
        # all methods linear in graph size: within a small constant of each other
        assert dynelm > 0 and pscan > 0
        # DynStrClu carries the CC structure and vAuxInfo on top of DynELM
        assert dynelm < dynstrclu < 6 * dynelm
        # the similarity-ordered index is the heaviest structure
        assert hscan > pscan
