"""Ablation A4 — snapshot restore versus hot-start rebuild.

The paper's remark after Theorem 7.1 covers the hot-start case (insert the
``m0`` initial edges one by one, cost ``Õ(m0)`` amortised over later
updates).  A deployment that already persisted its state can do better: the
snapshot stores the maintained labels, so restoring performs *no* similarity
estimation at all.  This ablation measures both paths on the same graph and
asserts that the restore path needs zero labelling work while producing the
identical clustering.
"""

from __future__ import annotations

from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.instrumentation import OpCounter
from repro.persistence.snapshot import restore_dynstrclu, take_snapshot
from repro.workloads.datasets import load_dataset

PARAMS = StrCluParams(epsilon=0.3, mu=5, rho=0.2, seed=3, max_samples=128)
EDGES = load_dataset("slashdot")


def _hot_start(counter: OpCounter) -> DynStrClu:
    return DynStrClu.from_edges(EDGES, PARAMS, counter=counter)


def test_ablation_hot_start_rebuild(benchmark):
    counter = OpCounter()
    algo = benchmark.pedantic(lambda: _hot_start(counter), rounds=1, iterations=1)
    benchmark.extra_info["samples"] = counter.get("sample")
    benchmark.extra_info["similarity_evals"] = counter.get("similarity_eval")
    assert counter.get("similarity_eval") >= len(EDGES)
    assert algo.graph.num_edges == len(EDGES)


def test_ablation_snapshot_restore(benchmark):
    source = DynStrClu.from_edges(EDGES, PARAMS)
    snapshot = take_snapshot(source)
    counter = OpCounter()

    restored = benchmark.pedantic(
        lambda: restore_dynstrclu(snapshot, counter=counter), rounds=1, iterations=1
    )
    benchmark.extra_info["samples"] = counter.get("sample")
    benchmark.extra_info["similarity_evals"] = counter.get("similarity_eval")
    # restoring reinstates the stored labels verbatim: no estimator work at all
    assert counter.get("similarity_eval") == 0
    assert counter.get("sample") == 0
    assert restored.clustering().as_frozen() == source.clustering().as_frozen()
