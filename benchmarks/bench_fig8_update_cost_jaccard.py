"""Figure 8 — average update cost versus update timestamp (Jaccard).

Paper shape: for every insertion strategy (RR, DR, DD) the dynamic
algorithms' average update cost stays flat and orders of magnitude below the
exact baselines, whose cost grows with the degrees (worst under DD).

The paper's curves are measured on wiki/LiveJ/Twitter, whose hub degrees
dwarf both the affordability threshold and any reasonable sample size; the
harness uses the "dense" hub-regime stand-in (see
``repro.workloads.datasets.EXTRA_DATASETS``) so that the same degree regime
— degrees well above 2/(ρ·ε) and above the sample cap — is exercised at a
size a pure-Python run can drive.  The win factor is accordingly smaller
than the paper's 100-1000×, but the ordering and the growth under the
degree-biased strategies are the reproduced shape.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_update_cost_curve


def test_fig8_average_update_cost_over_time(benchmark, small_scale):
    rows = run_once(
        benchmark,
        lambda: run_update_cost_curve(
            datasets=["dense"],
            algorithms=("DynStrClu", "pSCAN", "hSCAN"),
            strategies=("RR", "DR", "DD"),
            update_multiplier=small_scale,
            checkpoints=5,
            rho=0.8,
            epsilon=0.3,
            max_samples=64,
        ),
        "Figure 8: average update cost vs timestamp (Jaccard)",
    )
    final = {}
    for row in rows:
        key = (row["strategy"], row["algorithm"])
        final[key] = row  # rows are ordered by timestamp; keep the last

    for strategy in ("RR", "DR", "DD"):
        dyn = final[(strategy, "DynStrClu")]
        pscan = final[(strategy, "pSCAN")]
        hscan = final[(strategy, "hSCAN")]
        # the dynamic algorithm does less work per update than both baselines
        assert dyn["ops_per_update"] < pscan["ops_per_update"]
        assert dyn["ops_per_update"] < hscan["ops_per_update"]

    # the degree-biased strategies make the exact baselines pay more
    assert final[("DD", "pSCAN")]["ops_per_update"] >= final[("RR", "pSCAN")]["ops_per_update"]
