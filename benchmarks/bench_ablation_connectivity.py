"""Ablation A2 — connectivity backends for CC-Str(G_core).

Fact 2 requires a poly-log fully dynamic connectivity structure; the
union-find alternative must rebuild after deletions.  This ablation drives
all three backends (HDT, Euler-tour + scan, union-find rebuild) with the
same deletion-heavy edge stream and compares wall-clock time; the
rebuild-on-delete backend must perform (many) full rebuilds, which is the
behaviour the paper's choice avoids.
"""

from __future__ import annotations

import random

import pytest

from repro.connectivity.euler_tour import EulerTourConnectivity
from repro.connectivity.hdt import HDTConnectivity
from repro.connectivity.union_find import UnionFindConnectivity

N = 300
STEPS = 4000


def _script(seed: int = 3):
    rng = random.Random(seed)
    present = set()
    script = []
    for _ in range(STEPS):
        u, v = rng.sample(range(N), 2)
        key = (min(u, v), max(u, v))
        if key in present and rng.random() < 0.6:
            script.append(("delete", key))
            present.discard(key)
        elif key not in present:
            script.append(("insert", key))
            present.add(key)
    return script


SCRIPT = _script()


def _drive(backend):
    query_targets = list(range(0, N, 25))
    for index, (op, (u, v)) in enumerate(SCRIPT):
        if op == "insert":
            backend.insert_edge(u, v)
        else:
            backend.delete_edge(u, v)
        if index % 10 == 0:
            for t in query_targets:
                if backend.has_vertex(t) and backend.has_vertex(u):
                    backend.connected(u, t)
    return backend


@pytest.mark.parametrize(
    "factory",
    [HDTConnectivity, EulerTourConnectivity, UnionFindConnectivity],
    ids=["hdt", "euler_tour", "union_find_rebuild"],
)
def test_ablation_connectivity_backend(benchmark, factory):
    backend = benchmark.pedantic(lambda: _drive(factory()), rounds=1, iterations=1)
    if isinstance(backend, UnionFindConnectivity):
        benchmark.extra_info["rebuilds"] = backend.rebuilds
        # interleaved deletions and queries force repeated full rebuilds
        # (the exact count depends on how deletions batch between queries)
        assert backend.rebuilds > 0
