"""Figure 7 — overall running time for the full update sequence, all algorithms.

Paper shape: DynELM is the fastest, DynStrClu is marginally slower (it also
maintains vAuxInfo and the CC structure), pSCAN is at least an order of
magnitude slower on the larger datasets, and hSCAN is the slowest.  In this
harness the separation shows up both in wall-clock seconds and in the
operation-count cost model (similarity evaluations + neighbourhood probes),
which is the interpreter-independent signal.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_overall_time

DATASETS = ["email", "grqc", "slashdot", "google"]


def _cost(row):
    """Interpreter-independent work measure for one algorithm run."""
    return row["neighbour_probes"] + row["samples"] + row["heap_ops"]


def test_fig7_overall_running_time(benchmark, small_scale):
    rows = run_once(
        benchmark,
        lambda: run_overall_time(
            datasets=DATASETS, update_multiplier=small_scale, rho=0.5, epsilon=0.3
        ),
        "Figure 7: overall running time, all four algorithms",
    )
    by_algo = {}
    for row in rows:
        by_algo.setdefault(row["algorithm"], {})[row["dataset"]] = row

    for dataset in DATASETS[-2:]:  # the two larger stand-ins show the separation
        dyn = by_algo["DynELM"][dataset]
        dyn_strclu = by_algo["DynStrClu"][dataset]
        pscan = by_algo["pSCAN"][dataset]
        hscan = by_algo["hSCAN"][dataset]
        # exact re-scanning baselines probe neighbourhoods far more than the
        # poly-log maintenance does
        assert pscan["neighbour_probes"] > 2 * dyn["neighbour_probes"]
        assert hscan["neighbour_probes"] >= pscan["neighbour_probes"]
        # DynStrClu pays only a small overhead on top of DynELM
        assert dyn_strclu["seconds"] < 5 * dyn["seconds"] + 0.5
