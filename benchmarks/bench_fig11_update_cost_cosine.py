"""Figure 11 — average update cost versus timestamp under cosine similarity.

Paper shape: the same ordering as Figure 8 holds under cosine similarity
(DynELM fastest, then pSCAN, then hSCAN), and the dynamic algorithm's
per-update cost under cosine stays comparable to its cost under Jaccard
(Section 9.6 notes the performances are nearly identical despite the extra
1/ε factor in the analysis, because the matching cosine ε is larger).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.runner import run_update_cost_curve
from repro.graph.similarity import SimilarityKind


def test_fig11_average_update_cost_cosine(benchmark, small_scale):
    rows = run_once(
        benchmark,
        lambda: run_update_cost_curve(
            datasets=["dense"],
            algorithms=("DynELM", "pSCAN", "hSCAN"),
            strategies=("RR",),
            update_multiplier=small_scale,
            checkpoints=5,
            similarity=SimilarityKind.COSINE,
            epsilon=0.6,
            rho=0.5,
            max_samples=64,
        ),
        "Figure 11: average update cost vs timestamp (cosine)",
    )
    final = {row["algorithm"]: row for row in rows}
    assert final["DynELM"]["ops_per_update"] < final["pSCAN"]["ops_per_update"]
    assert final["DynELM"]["ops_per_update"] < final["hSCAN"]["ops_per_update"]


def test_fig11_cosine_vs_jaccard_cost_parity(benchmark, small_scale):
    """DynELM's per-update cost under cosine stays within a small factor of
    its cost under Jaccard on the same workload."""

    def both():
        cosine = run_update_cost_curve(
            datasets=["dense"], algorithms=("DynELM",), strategies=("RR",),
            update_multiplier=small_scale, checkpoints=1,
            similarity=SimilarityKind.COSINE, epsilon=0.6, rho=0.5,
            max_samples=64,
        )
        jaccard = run_update_cost_curve(
            datasets=["dense"], algorithms=("DynELM",), strategies=("RR",),
            update_multiplier=small_scale, checkpoints=1,
            similarity=SimilarityKind.JACCARD, epsilon=0.3, rho=0.5,
            max_samples=64,
        )
        for row in cosine:
            row["similarity"] = "cosine"
        for row in jaccard:
            row["similarity"] = "jaccard"
        return cosine + jaccard

    rows = run_once(benchmark, both, "Figure 11 (aux): cosine vs Jaccard per-update cost")
    cosine_ops = [r["ops_per_update"] for r in rows if r["similarity"] == "cosine"][-1]
    jaccard_ops = [r["ops_per_update"] for r in rows if r["similarity"] == "jaccard"][-1]
    assert cosine_ops < 10 * jaccard_ops
