"""View publication benchmark: incremental patch vs full capture.

The service layer publishes an immutable :class:`ClusteringView` after
every micro-batch.  Full capture costs O(n + m) regardless of how little
changed; incremental capture patches the previous view from the backend's
flip set in O(|F| log n).  This benchmark measures both on the *same*
maintainer states — a large graph of small clusters absorbing small
update batches, the regime the paper's cost argument targets — and emits
``BENCH_view_capture.json`` with the per-batch latencies and the speedup.

Defaults reproduce the acceptance configuration (n ≈ 50k vertices,
batches of ≤ 64 updates); ``--triangles``/``--batches``/``--batch-size``
scale it down for CI smoke runs.  ``--verify`` additionally checks, on
every batch, that the patched view is exactly equivalent to the full
capture (cluster family, role counts, materialised clustering).

Runs both under pytest (``pytest benchmarks/bench_view_capture.py``, small
configuration) and standalone (``python benchmarks/bench_view_capture.py``).
"""

from __future__ import annotations

import argparse
import json
import random
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.bench.report import host_fingerprint
from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.core.result import clusterings_equal
from repro.service.views import ClusteringView

#: Output document, written next to the other BENCH artefacts.
OUTPUT_PATH = Path("BENCH_view_capture.json")

# exact mode on tiny neighbourhoods: labelling is cheap and deterministic,
# so the measurement isolates view publication, not the estimator
PARAMS = StrCluParams(epsilon=0.5, mu=2, rho=0.0, seed=7)


def _build_maintainer(num_triangles: int) -> DynStrClu:
    """A graph of ``num_triangles`` disjoint triangles (n = 3·t, m = 3·t).

    With ε = 0.5 and μ = 2 every triangle vertex is a core, so the
    clustering has one cluster per triangle — many small clusters, the
    shape under which per-batch O(n + m) capture is most wasteful.
    """
    algo = DynStrClu(PARAMS)
    for t in range(num_triangles):
        a = 3 * t
        algo.insert_edge(a, a + 1)
        algo.insert_edge(a + 1, a + 2)
        algo.insert_edge(a, a + 2)
    return algo


def _views_equivalent(patched: ClusteringView, full: ClusteringView) -> bool:
    stats_p = patched.stats()
    stats_f = full.stats()
    for key in ("clusters", "cores", "hubs", "noise", "largest_cluster",
                "num_vertices", "num_edges", "view_version"):
        if stats_p[key] != stats_f[key]:
            return False
    return clusterings_equal(patched.clustering, full.clustering)


def run_view_capture_benchmark(
    num_triangles: int = 16_667,
    num_batches: int = 20,
    batch_size: int = 64,
    seed: int = 11,
    verify: bool = False,
) -> Dict[str, object]:
    """Apply small update batches; time both capture strategies per batch."""
    algo = _build_maintainer(num_triangles)
    algo.drain_view_delta()
    version = algo.updates_processed
    view = ClusteringView.capture(algo, version)

    rng = random.Random(seed)
    incremental_s: List[float] = []
    full_s: List[float] = []
    flip_sizes: List[int] = []
    fallbacks = 0
    verified = True

    for _ in range(num_batches):
        # one batch: delete + reinsert an edge of batch_size//2 distinct
        # triangles — churn that flips core statuses but stays small
        for t in rng.sample(range(num_triangles), max(1, batch_size // 2)):
            a = 3 * t
            algo.delete_edge(a, a + 1)
            algo.insert_edge(a, a + 1)
            version += 2
        flips = algo.drain_view_delta().flips
        flip_sizes.append(len(flips))

        start = time.perf_counter()
        patched: Optional[ClusteringView] = view.patched(algo, flips, version=version)
        incremental_s.append(time.perf_counter() - start)

        start = time.perf_counter()
        captured = ClusteringView.capture(algo, version)
        full_s.append(time.perf_counter() - start)

        if patched is None:
            fallbacks += 1
            patched = captured
        elif verify and not _views_equivalent(patched, captured):
            verified = False
        view = patched

    incremental_mean = sum(incremental_s) / len(incremental_s)
    full_mean = sum(full_s) / len(full_s)
    document: Dict[str, object] = {
        "benchmark": "view_capture",
        "host": host_fingerprint(),
        "config": {
            "num_triangles": num_triangles,
            "num_vertices": algo.graph.num_vertices,
            "num_edges": algo.graph.num_edges,
            "num_batches": num_batches,
            "batch_size": batch_size,
            "epsilon": PARAMS.epsilon,
            "mu": PARAMS.mu,
            "rho": PARAMS.rho,
            "seed": seed,
            "verified_equivalence": verify and verified,
        },
        "incremental": {
            "mean_s": incremental_mean,
            "min_s": min(incremental_s),
            "max_s": max(incremental_s),
            "fallbacks": fallbacks,
        },
        "full": {
            "mean_s": full_mean,
            "min_s": min(full_s),
            "max_s": max(full_s),
        },
        "flip_set_size": {
            "mean": sum(flip_sizes) / len(flip_sizes),
            "max": max(flip_sizes),
        },
        "speedup": (full_mean / incremental_mean) if incremental_mean else 0.0,
    }
    if verify and not verified:
        document["error"] = "patched view diverged from full capture"
    return document


def _emit(document: Dict[str, object], path: Path = OUTPUT_PATH) -> None:
    path.write_text(json.dumps(document, indent=2), encoding="utf-8")


def _print_summary(document: Dict[str, object], path: Path = OUTPUT_PATH) -> None:
    config = document["config"]
    print()
    print("view capture benchmark")
    print(f"  graph:       n={config['num_vertices']} m={config['num_edges']} "
          f"({config['num_triangles']} triangle clusters)")
    print(f"  batches:     {config['num_batches']} x {config['batch_size']} updates, "
          f"mean |F| = {document['flip_set_size']['mean']:.1f}")
    print(f"  full:        {document['full']['mean_s'] * 1e3:.3f} ms/batch")
    print(f"  incremental: {document['incremental']['mean_s'] * 1e3:.3f} ms/batch "
          f"({document['incremental']['fallbacks']} fallbacks)")
    print(f"  speedup:     {document['speedup']:.1f}x")
    print(f"  report:      {path.resolve()}")


def test_view_capture_speedup(benchmark):
    document = benchmark.pedantic(
        lambda: run_view_capture_benchmark(
            num_triangles=400, num_batches=8, batch_size=32, verify=True
        ),
        rounds=1,
        iterations=1,
    )
    _emit(document)
    _print_summary(document)
    assert document["config"]["verified_equivalence"]
    assert document["incremental"]["fallbacks"] == 0
    # even at n ≈ 1200 the patch must already beat the full retrieval
    assert document["speedup"] > 1.0
    benchmark.extra_info["speedup"] = document["speedup"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--triangles", type=int, default=16_667,
                        help="number of triangle clusters (n = 3*t; default ~50k vertices)")
    parser.add_argument("--batches", type=int, default=20)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--verify", action="store_true",
                        help="check patched == captured on every batch")
    parser.add_argument("--out", type=Path, default=OUTPUT_PATH)
    args = parser.parse_args()
    document = run_view_capture_benchmark(
        num_triangles=args.triangles,
        num_batches=args.batches,
        batch_size=args.batch_size,
        seed=args.seed,
        verify=args.verify,
    )
    _emit(document, args.out)
    _print_summary(document, args.out)
    if "error" in document:
        raise SystemExit(document["error"])


if __name__ == "__main__":
    main()
