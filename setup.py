"""Setuptools shim.

The environment this repository targets may lack the ``wheel`` package, in
which case PEP-660 editable installs fail; keeping a ``setup.py`` lets
``pip install -e . --no-use-pep517`` (and plain ``python setup.py develop``)
work offline.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
