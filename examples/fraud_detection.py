"""Fraud detection on streaming transaction graphs via StrClu noise vertices.

The paper cites blockchain fraud detection as an application: build a graph
from transaction features, run structural clustering, and treat the *noise*
vertices (outliers belonging to no cluster) as fraud candidates.  This
example simulates that pipeline on a synthetic transaction graph:

* legitimate accounts form dense communities (exchanges, merchants and their
  regular customers);
* a few "mule" accounts bridge two communities (hubs — unusual but not
  necessarily fraudulent);
* fraudulent accounts touch the network only through one or two arbitrary
  transactions and end up as noise.

As transactions stream in, the maintained clustering is queried for a
watch-list of accounts with cluster-group-by.

Run with:  python examples/fraud_detection.py
"""

from __future__ import annotations

from repro import DynStrClu, StrCluParams
from repro.graph.generators import hub_and_noise_graph
from repro.workloads.updates import InsertionStrategy, generate_update_sequence

COMMUNITIES = 4
COMMUNITY_SIZE = 15
HUBS = 3
FRAUDSTERS = 8


def main() -> None:
    edges = hub_and_noise_graph(
        COMMUNITIES, COMMUNITY_SIZE, hubs=HUBS, noise=FRAUDSTERS, p_intra=0.7, seed=11
    )
    base = COMMUNITIES * COMMUNITY_SIZE
    hub_ids = list(range(base, base + HUBS))
    fraud_ids = list(range(base + HUBS, base + HUBS + FRAUDSTERS))

    params = StrCluParams(epsilon=0.4, mu=4, rho=0.05, delta_star=0.01, seed=2)
    algo = DynStrClu(params)
    for u, v in edges:
        algo.insert_edge(u, v)

    # keep the graph churning: new transactions arrive, stale ones expire
    n = base + HUBS + FRAUDSTERS
    workload = generate_update_sequence(
        n, edges, num_updates=len(edges) // 2,
        strategy=InsertionStrategy.DEGREE_RANDOM, eta=0.3, seed=12,
    )
    for update in workload.updates:
        algo.apply(update)

    clustering = algo.clustering()
    print("transaction graph after the stream:", clustering.summary())

    flagged = sorted(clustering.noise)
    print(f"\nfraud candidates (noise vertices): {flagged}")
    caught = set(flagged) & set(fraud_ids)
    print(
        f"planted fraudsters flagged: {len(caught)}/{FRAUDSTERS} "
        f"(false positives: {len(set(flagged) - set(fraud_ids))})"
    )

    bridging = sorted(clustering.hubs)
    print(f"bridge accounts (hubs, manual review): {bridging}")

    # an investigator checks a watch-list: which accounts trade within the
    # same community?  cluster-group-by answers this in O(|Q| log n)
    watchlist = fraud_ids[:3] + hub_ids[:2] + [0, 1, COMMUNITY_SIZE, COMMUNITY_SIZE + 1]
    groups = algo.group_by(watchlist)
    print(f"\ncluster-group-by over the watch-list {watchlist}:")
    if not groups.groups:
        print("  (no watched account belongs to any cluster)")
    for group_id, members in groups.groups.items():
        print(f"  same community {group_id}: {sorted(members)}")
    ungrouped = [v for v in watchlist if not groups.group_of(v)]
    print(f"  outside every community: {sorted(ungrouped)}")


if __name__ == "__main__":
    main()
