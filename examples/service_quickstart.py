"""Service quickstart: the clustering engine as a concurrent v1 service.

Demonstrates the full serving stack in one process:

1. start a :class:`ClusteringEngine` (micro-batching single writer) with a
   durable data directory,
2. expose it over the v1 JSON/HTTP API with :class:`BackgroundServer`,
3. talk to it with :class:`ServiceClient` — ingest a planted two-community
   graph, run snapshot-consistent group-by queries, read stats, and spin up
   a second isolated tenant on a baseline backend,
4. restart the engine from its snapshot+WAL and show that the recovered
   service answers identically.

Run with:  python examples/service_quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    BackgroundServer,
    ClusteringEngine,
    EngineConfig,
    ServiceClient,
    StrCluParams,
    Update,
)
from repro.graph.generators import planted_partition_graph


def main() -> None:
    params = StrCluParams(epsilon=0.4, mu=3, rho=0.05, delta_star=0.01, seed=7)
    config = EngineConfig(batch_size=32, flush_interval=0.02, checkpoint_every=100)
    edges = planted_partition_graph(2, 12, p_intra=0.7, p_inter=0.05, seed=1)
    updates = [Update.insert(u, v) for u, v in edges]

    with tempfile.TemporaryDirectory() as tmp:
        data_dir = Path(tmp) / "clustering-service"

        # --- 1 + 2: engine behind an HTTP front-end ------------------------
        engine = ClusteringEngine(params, config=config, data_dir=data_dir)
        with engine, BackgroundServer(engine) as background:
            client = ServiceClient("127.0.0.1", background.port)
            print("service healthy:", client.healthz())

            # --- 3: ingest + query over the wire ---------------------------
            accepted = client.submit_updates(updates)
            engine.flush()  # in-process handle: wait for the batch to land
            print(f"\ningested {accepted} edge insertions")
            stats = client.stats()
            print("clusters:", stats["clusters"], "| cores:", stats["cores"],
                  "| view version:", stats["view_version"])

            query = list(range(24))
            result = client.group_by(query)
            for gid, members in sorted(result.groups.items()):
                print(f"  group {gid}: {sorted(members)}")
            first_answer = {frozenset(g) for g in result.as_sets()}

            # a deletion stream: the view follows, readers never block
            client.submit_updates([Update.delete(*edges[0]),
                                   Update.delete(*edges[1])])
            engine.flush()
            print("after two deletions, view version:",
                  client.stats()["view_version"])

            # --- v1 multi-tenancy: an isolated sibling tenant ---------------
            # its own backend *and* its own parameters (mu=2 suits a triangle)
            client.create_tenant("scratch", backend="pscan", params={"mu": 2})
            scratch = client.for_tenant("scratch")
            scratch.submit_updates([Update.insert("x", "y"),
                                    Update.insert("y", "z"),
                                    Update.insert("x", "z")])
            background.manager.get("scratch").flush()
            print("scratch tenant (pscan backend) groups:",
                  scratch.group_by(["x", "y", "z"]).as_sets())
            print("main tenant cannot see them:",
                  client.group_by(["x", "y", "z"]).as_sets())
            scratch.close()
            client.delete_tenant("scratch")
            client.close()

        # --- 4: crash-recover the service from snapshot + WAL --------------
        recovered = ClusteringEngine(params, config=config, data_dir=data_dir)
        with recovered, BackgroundServer(recovered) as background:
            client = ServiceClient("127.0.0.1", background.port)
            print("\nrecovered engine at version",
                  client.stats()["view_version"])
            # re-insert the deleted edges: the stream continues seamlessly
            client.submit_updates([Update.insert(*edges[0]),
                                   Update.insert(*edges[1])])
            recovered.flush()
            second_answer = {
                frozenset(g) for g in client.group_by(query).as_sets()
            }
            print("recovered + replayed service answers identically:",
                  second_answer == first_answer)
            client.close()


if __name__ == "__main__":
    main()
