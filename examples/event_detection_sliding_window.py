"""Event detection on a timestamped interaction stream with a sliding window.

One of the applications motivating structural clustering (Section 1 of the
paper) is landmark/event detection on tagged-photo collections: photos taken
at the same event are densely co-tagged for a while and then the activity
moves on.  This example models that scenario end to end with the library's
streaming front-end:

1. a synthetic interaction stream contains two long-lived "landmark"
   communities plus a short burst (the "event") that appears, peaks and
   fades;
2. :class:`repro.streaming.SlidingWindowClustering` maintains the structural
   clustering of the last ``WINDOW`` time units, so expired interactions
   drop out automatically;
3. :class:`repro.analysis.ClusterTracker` matches the clusters between
   periodic snapshots and reports the transition events — the burst shows up
   as a BORN community that later DISSOLVES, while the landmarks persist;
4. a state snapshot plus the write-ahead log show how the service would
   recover after a crash without reprocessing the full history.

Run with:  python examples/event_detection_sliding_window.py
"""

from __future__ import annotations

import itertools
import random
import tempfile
from pathlib import Path

from repro import StrCluParams
from repro.analysis import ClusterEventKind, ClusterTracker, role_census
from repro.persistence import load_snapshot, restore_dynstrclu, save_snapshot
from repro.streaming import SlidingWindowClustering

WINDOW = 40.0  # "minutes" of interactions the clustering should reflect
SNAPSHOT_PERIOD = 20.0


def interaction_stream(seed: int = 3):
    """Yield (u, v, time) interactions: two landmarks plus one short burst.

    Vertices 0-9 and 10-19 are the two landmark communities (steady
    co-tagging over the whole stream); vertices 100-109 form a burst that is
    only active between t=60 and t=100.
    """
    rng = random.Random(seed)
    landmark_a = list(range(0, 10))
    landmark_b = list(range(10, 20))
    burst = list(range(100, 110))

    t = 0.0
    while t < 200.0:
        t += rng.uniform(0.2, 0.6)
        roll = rng.random()
        if 60.0 <= t <= 100.0 and roll < 0.5:
            group = burst
        elif roll < 0.75:
            group = landmark_a
        else:
            group = landmark_b
        u, v = rng.sample(group, 2)
        yield u, v, t


def main() -> None:
    params = StrCluParams(epsilon=0.4, mu=3, rho=0.05, delta_star=0.01, seed=1)
    window = SlidingWindowClustering(params, window=WINDOW)
    tracker = ClusterTracker(threshold=0.25)

    next_snapshot = SNAPSHOT_PERIOD
    print(f"sliding window = {WINDOW} minutes, snapshot every {SNAPSHOT_PERIOD} minutes\n")

    for u, v, t in interaction_stream():
        window.observe(u, v, time=t)
        if t >= next_snapshot:
            next_snapshot += SNAPSHOT_PERIOD
            clustering = window.clustering()
            events = tracker.observe(clustering)
            labels = ", ".join(sorted(e.kind.value for e in events)) or "first snapshot"
            print(
                f"t={t:6.1f}  live edges={window.num_live_edges:4d}  "
                f"clusters={clustering.num_clusters}  events: {labels}"
            )

    # ------------------------------------------------------------------
    # what did the tracker see over the whole stream?
    # ------------------------------------------------------------------
    born = tracker.events_of_kind(ClusterEventKind.BORN)
    dissolved = tracker.events_of_kind(ClusterEventKind.DISSOLVED)
    print(f"\ncommunities born during the stream:      {len(born)}")
    print(f"communities dissolved during the stream: {len(dissolved)}")
    print("(the short co-tagging burst appears as a born community that later dissolves)")

    final = window.clustering()
    census = role_census(final, vertices=window.maintainer.graph.vertices())
    print(f"\nfinal clustering summary: {final.summary()}")
    print(f"final vertex roles:       {census}")

    # ------------------------------------------------------------------
    # crash recovery: snapshot now, replay nothing, resume the stream
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "window-state.json"
        save_snapshot(window.maintainer, checkpoint)
        recovered = restore_dynstrclu(load_snapshot(checkpoint))
        same = recovered.clustering().as_frozen() == final.as_frozen()
        print(f"\ncheckpoint round trip reproduces the clustering: {same}")

        # the recovered maintainer keeps accepting updates
        extra = list(itertools.islice(interaction_stream(seed=99), 5))
        for u, v, _t in extra:
            if not recovered.graph.has_edge(u, v):
                recovered.insert_edge(u, v)
        print(f"recovered maintainer accepted {len(extra)} further interactions")


if __name__ == "__main__":
    main()
