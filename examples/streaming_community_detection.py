"""Community detection on a streaming social network.

The paper motivates dynamic structural clustering with community detection:
users are vertices, follow relationships are edges, and the graph changes
continuously.  This example

1. generates a synthetic social network with planted communities,
2. streams a mixed insertion/deletion workload over it (the paper's DR
   strategy with a 10 % deletion ratio),
3. maintains the clustering with DynStrClu while an exact pSCAN-style
   maintainer runs side by side, and
4. reports how much less work the dynamic index does, and how the detected
   communities evolve over time.

Run with:  python examples/streaming_community_detection.py
"""

from __future__ import annotations

import time

from repro import DynStrClu, ExactDynamicSCAN, StrCluParams
from repro.graph.generators import planted_partition_graph
from repro.instrumentation import OpCounter
from repro.workloads.updates import InsertionStrategy, generate_update_sequence

NUM_COMMUNITIES = 5
COMMUNITY_SIZE = 24
EPSILON, MU, RHO = 0.35, 4, 0.3


def main() -> None:
    edges = planted_partition_graph(
        NUM_COMMUNITIES, COMMUNITY_SIZE, p_intra=0.45, p_inter=0.01, seed=3
    )
    n = NUM_COMMUNITIES * COMMUNITY_SIZE
    workload = generate_update_sequence(
        n, edges, num_updates=len(edges), strategy=InsertionStrategy.DEGREE_RANDOM,
        eta=0.1, seed=4,
    )

    params = StrCluParams(epsilon=EPSILON, mu=MU, rho=RHO, delta_star=0.01, seed=5,
                          max_samples=256)
    dyn_counter, exact_counter = OpCounter(), OpCounter()
    dynamic = DynStrClu(params, counter=dyn_counter)
    exact = ExactDynamicSCAN(EPSILON, MU, counter=exact_counter)

    updates = list(workload.all_updates())
    checkpoints = {len(updates) // 4, len(updates) // 2, 3 * len(updates) // 4, len(updates)}

    start = time.perf_counter()
    for index, update in enumerate(updates, start=1):
        dynamic.apply(update)
        exact.apply(update)
        if index in checkpoints:
            communities = dynamic.clustering()
            print(
                f"after {index:5d} updates: "
                f"{communities.num_clusters:2d} communities, "
                f"{len(communities.cores):3d} cores, "
                f"{len(communities.noise):3d} unaffiliated users"
            )
    elapsed = time.perf_counter() - start

    print(f"\nprocessed {len(updates)} updates in {elapsed:.2f}s (both maintainers together)")
    print("work comparison (similarity evaluations + neighbourhood probes):")
    print(
        f"  DynStrClu : {dyn_counter.get('similarity_eval'):7d} evaluations, "
        f"{dyn_counter.get('neighbour_probe'):8d} probes"
    )
    print(
        f"  pSCAN-like: {exact_counter.get('similarity_eval'):7d} evaluations, "
        f"{exact_counter.get('neighbour_probe'):8d} probes"
    )

    final_dynamic = dynamic.clustering()
    final_exact = exact.clustering()
    from repro.evaluation.ari import adjusted_rand_index

    ari = adjusted_rand_index(
        final_dynamic.partition_assignment(dynamic.graph, dynamic.labels),
        final_exact.partition_assignment(exact.graph, exact.labels),
    )
    print(f"\nagreement with the exact clustering (ARI): {ari:.3f}")

    # which planted community does each detected community correspond to?
    print("\nlargest detected communities vs planted blocks:")
    for index, cluster in enumerate(final_dynamic.top_k(NUM_COMMUNITIES)):
        blocks = sorted({v // COMMUNITY_SIZE for v in cluster})
        print(f"  community {index}: {len(cluster):3d} members, planted block(s) {blocks}")


if __name__ == "__main__":
    main()
