"""Quickstart: dynamic structural clustering in a few lines.

Builds a small graph with two planted communities, maintains the clustering
under edge insertions and deletions with DynStrClu, and answers
cluster-group-by queries — the end-to-end workflow of the paper.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DynStrClu, StrCluParams
from repro.graph.generators import planted_partition_graph


def main() -> None:
    # 1. parameters: similarity threshold, core threshold, approximation slack
    params = StrCluParams(epsilon=0.4, mu=3, rho=0.05, delta_star=0.01, seed=7)

    # 2. build the structure by streaming edge insertions (two communities of 12)
    algo = DynStrClu(params)
    edges = planted_partition_graph(2, 12, p_intra=0.7, p_inter=0.05, seed=1)
    for u, v in edges:
        algo.insert_edge(u, v)

    clustering = algo.clustering()
    print("after the initial insertions:")
    print("  summary:", clustering.summary())
    for index, cluster in enumerate(clustering.top_k(5)):
        print(f"  cluster {index}: {sorted(cluster)}")

    # 3. the graph keeps changing: delete a few intra-community edges and add
    #    a bridge between the communities
    algo.delete_edge(*edges[0])
    algo.delete_edge(*edges[1])
    if not algo.graph.has_edge(0, 12):
        algo.insert_edge(0, 12)

    print("\nafter two deletions and one bridge insertion:")
    print("  summary:", algo.clustering().summary())

    # 4. cluster-group-by: group an arbitrary vertex subset by cluster,
    #    in O(|Q| log n) time, without materialising the whole clustering
    query = [0, 1, 5, 12, 13, 23]
    groups = algo.group_by(query)
    print(f"\ncluster-group-by({query}):")
    for group_id, members in groups.groups.items():
        print(f"  group {group_id}: {sorted(members)}")

    # 5. the vertex roles of structural clustering
    result = algo.clustering()
    print("\nroles: cores =", len(result.cores), "hubs =", len(result.hubs),
          "noise =", len(result.noise))


if __name__ == "__main__":
    main()
