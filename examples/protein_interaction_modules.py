"""Functional-module discovery in a protein–protein interaction network.

The paper's first application (atBioNet, US FDA/NCTR) uses structural
clustering to identify functional modules in protein–protein interaction
(PPI) networks and to run enrichment analysis for a list of *seed proteins*
supplied by the user.  This example reproduces that workflow on a synthetic
PPI network:

1. generate a network whose planted blocks play the role of functional
   modules, plus promiscuous "chaperone" proteins interacting with several
   modules;
2. cluster it with DynStrClu under cosine similarity (the similarity the
   original SCAN paper used for biological networks);
3. for a user-supplied seed list, use cluster-group-by to find which seeds
   fall into the same module — the enrichment-analysis grouping step;
4. update the network with newly discovered interactions and show that the
   module assignment refreshes without re-clustering from scratch.

Run with:  python examples/protein_interaction_modules.py
"""

from __future__ import annotations

import random

from repro import DynStrClu, StrCluParams
from repro.graph.generators import planted_partition_graph
from repro.graph.similarity import SimilarityKind

MODULES = 6
MODULE_SIZE = 18
CHAPERONES = 4


def build_network(seed: int = 21):
    """A PPI stand-in: dense modules plus a few cross-module chaperones."""
    rng = random.Random(seed)
    edges = planted_partition_graph(MODULES, MODULE_SIZE, 0.5, 0.005, seed=seed)
    n = MODULES * MODULE_SIZE
    for index in range(CHAPERONES):
        chaperone = n + index
        touched_modules = rng.sample(range(MODULES), 3)
        for module in touched_modules:
            partners = rng.sample(
                range(module * MODULE_SIZE, (module + 1) * MODULE_SIZE), 2
            )
            for p in partners:
                edges.append((chaperone, p))
    return edges


def protein_name(vertex: int) -> str:
    if vertex >= MODULES * MODULE_SIZE:
        return f"CHP{vertex - MODULES * MODULE_SIZE:02d}"
    return f"P{vertex:03d}"


def main() -> None:
    edges = build_network()
    params = StrCluParams(
        epsilon=0.55, mu=4, rho=0.05, delta_star=0.01, seed=9,
        similarity=SimilarityKind.COSINE,
    )
    network = DynStrClu(params)
    for u, v in edges:
        network.insert_edge(u, v)

    modules = network.clustering()
    print(f"detected {modules.num_clusters} functional modules")
    for index, module in enumerate(modules.top_k(MODULES)):
        members = sorted(module)
        print(
            f"  module {index}: {len(members):2d} proteins "
            f"({', '.join(protein_name(v) for v in members[:6])}, ...)"
        )
    print(
        f"promiscuous proteins bridging modules (hubs): "
        f"{sorted(protein_name(v) for v in modules.hubs)}"
    )

    # the atBioNet workflow: the user supplies seed proteins; group them by module
    rng = random.Random(1)
    seeds = rng.sample(range(MODULES * MODULE_SIZE), 8) + [MODULES * MODULE_SIZE]
    print(f"\nseed proteins: {[protein_name(v) for v in seeds]}")
    groups = network.group_by(seeds)
    for group_id, members in groups.groups.items():
        print(f"  enriched module {group_id}: {sorted(protein_name(v) for v in members)}")

    # new experimental evidence arrives: a batch of interactions between two
    # modules; the index absorbs them as updates
    new_interactions = [(0, MODULE_SIZE + offset) for offset in range(6)]
    for u, v in new_interactions:
        if not network.graph.has_edge(u, v):
            network.insert_edge(u, v)
    refreshed = network.clustering()
    print(
        f"\nafter {len(new_interactions)} newly reported interactions: "
        f"{refreshed.num_clusters} modules, {len(refreshed.hubs)} bridging proteins"
    )


if __name__ == "__main__":
    main()
