#!/usr/bin/env python
"""Observability smoke gate: scrape-able metrics + end-to-end tracing.

The CI counterpart of the observability surface's two promises:

1. start a primary ``repro serve`` subprocess, create a **4-shard
   durable** tenant, and a second ``repro serve`` subprocess hosting a
   **standby** of that tenant (WAL shipping over HTTP);
2. drive the primary with ``repro loadgen --trace`` so every ingest
   batch carries a client-supplied ``X-Repro-Trace`` id;
3. scrape ``GET /metrics``, parse it with the strict exposition parser,
   and assert every shard (0–3) recorded ingest batches and all four
   ingest pipeline stages (histogram ``+Inf`` buckets equal ``_count``
   by parser construction — malformed text fails the parse itself);
4. pick one traced id off the primary's span ring and assert the *same*
   id is observable at every hop: ``http.request`` → ``router.route`` →
   ``shard.apply`` on the primary, and — in the standby's own process,
   having ridden beside the WAL records — ``standby.replay``.

Exits non-zero (with a diagnostic) on any violation.  Run locally with::

    PYTHONPATH=src python scripts/smoke_observability.py
"""

from __future__ import annotations

import socket
import subprocess
import sys
import tempfile
import time

from repro.cli import main as repro_main
from repro.service import ServiceClient, parse_prometheus_text

TENANT = "t"
SHARDS = 4
UPDATES = 300


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_healthy(port: int, timeout: float = 15.0) -> None:
    ServiceClient.wait_until_healthy("127.0.0.1", port, timeout=timeout)


def _fail(message: str) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _serve(port: int, data_root: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--epsilon", "0.3", "--mu", "2", "--rho", "0",
            "--data-root", data_root,
        ],
    )


def _check_metrics(admin: ServiceClient) -> None:
    text = admin.metrics_text()
    try:
        types, samples = parse_prometheus_text(text)
    except ValueError as exc:
        _fail(f"/metrics failed strict parsing: {exc}")
    if types.get("repro_ingest_latency_seconds") != "histogram":
        _fail(f"missing histogram TYPE line; got {sorted(types)}")

    batch_counts = {
        s.labels["shard"]: s.value
        for s in samples
        if s.name == "repro_ingest_latency_seconds_count"
        and s.labels.get("tenant") == TENANT
    }
    for shard in map(str, range(SHARDS)):
        if batch_counts.get(shard, 0) <= 0:
            _fail(f"shard {shard} recorded no ingest batches: {batch_counts}")

    stage_buckets = {}
    for s in samples:
        if (
            s.name == "repro_ingest_stage_seconds_bucket"
            and s.labels.get("tenant") == TENANT
            and s.labels.get("le") == "+Inf"
        ):
            key = (s.labels["shard"], s.labels["stage"])
            stage_buckets[key] = s.value
    expected_stages = {"queue_wait", "wal_append", "backend_apply", "view_publish"}
    for shard in map(str, range(SHARDS)):
        stages = {stage for (s, stage), v in stage_buckets.items()
                  if s == shard and v > 0}
        if stages != expected_stages:
            _fail(
                f"shard {shard} missing stage samples: have {sorted(stages)}, "
                f"want {sorted(expected_stages)}"
            )
    print(f"metrics OK: per-shard batch counts {batch_counts}")


def _traced_spans(client: ServiceClient, trace_id: str | None = None):
    return client.debug_traces(trace_id=trace_id, limit=5000)["spans"]


def _check_tracing(admin: ServiceClient, standby_admin: ServiceClient) -> None:
    # every loadgen batch minted its own id; find one that reached a shard
    candidates = {}
    for span in _traced_spans(admin):
        if span["name"] in ("router.route", "shard.apply", "http.request"):
            candidates.setdefault(span["trace_id"], set()).add(span["name"])
    full = [
        tid for tid, names in candidates.items()
        if {"http.request", "router.route", "shard.apply"} <= names
    ]
    if not full:
        _fail(f"no trace crossed http.request→router→shard: {candidates}")

    # the same ids must surface in the standby process once replay catches
    # up — they travelled beside the WAL records, not in this process
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        for tid in full:
            replayed = [
                s for s in _traced_spans(standby_admin, trace_id=tid)
                if s["name"] == "standby.replay"
            ]
            if replayed:
                print(
                    f"tracing OK: trace {tid} spans router→shard on the "
                    f"primary and {len(replayed)} standby.replay span(s) "
                    f"on the standby"
                )
                return
        time.sleep(0.3)
    _fail(f"no standby.replay span for any of {len(full)} full traces")


def main() -> int:
    primary_port, standby_port = _free_port(), _free_port()
    with tempfile.TemporaryDirectory(prefix="smoke-obs-") as root:
        primary = _serve(primary_port, f"{root}/primary")
        standby = _serve(standby_port, f"{root}/standby")
        try:
            _wait_healthy(primary_port)
            _wait_healthy(standby_port)
            with ServiceClient("127.0.0.1", primary_port) as admin, \
                    ServiceClient("127.0.0.1", standby_port) as standby_admin:
                row = admin.create_tenant(TENANT, shards=SHARDS)
                if row["shards"] != SHARDS:
                    _fail(f"unexpected tenant shape: {row}")
                standby_admin.create_tenant(
                    TENANT, replica_of=f"127.0.0.1:{primary_port}"
                )

                status = repro_main(
                    [
                        "loadgen",
                        "--port", str(primary_port),
                        "--tenant", TENANT,
                        "--dataset", "email",
                        "--updates", str(UPDATES),
                        "--query-ratio", "0.1",
                        "--seed", "0",
                        "--trace",
                    ]
                )
                if status != 0:
                    _fail(f"repro loadgen exited with status {status}")

                # drain: applied stable across two polls
                deadline = time.monotonic() + 60.0
                previous, drained = None, False
                while time.monotonic() < deadline:
                    rows = {r["tenant"]: r for r in admin.list_tenants()}
                    state = (
                        rows.get(TENANT, {}).get("queue_depth", 1),
                        rows.get(TENANT, {}).get("applied", -1),
                    )
                    if state[0] == 0 and state[1] > 0 and state == previous:
                        drained = True
                        break
                    previous = state
                    time.sleep(0.2)
                if not drained:
                    _fail(f"ingest never drained within 60 s: {previous}")

                _check_metrics(admin)
                _check_tracing(admin, standby_admin)
        finally:
            for proc in (standby, primary):
                proc.terminate()
            for proc in (standby, primary):
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
    print("SMOKE OK: metrics exposition + end-to-end tracing")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
