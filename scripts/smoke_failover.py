#!/usr/bin/env python
"""Failover smoke gate: kill the primary mid-stream, promote the standby.

The CI counterpart of the replication subsystem's core promise, exercised
end-to-end through real processes:

1. start a **primary** ``repro serve`` subprocess with a data root and
   create two durable tenants on it: ``solo`` (1 shard) and ``wide``
   (4 shards);
2. start a **standby** ``repro serve`` subprocess and create both tenants
   there as ``replica_of`` the primary — WAL shippers begin replaying;
3. drive the primary with ``repro loadgen`` (a mixed two-tenant stream)
   and ``SIGKILL`` the primary mid-stream once the standby has replicated
   a minimum prefix;
4. **promote** both standby tenants (one through ``repro promote``, one
   through the client API) — the primary being dead, fencing is skipped;
5. assert **exact cluster equivalence at the acked WAL position**: for
   each tenant, rebuild the primary's state from its on-disk snapshot +
   WAL truncated to the standby's acked per-shard positions, and require
   the promoted standby to partition a probe set identically;
6. assert **post-promotion writes succeed** against both promoted tenants.

Exits non-zero (with a diagnostic) on any violation — wired into CI as
the ``failover-smoke`` job.  Run locally with::

    PYTHONPATH=src python scripts/smoke_failover.py

**Zero-operator mode** (``--auto [ROUNDS]``, the CI ``fleet-smoke``
job): no promotion is issued by hand.  A fleet of ``1 + 2*ROUNDS``
servers replicates both tenants, one ``repro watchdog`` sidecar probes
every primary, and live writers drive both tenants through a replica-set
:class:`ServiceClient` (writes re-route to whichever endpoint holds the
primary role).  The script then:

1. ``SIGSTOP``\\ s the primary for well under the quorum window and
   asserts the watchdog does **not** promote (transient partitions are
   suppressed);
2. ``SIGKILL``\\ s every primary-hosting server, round after round, and
   asserts the watchdog promotes a replacement within the probe budget,
   that exactly one server claims the primary role per tenant (no
   dueling promotion), that surviving standbys are re-parented onto the
   winner, and that the promoted clustering exactly equals a
   truncated-WAL sequential replay of the dead primary's disk;
3. resumes the writers and asserts ingest flows into each new primary.

The watchdog's decision log lands in ``--decision-log`` (default
``./watchdog_decisions.jsonl``) — CI uploads it as an artifact when the
gate fails.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core.dynelm import Update
from repro.persistence.snapshot import load_snapshot, restore_dynstrclu
from repro.persistence.updatelog import UpdateLogReader, list_wal_segments
from repro.service import EngineConfig, ServiceClient, ServiceError
from repro.service.sharding import ShardedEngine

SOLO, WIDE = "solo", "wide"
UPDATES = 12000
MIN_REPLICATED = 300  # positions each tenant must reach before the kill
PROBE = [f"{tenant}:{i}" for tenant in (SOLO, WIDE) for i in range(120)]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _fail(message: str) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _wait_healthy(port: int, timeout: float = 20.0) -> None:
    try:
        ServiceClient.wait_until_healthy("127.0.0.1", port, timeout=timeout)
    except RuntimeError as exc:
        _fail(str(exc))


def _serve(port: int, data_root: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(port),
            "--data-root",
            str(data_root),
            "--epsilon",
            "0.3",
            "--mu",
            "2",
            "--rho",
            "0",
        ],
    )


def _loadgen(port: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "loadgen",
            "--port",
            str(port),
            "--tenant",
            SOLO,
            "--tenant",
            WIDE,
            "--dataset",
            "email",
            "--updates",
            str(UPDATES),
            "--query-ratio",
            "0.02",
            "--seed",
            "0",
        ],
    )


def _standby_positions(client: ServiceClient) -> list[int]:
    block = client.stats().get("replication")
    if not isinstance(block, dict):
        _fail(f"tenant {client.tenant!r} has no replication stats block")
    return [int(row["position"]) for row in block["shards"]]


def _groups(document: dict) -> set:
    return {
        frozenset(members)
        for members in (
            group for group in (v for v in document["groups"].values())
        )
        if members
    }


def _solo_reference(tenant_dir: Path, position: int, probe) -> tuple:
    """Sequential replay of the primary's snapshot + WAL prefix [0, P).

    Returns ``(groups, num_edges)`` — the edge count makes the
    equivalence check meaningful even when the prefix happens to hold no
    clusters over the probe set.
    """
    snapshot = load_snapshot(tenant_dir / "snapshot.json")
    algo = restore_dynstrclu(snapshot)
    replayed = snapshot.updates_processed
    for segment in list_wal_segments(tenant_dir, active_name="wal.log"):
        if replayed >= position:
            break
        reader = UpdateLogReader(segment.path, tolerate_torn_tail=True)
        cursor = segment.base
        for update in reader:
            if cursor >= replayed and replayed < position:
                algo.apply(update)
                replayed += 1
            cursor += 1
    if replayed != position:
        _fail(
            f"primary WAL of {tenant_dir} only rebuilds to {replayed}, "
            f"but the standby acked {position}"
        )
    groups = {frozenset(group) for group in algo.group_by(probe).as_sets() if group}
    return groups, algo.graph.num_edges


def _truncate_wal(path: Path, keep_entries: int) -> None:
    """Rewrite a WAL keeping its header block and the first N entries."""
    kept: list[str] = []
    entries = 0
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                if entries >= keep_entries or not line.endswith("\n"):
                    continue
                entries += 1
            kept.append(line)
    if entries < keep_entries:
        _fail(f"{path} holds only {entries} entries, needed {keep_entries}")
    path.write_text("".join(kept), encoding="utf-8")


def _wide_reference(tenant_dir: Path, positions: list[int], probe) -> tuple:
    """The primary's merged clustering at the standby's per-shard positions.

    Each shard's copied WAL is truncated to the acked prefix and the
    sharded engine re-opened (reconciliation off: the acked cut is
    per-shard exact and must not be "repaired").
    """
    copy = Path(tempfile.mkdtemp(prefix="failover-ref-")) / "wide"
    shutil.copytree(tenant_dir, copy)
    for index, position in enumerate(positions):
        shard_dir = copy / f"shard-{index}"
        base = 0
        snapshot_path = shard_dir / "snapshot.json"
        if snapshot_path.exists():
            base = json.loads(snapshot_path.read_text(encoding="utf-8")).get(
                "updates_processed", 0
            )
        _truncate_wal(shard_dir / "wal.log", position - base)
    engine = ShardedEngine(
        config=EngineConfig(shards=len(positions)), data_dir=copy, reconcile=False
    )
    try:
        groups = {
            frozenset(group)
            for group in engine.group_by(probe).as_sets()
            if group
        }
        return groups, engine.view().stats()["num_edges"]
    finally:
        engine.kill()


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="failover-smoke-"))
    primary_root = tmp / "primary"
    standby_root = tmp / "standby"
    primary_port, standby_port = _free_port(), _free_port()
    primary = _serve(primary_port, primary_root)
    standby = _serve(standby_port, standby_root)
    loadgen: subprocess.Popen | None = None
    try:
        _wait_healthy(primary_port)
        _wait_healthy(standby_port)
        with ServiceClient("127.0.0.1", primary_port) as admin:
            solo_row = admin.create_tenant(SOLO, shards=1)
            wide_row = admin.create_tenant(WIDE, shards=4)
            if solo_row["shards"] != 1 or wide_row["shards"] != 4:
                _fail(f"unexpected tenant shapes: {solo_row} / {wide_row}")

        standby_admin = ServiceClient("127.0.0.1", standby_port)
        solo_client = standby_admin.for_tenant(SOLO)
        wide_client = standby_admin.for_tenant(WIDE)
        for name in (SOLO, WIDE):
            row = standby_admin.create_tenant(
                name, replica_of=f"127.0.0.1:{primary_port}"
            )
            if row.get("replica_of") != f"127.0.0.1:{primary_port}":
                _fail(f"standby tenant {name!r} not marked as a replica: {row}")

        # --- drive the primary, kill it mid-stream ---------------------
        loadgen = _loadgen(primary_port)
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            solo_done = min(_standby_positions(solo_client), default=0)
            wide_done = min(_standby_positions(wide_client), default=0)
            if solo_done >= MIN_REPLICATED and wide_done >= MIN_REPLICATED // 4:
                break
            if loadgen.poll() is not None and solo_done and wide_done:
                break  # stream ended before the threshold: proceed anyway
            time.sleep(0.1)
        else:
            _fail("standby never replicated the minimum prefix")
        mid_stream = loadgen.poll() is None
        primary.send_signal(signal.SIGKILL)
        primary.wait(timeout=30)
        print(
            f"primary killed ({'mid-stream' if mid_stream else 'after stream end'}); "
            f"solo at {_standby_positions(solo_client)}, "
            f"wide at {_standby_positions(wide_client)}",
        )
        loadgen.wait(timeout=120)  # it will error out against the dead server
        loadgen = None

        # positions must stabilise once the shippers lose the primary
        stable_deadline = time.monotonic() + 30.0
        previous: tuple | None = None
        while time.monotonic() < stable_deadline:
            state = (
                tuple(_standby_positions(solo_client)),
                tuple(_standby_positions(wide_client)),
            )
            if state == previous:
                break
            previous = state
            time.sleep(0.3)
        else:
            _fail(f"standby positions never stabilised: {previous}")
        solo_positions, wide_positions = previous
        if solo_positions[0] < 1 or min(wide_positions) < 1:
            _fail(f"nothing replicated: {previous}")

        # --- promote both tenants --------------------------------------
        promote_cli = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "promote",
                "--port",
                str(standby_port),
                "--tenant",
                SOLO,
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        if promote_cli.returncode != 0:
            _fail(f"repro promote failed: {promote_cli.stderr}")
        wide_promotion = wide_client.promote_tenant()
        if not wide_promotion.get("promoted") or wide_promotion.get("epoch", 0) < 1:
            _fail(f"wide promotion incomplete: {wide_promotion}")

        # --- exact cluster equivalence at the acked positions ----------
        solo_groups = _groups(solo_client.group_by_raw(PROBE))
        solo_reference, solo_edges = _solo_reference(
            primary_root / SOLO, solo_positions[0], PROBE
        )
        if solo_groups != solo_reference:
            _fail(
                f"solo clustering diverged at acked position "
                f"{solo_positions[0]}: {len(solo_groups ^ solo_reference)} "
                "differing groups"
            )
        if solo_client.stats()["num_edges"] != solo_edges:
            _fail(
                f"solo graph diverged at acked position {solo_positions[0]}: "
                f"standby has {solo_client.stats()['num_edges']} edges, "
                f"reference {solo_edges}"
            )
        wide_groups = _groups(wide_client.group_by_raw(PROBE))
        wide_reference, wide_edges = _wide_reference(
            primary_root / WIDE, list(wide_positions), PROBE
        )
        if wide_groups != wide_reference:
            _fail(
                f"wide clustering diverged at acked positions "
                f"{wide_positions}: {len(wide_groups ^ wide_reference)} "
                "differing groups"
            )
        if wide_client.stats()["num_edges"] != wide_edges:
            _fail(
                f"wide graph diverged at acked positions {wide_positions}: "
                f"standby has {wide_client.stats()['num_edges']} edges, "
                f"reference {wide_edges}"
            )
        print(
            f"cluster equivalence holds: solo at {solo_positions[0]} "
            f"({len(solo_groups)} groups, {solo_edges} edges), "
            f"wide at {list(wide_positions)} "
            f"({len(wide_groups)} groups, {wide_edges} edges)"
        )

        # --- post-promotion writes -------------------------------------
        for name, client in ((SOLO, solo_client), (WIDE, wide_client)):
            before = client.stats()["applied"]
            fresh = [
                Update.insert(f"{name}:new0", f"{name}:new1"),
                Update.insert(f"{name}:new1", f"{name}:new2"),
                Update.insert(f"{name}:new0", f"{name}:new2"),
            ]
            accepted = client.submit_updates(fresh, max_retries=5)
            if accepted != len(fresh):
                _fail(f"post-promotion write shed on {name!r}: {accepted}")
            triangle = frozenset(f"{name}:new{i}" for i in range(3))
            ingest_deadline = time.monotonic() + 20.0
            clustered = False
            while time.monotonic() < ingest_deadline:
                # `applied` advances at admission for sharded tenants, so
                # poll the *published clustering* for the new triangle
                if client.stats()["applied"] >= before + len(fresh):
                    groups = _groups(client.group_by_raw(sorted(triangle)))
                    if triangle in groups:
                        clustered = True
                        break
                time.sleep(0.1)
            if not clustered:
                _fail(f"post-promotion triangle never clustered on {name!r}")
        print("post-promotion ingest works on both promoted tenants")

        solo_client.close()
        wide_client.close()
        standby_admin.close()
        print("failover smoke passed")
        return 0
    finally:
        for proc in (loadgen, primary, standby):
            if proc is not None and proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
        shutil.rmtree(tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# zero-operator mode: the watchdog does every promotion
# ----------------------------------------------------------------------
PROMOTE_BUDGET = 60.0  # seconds from SIGKILL to an observed promotion
WATCHDOG_INTERVAL = 0.25
WATCHDOG_QUORUM = 4
WATCHDOG_COOLDOWN = 2.0
WATCHDOG_PROBE_TIMEOUT = 1.0


class _Writer(threading.Thread):
    """Live load against one tenant through a replica-set client.

    Strictly toggling inserts/deletes over the probe vertex space (the
    same applicability rule the property tests use), pausable so each
    round's equivalence check sees a frozen cut.
    """

    def __init__(self, tenant: str, endpoints: list[str], seed: int) -> None:
        super().__init__(name=f"writer-{tenant}", daemon=True)
        self.tenant = tenant
        self.endpoints = endpoints
        self.rng = random.Random(seed)
        self.accepted = 0
        self.errors = 0
        self._present: set[tuple[int, int]] = set()
        self._run = threading.Event()
        self._run.set()
        self._idle = threading.Event()
        # not `_stop`: that would shadow threading.Thread._stop(), which
        # Thread.join() calls internally
        self._halt = threading.Event()

    def pause(self) -> None:
        self._run.clear()
        if not self._idle.wait(timeout=30.0):
            _fail(f"writer for {self.tenant!r} never went idle")

    def resume(self) -> None:
        self._run.set()

    def stop(self) -> None:
        self._halt.set()
        self._run.set()

    def _next_update(self) -> Update:
        # ring locality: neighbors share most of their neighborhoods, so
        # real clusters form (a uniform 120-vertex random graph is too
        # dense for epsilon-similarity cores)
        u = self.rng.randrange(120)
        v = (u + self.rng.randint(1, 4)) % 120
        edge = (min(u, v), max(u, v))
        a, b = f"{self.tenant}:{edge[0]}", f"{self.tenant}:{edge[1]}"
        if edge in self._present:
            self._present.discard(edge)
            return Update.delete(a, b)
        self._present.add(edge)
        return Update.insert(a, b)

    def run(self) -> None:
        with ServiceClient(
            endpoints=self.endpoints,
            tenant=self.tenant,
            timeout=5.0,
            topology_max_age=0.5,
        ) as client:
            while not self._halt.is_set():
                if not self._run.is_set():
                    self._idle.set()
                    self._run.wait(timeout=1.0)
                    continue
                self._idle.clear()
                batch = [self._next_update() for _ in range(10)]
                try:
                    self.accepted += client.submit_updates(batch, max_retries=2)
                except (ServiceError, OSError):
                    self.errors += 1
                    time.sleep(0.2)
                time.sleep(0.01)
        self._idle.set()


def _topology(port: int, tenant: str) -> dict | None:
    try:
        with ServiceClient(
            "127.0.0.1", port, tenant=tenant, timeout=2.0
        ) as client:
            return client.topology()
    except (OSError, ServiceError):
        return None


def _decisions(path: Path, event: str | None = None) -> list[dict]:
    if not path.exists():
        return []
    rows = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        if event is None or row.get("event") == event:
            rows.append(row)
    return rows


def _watchdog(endpoints: list[str], log_path: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "watchdog",
            "--targets",
            *endpoints,
            "--tenant",
            SOLO,
            "--tenant",
            WIDE,
            "--interval",
            str(WATCHDOG_INTERVAL),
            "--quorum",
            str(WATCHDOG_QUORUM),
            "--cooldown",
            str(WATCHDOG_COOLDOWN),
            "--probe-timeout",
            str(WATCHDOG_PROBE_TIMEOUT),
            "--decision-log",
            str(log_path),
        ],
    )


def _wait_promoted(
    alive: list[int], tenant: str, dead: set[int]
) -> tuple[int, dict]:
    """Block until exactly one live server claims the primary role."""
    deadline = time.monotonic() + PROMOTE_BUDGET
    while time.monotonic() < deadline:
        claims = []
        for port in alive:
            doc = _topology(port, tenant)
            if doc and doc.get("role") == "primary" and not doc.get("fenced"):
                claims.append((port, doc))
        if len(claims) > 1:
            _fail(
                f"dueling promotion for {tenant!r}: "
                f"{sorted(port for port, _ in claims)} all claim primary"
            )
        if claims:
            return claims[0]
        time.sleep(0.25)
    _fail(
        f"watchdog never promoted {tenant!r} within {PROMOTE_BUDGET}s "
        f"of killing {sorted(dead)}"
    )
    raise AssertionError("unreachable")


def _positions_of(doc: dict) -> list[int]:
    rows = sorted(doc.get("shard_positions", []), key=lambda row: row["shard"])
    if not rows:
        _fail(f"topology document has no shard positions: {doc}")
    return [int(row["position"]) for row in rows]


def _verify_cut(
    tenant: str, winner_port: int, doc: dict, dead_root: Path
) -> None:
    """Promoted clustering == truncated-WAL replay of the dead disk."""
    positions = _positions_of(doc)
    with ServiceClient("127.0.0.1", winner_port, tenant=tenant) as client:
        groups = _groups(client.group_by_raw(PROBE))
        edges = client.stats()["num_edges"]
    if tenant == SOLO:
        reference, ref_edges = _solo_reference(
            dead_root / tenant, positions[0], PROBE
        )
    else:
        reference, ref_edges = _wide_reference(dead_root / tenant, positions, PROBE)
    if groups != reference:
        _fail(
            f"{tenant} clustering diverged from the dead primary's WAL at "
            f"{positions}: {len(groups ^ reference)} differing groups"
        )
    if edges != ref_edges:
        _fail(
            f"{tenant} graph diverged at {positions}: promoted standby has "
            f"{edges} edges, truncated-WAL replay has {ref_edges}"
        )
    print(
        f"  {tenant}: cluster equivalence holds at {positions} "
        f"({len(groups)} groups, {edges} edges)"
    )


def auto_main(rounds: int, log_path: Path) -> int:
    if rounds < 1:
        _fail(f"--auto needs at least 1 round, got {rounds}")
    log_path.parent.mkdir(parents=True, exist_ok=True)
    if log_path.exists():
        log_path.unlink()
    tmp = Path(tempfile.mkdtemp(prefix="fleet-smoke-"))
    count = 1 + 2 * rounds
    ports = [_free_port() for _ in range(count)]
    endpoints = [f"127.0.0.1:{port}" for port in ports]
    roots = {port: tmp / f"server-{port}" for port in ports}
    servers = {port: _serve(port, roots[port]) for port in ports}
    watchdog: subprocess.Popen | None = None
    writers: list[_Writer] = []
    try:
        for port in ports:
            _wait_healthy(port)
        head, *rest = ports
        with ServiceClient("127.0.0.1", head) as admin:
            admin.create_tenant(SOLO, shards=1)
            admin.create_tenant(WIDE, shards=4)
        for port in rest:
            with ServiceClient("127.0.0.1", port) as admin:
                for name in (SOLO, WIDE):
                    row = admin.create_tenant(
                        name, replica_of=f"127.0.0.1:{head}"
                    )
                    if row.get("replica_of") != f"127.0.0.1:{head}":
                        _fail(f"server {port} tenant {name!r} not a replica: {row}")
        print(
            f"fleet up: primary 127.0.0.1:{head}, {len(rest)} standbys, "
            f"{rounds} kill rounds planned"
        )

        watchdog = _watchdog(endpoints, log_path)
        writers = [_Writer(SOLO, endpoints, seed=1), _Writer(WIDE, endpoints, seed=2)]
        for writer in writers:
            writer.start()

        # every standby must be replicating before the first fault
        warm_deadline = time.monotonic() + 60.0
        while time.monotonic() < warm_deadline:
            docs = [
                _topology(port, name) for port in rest for name in (SOLO, WIDE)
            ]
            if all(doc and doc.get("applied", 0) >= 30 for doc in docs):
                break
            time.sleep(0.25)
        else:
            _fail("standbys never replicated the warm-up prefix")
        if watchdog.poll() is not None:
            _fail(f"watchdog died during warm-up (exit {watchdog.returncode})")

        # --- transient-partition round: SIGSTOP, no promotion ----------
        started_before = len(_decisions(log_path, "promotion_started"))
        servers[head].send_signal(signal.SIGSTOP)
        time.sleep(0.6)  # well under quorum * (interval + probe timeout)
        servers[head].send_signal(signal.SIGCONT)
        time.sleep(3.0)
        started_after = len(_decisions(log_path, "promotion_started"))
        if started_after != started_before:
            _fail(
                "watchdog promoted during a sub-quorum stall: "
                f"{started_after - started_before} promotion(s) started"
            )
        for name in (SOLO, WIDE):
            doc = _topology(head, name)
            if not doc or doc.get("role") != "primary" or doc.get("fenced"):
                _fail(f"paused-then-resumed primary lost {name!r}: {doc}")
        print("transient SIGSTOP suppressed: no promotion below the quorum")

        # --- kill rounds -----------------------------------------------
        primaries = {SOLO: head, WIDE: head}
        dead: set[int] = set()
        for round_no in range(1, rounds + 1):
            time.sleep(1.0)  # let the writers land a fresh mid-stream prefix
            victims = sorted(set(primaries.values()))
            for port in victims:
                servers[port].send_signal(signal.SIGKILL)
                servers[port].wait(timeout=30)
                dead.add(port)
            killed_at = time.monotonic()
            for writer in writers:
                writer.pause()
            alive = [port for port in ports if port not in dead]
            print(
                f"round {round_no}: killed {victims}; "
                f"{len(alive)} servers remain"
            )
            for name in (SOLO, WIDE):
                winner_port, doc = _wait_promoted(alive, name, dead)
                elapsed = time.monotonic() - killed_at
                print(
                    f"  {name}: promoted 127.0.0.1:{winner_port} "
                    f"after {elapsed:.1f}s (epoch {doc.get('epoch')})"
                )
                # the topology flips before the watchdog's log line lands
                # on disk — give the JSONL append a moment to catch up
                log_deadline = time.monotonic() + 10.0
                while True:
                    succeeded = _decisions(log_path, "promotion_succeeded")
                    mine = [
                        row for row in succeeded if row.get("tenant") == name
                    ]
                    if len(mine) == round_no or time.monotonic() > log_deadline:
                        break
                    time.sleep(0.2)
                if len(mine) != round_no:
                    _fail(
                        f"{name}: expected {round_no} promotion(s) in the "
                        f"decision log, found {len(mine)}"
                    )
                _verify_cut(name, winner_port, doc, roots[primaries[name]])
                primaries[name] = winner_port
                # surviving standbys must be re-parented onto the winner
                reparent_deadline = time.monotonic() + 30.0
                while time.monotonic() < reparent_deadline:
                    stale = []
                    for port in alive:
                        if port == winner_port:
                            continue
                        standby_doc = _topology(port, name)
                        if (
                            standby_doc
                            and standby_doc.get("role") == "standby"
                            and standby_doc.get("replica_of")
                            != f"127.0.0.1:{winner_port}"
                        ):
                            stale.append(port)
                    if not stale:
                        break
                    time.sleep(0.25)
                else:
                    _fail(
                        f"{name}: standbys {stale} never re-parented onto "
                        f"127.0.0.1:{winner_port}"
                    )
            for writer in writers:
                writer.resume()
            for name, port in primaries.items():
                before_doc = _topology(port, name)
                before = before_doc.get("applied", 0) if before_doc else 0
                ingest_deadline = time.monotonic() + 30.0
                while time.monotonic() < ingest_deadline:
                    doc = _topology(port, name)
                    if doc and doc.get("applied", 0) > before:
                        break
                    time.sleep(0.2)
                else:
                    _fail(f"{name}: no ingest after round {round_no} failover")
            print(f"round {round_no}: writes flow into the new primaries")

        for writer in writers:
            writer.stop()
        for writer in writers:
            writer.join(timeout=30)
            if writer.accepted == 0:
                _fail(f"writer for {writer.tenant!r} never landed a write")
        print(
            "fleet smoke passed: "
            + ", ".join(
                f"{writer.tenant} accepted {writer.accepted} updates "
                f"({writer.errors} retried bursts)"
                for writer in writers
            )
        )
        return 0
    finally:
        for writer in writers:
            writer.stop()
        if watchdog is not None and watchdog.poll() is None:
            watchdog.terminate()
            try:
                watchdog.wait(timeout=15)
            except subprocess.TimeoutExpired:
                watchdog.kill()
        for proc in servers.values():
            if proc.poll() is None:
                # SIGCONT first: a SIGSTOPped server cannot act on SIGTERM
                proc.send_signal(signal.SIGCONT)
                proc.terminate()
        for proc in servers.values():
            if proc.poll() is None:
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
        shutil.rmtree(tmp, ignore_errors=True)


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        description="failover smoke gate (manual promotion by default)"
    )
    parser.add_argument(
        "--auto",
        nargs="?",
        const=3,
        default=None,
        type=int,
        metavar="ROUNDS",
        help="zero-operator mode: the watchdog performs every promotion "
        "across ROUNDS SIGKILL rounds (default 3)",
    )
    parser.add_argument(
        "--decision-log",
        type=Path,
        default=Path.cwd() / "watchdog_decisions.jsonl",
        metavar="PATH",
        help="where --auto writes the watchdog's decision log",
    )
    return parser.parse_args(argv)


if __name__ == "__main__":
    arguments = _parse_args(None)
    if arguments.auto is not None:
        raise SystemExit(auto_main(arguments.auto, arguments.decision_log))
    raise SystemExit(main())
