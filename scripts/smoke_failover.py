#!/usr/bin/env python
"""Failover smoke gate: kill the primary mid-stream, promote the standby.

The CI counterpart of the replication subsystem's core promise, exercised
end-to-end through real processes:

1. start a **primary** ``repro serve`` subprocess with a data root and
   create two durable tenants on it: ``solo`` (1 shard) and ``wide``
   (4 shards);
2. start a **standby** ``repro serve`` subprocess and create both tenants
   there as ``replica_of`` the primary — WAL shippers begin replaying;
3. drive the primary with ``repro loadgen`` (a mixed two-tenant stream)
   and ``SIGKILL`` the primary mid-stream once the standby has replicated
   a minimum prefix;
4. **promote** both standby tenants (one through ``repro promote``, one
   through the client API) — the primary being dead, fencing is skipped;
5. assert **exact cluster equivalence at the acked WAL position**: for
   each tenant, rebuild the primary's state from its on-disk snapshot +
   WAL truncated to the standby's acked per-shard positions, and require
   the promoted standby to partition a probe set identically;
6. assert **post-promotion writes succeed** against both promoted tenants.

Exits non-zero (with a diagnostic) on any violation — wired into CI as
the ``failover-smoke`` job.  Run locally with::

    PYTHONPATH=src python scripts/smoke_failover.py
"""

from __future__ import annotations

import json
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.dynelm import Update
from repro.persistence.snapshot import load_snapshot, restore_dynstrclu
from repro.persistence.updatelog import UpdateLogReader, list_wal_segments
from repro.service import EngineConfig, ServiceClient, ServiceError
from repro.service.sharding import ShardedEngine

SOLO, WIDE = "solo", "wide"
UPDATES = 12000
MIN_REPLICATED = 300  # positions each tenant must reach before the kill
PROBE = [f"{tenant}:{i}" for tenant in (SOLO, WIDE) for i in range(120)]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _fail(message: str) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _wait_healthy(port: int, timeout: float = 20.0) -> None:
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient("127.0.0.1", port, timeout=2.0) as client:
                client.healthz()
                return
        except (OSError, ServiceError) as exc:
            last = exc
            time.sleep(0.2)
    _fail(f"server on port {port} never became healthy: {last}")


def _serve(port: int, data_root: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(port),
            "--data-root",
            str(data_root),
            "--epsilon",
            "0.3",
            "--mu",
            "2",
            "--rho",
            "0",
        ],
    )


def _loadgen(port: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "loadgen",
            "--port",
            str(port),
            "--tenant",
            SOLO,
            "--tenant",
            WIDE,
            "--dataset",
            "email",
            "--updates",
            str(UPDATES),
            "--query-ratio",
            "0.02",
            "--seed",
            "0",
        ],
    )


def _standby_positions(client: ServiceClient) -> list[int]:
    block = client.stats().get("replication")
    if not isinstance(block, dict):
        _fail(f"tenant {client.tenant!r} has no replication stats block")
    return [int(row["position"]) for row in block["shards"]]


def _groups(document: dict) -> set:
    return {
        frozenset(members)
        for members in (
            group for group in (v for v in document["groups"].values())
        )
        if members
    }


def _solo_reference(tenant_dir: Path, position: int, probe) -> tuple:
    """Sequential replay of the primary's snapshot + WAL prefix [0, P).

    Returns ``(groups, num_edges)`` — the edge count makes the
    equivalence check meaningful even when the prefix happens to hold no
    clusters over the probe set.
    """
    snapshot = load_snapshot(tenant_dir / "snapshot.json")
    algo = restore_dynstrclu(snapshot)
    replayed = snapshot.updates_processed
    for segment in list_wal_segments(tenant_dir, active_name="wal.log"):
        if replayed >= position:
            break
        reader = UpdateLogReader(segment.path, tolerate_torn_tail=True)
        cursor = segment.base
        for update in reader:
            if cursor >= replayed and replayed < position:
                algo.apply(update)
                replayed += 1
            cursor += 1
    if replayed != position:
        _fail(
            f"primary WAL of {tenant_dir} only rebuilds to {replayed}, "
            f"but the standby acked {position}"
        )
    groups = {frozenset(group) for group in algo.group_by(probe).as_sets() if group}
    return groups, algo.graph.num_edges


def _truncate_wal(path: Path, keep_entries: int) -> None:
    """Rewrite a WAL keeping its header block and the first N entries."""
    kept: list[str] = []
    entries = 0
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                if entries >= keep_entries or not line.endswith("\n"):
                    continue
                entries += 1
            kept.append(line)
    if entries < keep_entries:
        _fail(f"{path} holds only {entries} entries, needed {keep_entries}")
    path.write_text("".join(kept), encoding="utf-8")


def _wide_reference(tenant_dir: Path, positions: list[int], probe) -> tuple:
    """The primary's merged clustering at the standby's per-shard positions.

    Each shard's copied WAL is truncated to the acked prefix and the
    sharded engine re-opened (reconciliation off: the acked cut is
    per-shard exact and must not be "repaired").
    """
    copy = Path(tempfile.mkdtemp(prefix="failover-ref-")) / "wide"
    shutil.copytree(tenant_dir, copy)
    for index, position in enumerate(positions):
        shard_dir = copy / f"shard-{index}"
        base = 0
        snapshot_path = shard_dir / "snapshot.json"
        if snapshot_path.exists():
            base = json.loads(snapshot_path.read_text(encoding="utf-8")).get(
                "updates_processed", 0
            )
        _truncate_wal(shard_dir / "wal.log", position - base)
    engine = ShardedEngine(
        config=EngineConfig(shards=len(positions)), data_dir=copy, reconcile=False
    )
    try:
        groups = {
            frozenset(group)
            for group in engine.group_by(probe).as_sets()
            if group
        }
        return groups, engine.view().stats()["num_edges"]
    finally:
        engine.kill()


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="failover-smoke-"))
    primary_root = tmp / "primary"
    standby_root = tmp / "standby"
    primary_port, standby_port = _free_port(), _free_port()
    primary = _serve(primary_port, primary_root)
    standby = _serve(standby_port, standby_root)
    loadgen: subprocess.Popen | None = None
    try:
        _wait_healthy(primary_port)
        _wait_healthy(standby_port)
        with ServiceClient("127.0.0.1", primary_port) as admin:
            solo_row = admin.create_tenant(SOLO, shards=1)
            wide_row = admin.create_tenant(WIDE, shards=4)
            if solo_row["shards"] != 1 or wide_row["shards"] != 4:
                _fail(f"unexpected tenant shapes: {solo_row} / {wide_row}")

        standby_admin = ServiceClient("127.0.0.1", standby_port)
        solo_client = standby_admin.for_tenant(SOLO)
        wide_client = standby_admin.for_tenant(WIDE)
        for name in (SOLO, WIDE):
            row = standby_admin.create_tenant(
                name, replica_of=f"127.0.0.1:{primary_port}"
            )
            if row.get("replica_of") != f"127.0.0.1:{primary_port}":
                _fail(f"standby tenant {name!r} not marked as a replica: {row}")

        # --- drive the primary, kill it mid-stream ---------------------
        loadgen = _loadgen(primary_port)
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            solo_done = min(_standby_positions(solo_client), default=0)
            wide_done = min(_standby_positions(wide_client), default=0)
            if solo_done >= MIN_REPLICATED and wide_done >= MIN_REPLICATED // 4:
                break
            if loadgen.poll() is not None and solo_done and wide_done:
                break  # stream ended before the threshold: proceed anyway
            time.sleep(0.1)
        else:
            _fail("standby never replicated the minimum prefix")
        mid_stream = loadgen.poll() is None
        primary.send_signal(signal.SIGKILL)
        primary.wait(timeout=30)
        print(
            f"primary killed ({'mid-stream' if mid_stream else 'after stream end'}); "
            f"solo at {_standby_positions(solo_client)}, "
            f"wide at {_standby_positions(wide_client)}",
        )
        loadgen.wait(timeout=120)  # it will error out against the dead server
        loadgen = None

        # positions must stabilise once the shippers lose the primary
        stable_deadline = time.monotonic() + 30.0
        previous: tuple | None = None
        while time.monotonic() < stable_deadline:
            state = (
                tuple(_standby_positions(solo_client)),
                tuple(_standby_positions(wide_client)),
            )
            if state == previous:
                break
            previous = state
            time.sleep(0.3)
        else:
            _fail(f"standby positions never stabilised: {previous}")
        solo_positions, wide_positions = previous
        if solo_positions[0] < 1 or min(wide_positions) < 1:
            _fail(f"nothing replicated: {previous}")

        # --- promote both tenants --------------------------------------
        promote_cli = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "promote",
                "--port",
                str(standby_port),
                "--tenant",
                SOLO,
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        if promote_cli.returncode != 0:
            _fail(f"repro promote failed: {promote_cli.stderr}")
        wide_promotion = wide_client.promote_tenant()
        if not wide_promotion.get("promoted") or wide_promotion.get("epoch", 0) < 1:
            _fail(f"wide promotion incomplete: {wide_promotion}")

        # --- exact cluster equivalence at the acked positions ----------
        solo_groups = _groups(solo_client.group_by_raw(PROBE))
        solo_reference, solo_edges = _solo_reference(
            primary_root / SOLO, solo_positions[0], PROBE
        )
        if solo_groups != solo_reference:
            _fail(
                f"solo clustering diverged at acked position "
                f"{solo_positions[0]}: {len(solo_groups ^ solo_reference)} "
                "differing groups"
            )
        if solo_client.stats()["num_edges"] != solo_edges:
            _fail(
                f"solo graph diverged at acked position {solo_positions[0]}: "
                f"standby has {solo_client.stats()['num_edges']} edges, "
                f"reference {solo_edges}"
            )
        wide_groups = _groups(wide_client.group_by_raw(PROBE))
        wide_reference, wide_edges = _wide_reference(
            primary_root / WIDE, list(wide_positions), PROBE
        )
        if wide_groups != wide_reference:
            _fail(
                f"wide clustering diverged at acked positions "
                f"{wide_positions}: {len(wide_groups ^ wide_reference)} "
                "differing groups"
            )
        if wide_client.stats()["num_edges"] != wide_edges:
            _fail(
                f"wide graph diverged at acked positions {wide_positions}: "
                f"standby has {wide_client.stats()['num_edges']} edges, "
                f"reference {wide_edges}"
            )
        print(
            f"cluster equivalence holds: solo at {solo_positions[0]} "
            f"({len(solo_groups)} groups, {solo_edges} edges), "
            f"wide at {list(wide_positions)} "
            f"({len(wide_groups)} groups, {wide_edges} edges)"
        )

        # --- post-promotion writes -------------------------------------
        for name, client in ((SOLO, solo_client), (WIDE, wide_client)):
            before = client.stats()["applied"]
            fresh = [
                Update.insert(f"{name}:new0", f"{name}:new1"),
                Update.insert(f"{name}:new1", f"{name}:new2"),
                Update.insert(f"{name}:new0", f"{name}:new2"),
            ]
            accepted = client.submit_updates(fresh, max_retries=5)
            if accepted != len(fresh):
                _fail(f"post-promotion write shed on {name!r}: {accepted}")
            triangle = frozenset(f"{name}:new{i}" for i in range(3))
            ingest_deadline = time.monotonic() + 20.0
            clustered = False
            while time.monotonic() < ingest_deadline:
                # `applied` advances at admission for sharded tenants, so
                # poll the *published clustering* for the new triangle
                if client.stats()["applied"] >= before + len(fresh):
                    groups = _groups(client.group_by_raw(sorted(triangle)))
                    if triangle in groups:
                        clustered = True
                        break
                time.sleep(0.1)
            if not clustered:
                _fail(f"post-promotion triangle never clustered on {name!r}")
        print("post-promotion ingest works on both promoted tenants")

        solo_client.close()
        wide_client.close()
        standby_admin.close()
        print("failover smoke passed")
        return 0
    finally:
        for proc in (loadgen, primary, standby):
            if proc is not None and proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
