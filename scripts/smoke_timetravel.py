#!/usr/bin/env python
"""Time-travel smoke gate: historical ``as_of`` reads against a live service.

The CI counterpart of the time-travel subsystem's core promise, exercised
end-to-end through real processes:

1. start a ``repro serve`` subprocess with a data root and a checkpoint
   cadence, and create two durable tenants: ``solo`` (1 shard) and
   ``wide`` (4 shards);
2. drive it with ``repro loadgen`` (a mixed two-tenant stream), recording
   the ``solo`` tenant's applied positions mid-run;
3. query **three historical positions** plus ``as_of=latest`` on ``solo``
   and assert each equals an **offline truncated-WAL replay**: restore the
   newest retained snapshot anchor at or below the position and apply the
   on-disk WAL sequentially up to it;
4. assert the ``wide`` tenant's per-shard ``as_of`` tuple (recorded at a
   quiescent boundary, then overtaken by fresh writes) equals a fresh
   engine recovered from a copy of its directory with each shard's WAL
   truncated to the tuple;
5. assert a repeated query is served from the **materialised-view LRU**
   (hit counter up, replay count unchanged) and that history pruned past
   the retention horizon answers a structured **410 as_of_unavailable**
   carrying the oldest replayable position.

Exits non-zero (with a diagnostic) on any violation — wired into CI as
the ``timetravel-smoke`` job.  Run locally with::

    PYTHONPATH=src python scripts/smoke_timetravel.py
"""

from __future__ import annotations

import json
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.dynelm import Update
from repro.persistence.snapshot import list_retained_snapshots, load_snapshot, restore_dynstrclu
from repro.persistence.updatelog import UpdateLogReader, list_wal_segments
from repro.service import EngineConfig, ServiceClient, ServiceError
from repro.service.sharding import ShardedEngine

SOLO, WIDE = "solo", "wide"
UPDATES = 6000
CHECKPOINT_EVERY = 150
PROBE = [f"{tenant}:{i}" for tenant in (SOLO, WIDE) for i in range(120)]


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _fail(message: str) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _wait_healthy(port: int, timeout: float = 20.0) -> None:
    try:
        ServiceClient.wait_until_healthy("127.0.0.1", port, timeout=timeout)
    except RuntimeError as exc:
        _fail(str(exc))


def _serve(port: int, data_root: Path) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(port),
            "--data-root",
            str(data_root),
            "--checkpoint-every",
            str(CHECKPOINT_EVERY),
            "--epsilon",
            "0.3",
            "--mu",
            "2",
            "--rho",
            "0",
        ],
    )


def _loadgen(port: int) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "loadgen",
            "--port",
            str(port),
            "--tenant",
            SOLO,
            "--tenant",
            WIDE,
            "--dataset",
            "email",
            "--updates",
            str(UPDATES),
            "--query-ratio",
            "0.02",
            "--seed",
            "0",
        ],
    )


def _groups(document: dict) -> set:
    return {
        frozenset(members)
        for members in document["groups"].values()
        if members
    }


def _solo_reference(tenant_dir: Path, position: int, probe) -> tuple:
    """Offline truncated-WAL replay: anchor ≤ P, then sequential WAL to P.

    Returns ``(groups, num_edges)`` — the edge count makes the equivalence
    check meaningful even when the prefix holds no clusters over the probe.
    """
    anchors = [
        anchor
        for anchor in list_retained_snapshots(tenant_dir)
        if anchor.position <= position
    ]
    if not anchors:
        _fail(f"no retained snapshot anchor at or below {position} in {tenant_dir}")
    snapshot = load_snapshot(anchors[-1].path)
    algo = restore_dynstrclu(snapshot)
    replayed = snapshot.updates_processed
    for segment in list_wal_segments(tenant_dir, active_name="wal.log"):
        if replayed >= position:
            break
        reader = UpdateLogReader(segment.path, tolerate_torn_tail=True)
        cursor = segment.base
        for update in reader:
            if cursor >= replayed and replayed < position:
                algo.apply(update)
                replayed += 1
            cursor += 1
    if replayed != position:
        _fail(
            f"offline WAL replay of {tenant_dir} only rebuilds to {replayed}, "
            f"asked for {position}"
        )
    groups = {frozenset(group) for group in algo.group_by(probe).as_sets() if group}
    return groups, algo.graph.num_edges


def _truncate_wal(path: Path, keep_entries: int) -> None:
    """Rewrite a WAL keeping its header block and the first N entries."""
    kept: list[str] = []
    entries = 0
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                if entries >= keep_entries or not line.endswith("\n"):
                    continue
                entries += 1
            kept.append(line)
    if entries < keep_entries:
        _fail(f"{path} holds only {entries} entries, needed {keep_entries}")
    path.write_text("".join(kept), encoding="utf-8")


def _wide_reference(tenant_dir: Path, positions: list[int], probe) -> tuple:
    """A fresh engine recovered from a copy truncated to the position tuple."""
    copy = Path(tempfile.mkdtemp(prefix="timetravel-ref-")) / "wide"
    shutil.copytree(tenant_dir, copy)
    for index, position in enumerate(positions):
        shard_dir = copy / f"shard-{index}"
        base = 0
        snapshot_path = shard_dir / "snapshot.json"
        if snapshot_path.exists():
            base = json.loads(snapshot_path.read_text(encoding="utf-8")).get(
                "updates_processed", 0
            )
        _truncate_wal(shard_dir / "wal.log", position - base)
    engine = ShardedEngine(
        config=EngineConfig(shards=len(positions)), data_dir=copy, reconcile=False
    )
    try:
        groups = {
            frozenset(group)
            for group in engine.group_by(probe).as_sets()
            if group
        }
        return groups, engine.view().stats()["num_edges"]
    finally:
        engine.kill()
        shutil.rmtree(copy.parent, ignore_errors=True)


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="timetravel-smoke-"))
    data_root = tmp / "data"
    port = _free_port()
    server = _serve(port, data_root)
    loadgen: subprocess.Popen | None = None
    try:
        _wait_healthy(port)
        admin = ServiceClient("127.0.0.1", port)
        solo_client = admin.for_tenant(SOLO)
        wide_client = admin.for_tenant(WIDE)
        solo_row = admin.create_tenant(SOLO, shards=1)
        wide_row = admin.create_tenant(WIDE, shards=4)
        if solo_row["shards"] != 1 or wide_row["shards"] != 4:
            _fail(f"unexpected tenant shapes: {solo_row} / {wide_row}")

        # --- drive the service, recording positions mid-run -------------
        loadgen = _loadgen(port)
        recorded: list[int] = []
        while loadgen.poll() is None:
            applied = int(solo_client.stats()["applied"])
            if applied and (not recorded or applied > recorded[-1]):
                recorded.append(applied)
            time.sleep(0.25)
        if loadgen.wait(timeout=60) != 0:
            _fail("repro loadgen exited non-zero")
        loadgen = None
        if not recorded:
            _fail("no positions were recorded mid-run")

        # let the tail of the stream drain (positions stabilise)
        deadline = time.monotonic() + 30.0
        previous = -1
        while time.monotonic() < deadline:
            applied = int(solo_client.stats()["applied"])
            if applied == previous:
                break
            previous = applied
            time.sleep(0.3)
        solo_applied = previous
        print(f"stream drained: solo at {solo_applied}, "
              f"{len(recorded)} mid-run positions recorded")

        # --- three historical positions + latest on the solo tenant -----
        stats = solo_client.stats()
        horizon = stats["wal"]
        oldest = int(horizon["oldest_replayable"])
        if horizon["durable"] is not True or horizon["segments"] < 1:
            _fail(f"solo horizon looks wrong: {horizon}")
        replayable = [p for p in recorded if oldest <= p < solo_applied]
        positions = sorted(set(replayable))[-3:]
        while len(positions) < 3:  # thin recording: synthesise nearby cuts
            positions.append(max(oldest, solo_applied - 7 * (len(positions) + 1)))
        for position in sorted(set(positions)):
            document = solo_client.group_by_raw(PROBE, as_of=position)
            if document["view_version"] != position or document["as_of"] != [position]:
                _fail(f"as_of={position} answered {document['view_version']}")
            reference, edges = _solo_reference(data_root / SOLO, position, PROBE)
            if _groups(document) != reference:
                _fail(
                    f"solo as_of={position} diverged from the offline "
                    f"truncated-WAL replay: "
                    f"{len(_groups(document) ^ reference)} differing groups"
                )
            historical_stats = solo_client.stats(as_of=position)
            if historical_stats["num_edges"] != edges:
                _fail(
                    f"solo as_of={position} graph diverged: view has "
                    f"{historical_stats['num_edges']} edges, reference {edges}"
                )
            print(f"solo as_of={position} matches offline replay "
                  f"({len(reference)} groups, {edges} edges)")
        latest = solo_client.group_by_raw(PROBE, as_of="latest")
        live = solo_client.group_by_raw(PROBE)
        if latest["as_of"] != "latest" or _groups(latest) != _groups(live):
            _fail("as_of=latest does not serve the live view")
        print("solo as_of=latest serves the live view")

        # --- LRU: a repeated query must not replay again -----------------
        repeat = sorted(set(positions))[-1]
        before = solo_client.stats()["timetravel"]
        solo_client.group_by_raw(PROBE, as_of=repeat)
        after = solo_client.stats()["timetravel"]
        if after["hits"] <= before["hits"]:
            _fail(f"repeated as_of={repeat} was not an LRU hit: {before} -> {after}")
        if after["replay"]["count"] != before["replay"]["count"]:
            _fail(f"repeated as_of={repeat} re-replayed: {before} -> {after}")
        print(
            f"LRU serves repeats without replaying "
            f"(hits {after['hits']}, replays {after['replay']['count']})"
        )

        # --- pruned history answers a structured 410 ---------------------
        if oldest <= 1:
            _fail(f"retention never pruned (oldest replayable {oldest}); "
                  "the 410 path was not exercised")
        try:
            solo_client.group_by_raw(PROBE, as_of=1)
            _fail("as_of=1 below the horizon did not fail")
        except ServiceError as exc:
            if exc.status != 410 or exc.code != "as_of_unavailable":
                _fail(f"expected 410 as_of_unavailable, got {exc.status} {exc.code}")
            if exc.document.get("oldest_position") != oldest:
                _fail(f"410 oldest_position {exc.document.get('oldest_position')} "
                      f"!= horizon {oldest}")
        print(f"pruned history answers 410 with oldest_position={oldest}")

        # --- sharded tuple on the wide tenant ----------------------------
        tuple_positions = [
            int(row["applied"]) for row in wide_client.stats()["shards"]
        ]
        fresh = [
            Update.insert(f"{WIDE}:new0", f"{WIDE}:new1"),
            Update.insert(f"{WIDE}:new1", f"{WIDE}:new2"),
            Update.insert(f"{WIDE}:new0", f"{WIDE}:new2"),
        ]
        if wide_client.submit_updates(fresh, max_retries=5) != len(fresh):
            _fail("post-run writes to the wide tenant were shed")
        write_deadline = time.monotonic() + 20.0
        while time.monotonic() < write_deadline:
            rows = [int(row["applied"]) for row in wide_client.stats()["shards"]]
            if sum(rows) >= sum(tuple_positions) + len(fresh):
                break
            time.sleep(0.1)
        else:
            _fail("post-run wide writes never applied")
        document = wide_client.group_by_raw(PROBE, as_of=tuple_positions)
        reference, edges = _wide_reference(
            data_root / WIDE, tuple_positions, PROBE
        )
        if _groups(document) != reference:
            _fail(
                f"wide as_of={tuple_positions} diverged from the truncated "
                f"recovery: {len(_groups(document) ^ reference)} differing groups"
            )
        print(f"wide as_of={tuple_positions} matches truncated recovery "
              f"({len(reference)} groups, {edges} edges)")

        solo_client.close()
        wide_client.close()
        admin.close()
        print("timetravel smoke passed")
        return 0
    finally:
        for proc in (loadgen, server):
            if proc is not None and proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    proc.kill()
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
