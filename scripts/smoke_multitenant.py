#!/usr/bin/env python
"""Multi-tenant smoke gate: boot a 2-tenant server, drive it, assert isolation.

The CI counterpart of the v1 API's core promise:

1. start ``repro serve`` as a real subprocess (the v1 JSON/HTTP service);
2. drive tenants ``alpha`` and ``beta`` concurrently with ``repro loadgen``
   (``--tenant alpha --tenant beta --create-tenants``), whose multi-tenant
   mix rewrites each tenant's traffic into a disjoint string vertex space
   (``alpha:<v>`` / ``beta:<v>``);
3. assert isolation from the outside: both tenants applied their own
   updates, tenant A's vertices never appear in tenant B's group-by (and
   vice versa), and the untouched ``default`` tenant stayed empty.

Exits non-zero (with a diagnostic) on any violation — wired into CI as the
service smoke gate.  Run locally with::

    PYTHONPATH=src python scripts/smoke_multitenant.py
"""

from __future__ import annotations

import socket
import subprocess
import sys
import time

from repro.cli import main as repro_main
from repro.service import ServiceClient

UPDATES_PER_TENANT = 300
TENANTS = ("alpha", "beta")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_healthy(port: int, timeout: float = 15.0) -> None:
    ServiceClient.wait_until_healthy("127.0.0.1", port, timeout=timeout)


def _fail(message: str) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    port = _free_port()
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(port),
            "--epsilon",
            "0.3",
            "--mu",
            "2",
            "--rho",
            "0",
        ],
    )
    try:
        _wait_healthy(port)

        # drive both tenants through the real CLI (multi-tenant load mix)
        status = repro_main(
            [
                "loadgen",
                "--port",
                str(port),
                "--tenant",
                "alpha",
                "--tenant",
                "beta",
                "--create-tenants",
                "--dataset",
                "email",
                "--updates",
                str(UPDATES_PER_TENANT),
                "--query-ratio",
                "0.2",
            ]
        )
        if status != 0:
            _fail(f"repro loadgen exited with status {status}")

        with ServiceClient("127.0.0.1", port) as admin:
            # wait for both tenants' ingest queues to drain so the asserted
            # views reflect the whole driven stream
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                rows = {row["tenant"]: row for row in admin.list_tenants()}
                if all(rows.get(t, {}).get("queue_depth", 1) == 0 for t in TENANTS):
                    break
                time.sleep(0.2)
            tenants = {row["tenant"]: row for row in admin.list_tenants()}
            for name in TENANTS:
                if name not in tenants:
                    _fail(f"tenant {name!r} missing from /v1/tenants: {sorted(tenants)}")
                if tenants[name]["applied"] <= 0:
                    _fail(f"tenant {name!r} applied no updates: {tenants[name]}")
            if tenants["default"]["applied"] != 0:
                _fail(f"default tenant was polluted: {tenants['default']}")

            # cross-tenant probes: each tenant queried with the *other*
            # tenant's vertex space must see nothing at all
            probe_ids = list(range(200))
            for mine, other in (("alpha", "beta"), ("beta", "alpha")):
                client = admin.for_tenant(mine)
                own = client.group_by([f"{mine}:{v}" for v in probe_ids])
                if not own.groups:
                    _fail(f"tenant {mine!r} sees none of its own vertices")
                leaked = client.group_by([f"{other}:{v}" for v in probe_ids])
                if leaked.groups:
                    _fail(
                        f"isolation violated: tenant {mine!r} sees "
                        f"{other!r}'s vertices: {leaked.groups}"
                    )
                client.close()

        print(
            "SMOKE OK: 2 tenants driven "
            f"({tenants['alpha']['applied']} + {tenants['beta']['applied']} updates "
            "applied), no cross-tenant leakage, default tenant untouched"
        )
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    raise SystemExit(main())
