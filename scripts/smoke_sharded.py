#!/usr/bin/env python
"""Sharded smoke gate: a 4-shard and a 1-shard tenant must agree exactly.

The CI counterpart of the sharded engine's core promise:

1. start ``repro serve`` as a real subprocess (the v1 JSON/HTTP service);
2. create tenant ``flat`` (1 shard) and tenant ``wide`` (4 shards) and
   drive both with ``repro loadgen`` using the *same* dataset, update
   count and seed — two identical streams into two engine shapes;
3. assert **cluster-equivalence** from the outside: once both queues
   drain, the two tenants report the same applied count and partition a
   probe set identically (group-by answers are equal as set partitions,
   and the headline clustering statistics match);
4. assert **isolation and shape**: the untouched ``default`` tenant stays
   empty, ``wide`` reports 4 per-shard stat rows over the v1 surface, and
   ``/v1/healthz`` exposes its per-shard queue depths.

Exits non-zero (with a diagnostic) on any violation — wired into CI as the
sharded smoke gate.  Run locally with::

    PYTHONPATH=src python scripts/smoke_sharded.py
"""

from __future__ import annotations

import socket
import subprocess
import sys
import time

from repro.cli import main as repro_main
from repro.service import ServiceClient

UPDATES = 400
FLAT, WIDE = "flat", "wide"
PROBE = list(range(1005))


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_healthy(port: int, timeout: float = 15.0) -> None:
    ServiceClient.wait_until_healthy("127.0.0.1", port, timeout=timeout)


def _fail(message: str) -> None:
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _drive(port: int, tenant: str) -> None:
    status = repro_main(
        [
            "loadgen",
            "--port",
            str(port),
            "--tenant",
            tenant,
            "--dataset",
            "email",
            "--updates",
            str(UPDATES),
            "--query-ratio",
            "0.1",
            "--seed",
            "0",
        ]
    )
    if status != 0:
        _fail(f"repro loadgen against {tenant!r} exited with status {status}")


def main() -> int:
    port = _free_port()
    server = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(port),
            "--epsilon",
            "0.3",
            "--mu",
            "2",
            "--rho",
            "0",
        ],
    )
    try:
        _wait_healthy(port)
        with ServiceClient("127.0.0.1", port) as admin:
            flat_row = admin.create_tenant(FLAT, shards=1)
            wide_row = admin.create_tenant(WIDE, shards=4)
            if flat_row["shards"] != 1 or wide_row["shards"] != 4:
                _fail(f"unexpected tenant shapes: {flat_row} / {wide_row}")

            # identical streams into both engine shapes
            _drive(port, FLAT)
            _drive(port, WIDE)

            # wait for both ingest pipelines to drain: queue_depth == 0 is
            # necessary but not sufficient (a popped batch may still be
            # mid-apply), so require the applied counters to be equal
            # across the two tenants AND stable across two polls — and
            # fail loudly if that never happens within the deadline
            deadline = time.monotonic() + 60.0
            previous = None
            drained = False
            while time.monotonic() < deadline:
                rows = {row["tenant"]: row for row in admin.list_tenants()}
                state = tuple(
                    (rows.get(t, {}).get("queue_depth", 1),
                     rows.get(t, {}).get("applied", -1))
                    for t in (FLAT, WIDE)
                )
                depths_zero = all(depth == 0 for depth, _applied in state)
                applied_equal = state[0][1] == state[1][1] >= 0
                if depths_zero and applied_equal and state == previous:
                    drained = True
                    break
                previous = state
                time.sleep(0.2)
            if not drained:
                _fail(f"ingest never drained within 60 s: {previous}")
            # the sharded tenant's `applied` counts *routed* updates, so a
            # final batch can still be mid-apply: wait (on a fresh budget)
            # until its published per-shard view versions are stable
            # across two polls too, and fail loudly if they never are
            wide_probe = admin.for_tenant(WIDE)
            stable_deadline = time.monotonic() + 30.0
            versions = None
            stable = False
            while time.monotonic() < stable_deadline:
                current = tuple(wide_probe.stats().get("shard_versions", []))
                if current and current == versions:
                    stable = True
                    break
                versions = current
                time.sleep(0.2)
            wide_probe.close()
            if not stable:
                _fail(f"wide tenant's shard versions never stabilised: {versions}")
            rows = {row["tenant"]: row for row in admin.list_tenants()}

            # --- cluster-equivalence -----------------------------------
            if rows[FLAT]["applied"] != rows[WIDE]["applied"]:
                _fail(
                    f"applied counts diverge: flat={rows[FLAT]['applied']} "
                    f"wide={rows[WIDE]['applied']}"
                )
            if rows[FLAT]["applied"] <= 0:
                _fail("no updates were applied")
            flat = admin.for_tenant(FLAT)
            wide = admin.for_tenant(WIDE)
            flat_groups = {
                frozenset(g) for g in flat.group_by(PROBE).as_sets()
            }
            wide_groups = {
                frozenset(g) for g in wide.group_by(PROBE).as_sets()
            }
            if flat_groups != wide_groups:
                only_flat = flat_groups - wide_groups
                only_wide = wide_groups - flat_groups
                _fail(
                    "cluster-equivalence violated: "
                    f"{len(only_flat)} groups only in flat, "
                    f"{len(only_wide)} only in wide"
                )
            flat_stats, wide_stats = flat.stats(), wide.stats()
            for key in ("clusters", "cores", "hubs", "noise", "num_edges"):
                if flat_stats[key] != wide_stats[key]:
                    _fail(
                        f"stats diverge on {key!r}: "
                        f"flat={flat_stats[key]} wide={wide_stats[key]}"
                    )

            # --- shape and isolation -----------------------------------
            if wide_stats.get("num_shards") != 4:
                _fail(f"wide tenant lost its shards: {wide_stats.get('num_shards')}")
            shard_rows = wide_stats.get("shards", [])
            if [row.get("shard") for row in shard_rows] != [0, 1, 2, 3]:
                _fail(f"per-shard stats rows malformed: {shard_rows}")
            health = admin.healthz()
            depths = health.get("shards", {}).get("queue_depths", {})
            if WIDE not in depths or len(depths[WIDE]) != 4:
                _fail(f"healthz lacks per-shard depths for wide: {health}")
            if rows["default"]["applied"] != 0:
                _fail(f"default tenant was polluted: {rows['default']}")
            default_probe = admin.group_by(PROBE[:200])
            if default_probe.groups:
                _fail(f"isolation violated: default sees {default_probe.groups}")
            flat.close()
            wide.close()

        print(
            "SMOKE OK: 1-shard and 4-shard tenants applied "
            f"{rows[FLAT]['applied']} identical updates each, "
            f"{len(flat_groups)} clusters agree exactly, default untouched"
        )
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    raise SystemExit(main())
