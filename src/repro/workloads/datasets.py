"""Synthetic stand-ins for the paper's 15 SNAP datasets.

The original evaluation uses SNAP graphs ranging from ~1 K vertices
(email-Eu-core) to 1.2 billion edges (twitter-2010).  Those datasets cannot
ship with this repository and would be far beyond a pure-Python harness, so
the registry below defines *scaled-down synthetic stand-ins*: each entry
keeps the paper's dataset name, its role (representative / scalability /
extra), a generator with planted community structure or a heavy-tailed
degree distribution, and the per-dataset default ε used by the paper's
quality experiments (Tables 2 and 3).

The substitution is documented in DESIGN.md: the algorithms' relative
behaviour is driven by degree distribution, community structure and the
update mix — all preserved here — not by the identity of the vertices.
Benchmarks report the same rows/series as the paper with these stand-ins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.graph.dynamic_graph import Edge
from repro.graph.generators import planted_partition_graph, powerlaw_cluster_graph


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one synthetic dataset stand-in."""

    name: str
    paper_name: str
    generator: Callable[[], List[Edge]]
    num_vertices: int
    default_epsilon_jaccard: float
    default_epsilon_cosine: float
    representative: bool = False
    scalability: bool = False
    description: str = ""

    def load(self) -> List[Edge]:
        """Generate (deterministically) and return the edge list."""
        return self.generator()


def _planted(communities: int, size: int, p_intra: float, p_inter: float, seed: int):
    def build() -> List[Edge]:
        return planted_partition_graph(communities, size, p_intra, p_inter, seed=seed)

    return build


def _powerlaw(n: int, attachments: int, triangle_prob: float, seed: int):
    def build() -> List[Edge]:
        return powerlaw_cluster_graph(n, attachments, triangle_prob, seed=seed)

    return build


def _spec(
    name: str,
    paper_name: str,
    generator: Callable[[], List[Edge]],
    num_vertices: int,
    eps_jaccard: float,
    eps_cosine: float,
    representative: bool = False,
    scalability: bool = False,
    description: str = "",
) -> Tuple[str, DatasetSpec]:
    return name, DatasetSpec(
        name=name,
        paper_name=paper_name,
        generator=generator,
        num_vertices=num_vertices,
        default_epsilon_jaccard=eps_jaccard,
        default_epsilon_cosine=eps_cosine,
        representative=representative,
        scalability=scalability,
        description=description,
    )


#: Registry of the 15 stand-ins, keyed by the short names used in the paper's
#: figures.  The first five are the paper's representative datasets; "twitter"
#: is the scalability dataset; the remaining nine are the extra datasets of
#: Table 1.
DATASETS: Dict[str, DatasetSpec] = dict(
    [
        _spec(
            "slashdot",
            "soc-Slashdot0811",
            _planted(communities=12, size=30, p_intra=0.35, p_inter=0.01, seed=11),
            360,
            0.15,
            0.30,
            representative=True,
            description="social network stand-in with moderate communities",
        ),
        _spec(
            "notre",
            "web-NotreDame",
            _powerlaw(n=500, attachments=4, triangle_prob=0.7, seed=12),
            500,
            0.19,
            0.36,
            representative=True,
            description="web graph stand-in, heavy-tailed with high clustering",
        ),
        _spec(
            "google",
            "web-Google",
            _planted(communities=20, size=32, p_intra=0.30, p_inter=0.005, seed=13),
            640,
            0.15,
            0.30,
            representative=True,
            description="web graph stand-in with many medium communities",
        ),
        _spec(
            "wiki",
            "wiki-topcats",
            _powerlaw(n=800, attachments=5, triangle_prob=0.6, seed=14),
            800,
            0.19,
            0.34,
            representative=True,
            description="hyperlink graph stand-in, larger and denser",
        ),
        _spec(
            "livej",
            "soc-LiveJournal1",
            _planted(communities=25, size=40, p_intra=0.28, p_inter=0.004, seed=15),
            1000,
            0.60,
            0.67,
            representative=True,
            description="large social network stand-in with strong communities",
        ),
        _spec(
            "twitter",
            "twitter-2010",
            _powerlaw(n=1500, attachments=6, triangle_prob=0.5, seed=16),
            1500,
            0.20,
            0.40,
            scalability=True,
            description="scalability stand-in (the paper's billion-edge dataset)",
        ),
        _spec(
            "email",
            "email-Eu-core",
            _planted(communities=6, size=18, p_intra=0.45, p_inter=0.02, seed=21),
            108,
            0.20,
            0.40,
            description="small dense communication network",
        ),
        _spec(
            "grqc",
            "ca-GrQc",
            _planted(communities=10, size=14, p_intra=0.5, p_inter=0.005, seed=22),
            140,
            0.20,
            0.40,
            description="collaboration network stand-in (small, clustered)",
        ),
        _spec(
            "condmat",
            "ca-CondMat",
            _planted(communities=14, size=18, p_intra=0.4, p_inter=0.006, seed=23),
            252,
            0.20,
            0.40,
            description="collaboration network stand-in",
        ),
        _spec(
            "epinions",
            "soc-Epinions1",
            _powerlaw(n=360, attachments=4, triangle_prob=0.55, seed=24),
            360,
            0.20,
            0.40,
            description="trust network stand-in, heavy tailed",
        ),
        _spec(
            "dblp",
            "dblp",
            _planted(communities=16, size=22, p_intra=0.42, p_inter=0.004, seed=25),
            352,
            0.20,
            0.40,
            description="co-authorship stand-in with crisp communities",
        ),
        _spec(
            "amazon",
            "amazon0601",
            _planted(communities=18, size=24, p_intra=0.35, p_inter=0.003, seed=26),
            432,
            0.20,
            0.40,
            description="co-purchase network stand-in",
        ),
        _spec(
            "pokec",
            "soc-Pokec",
            _powerlaw(n=900, attachments=5, triangle_prob=0.5, seed=27),
            900,
            0.20,
            0.40,
            description="social network stand-in, larger",
        ),
        _spec(
            "skitter",
            "as-skitter",
            _powerlaw(n=700, attachments=4, triangle_prob=0.45, seed=28),
            700,
            0.20,
            0.40,
            description="internet topology stand-in",
        ),
        _spec(
            "talk",
            "wiki-Talk",
            _powerlaw(n=600, attachments=3, triangle_prob=0.3, seed=29),
            600,
            0.20,
            0.40,
            description="communication graph stand-in, sparse and star-heavy",
        ),
    ]
)


#: Extra stand-ins that are *not* among the paper's 15 datasets but are needed
#: by specific experiments.  "dense" is the update-cost stand-in used by the
#: Figure 8-11 benchmarks: those figures are dominated by updates touching the
#: high-degree vertices of wiki/LiveJ/Twitter, whose degrees are far beyond
#: what the laptop-scale stand-ins above can hold, so this graph reproduces
#: the operative property (degrees well above both the affordability
#: threshold 2/(rho*eps) and the harness sample cap) at a drivable size.
EXTRA_DATASETS: Dict[str, DatasetSpec] = dict(
    [
        _spec(
            "dense",
            "update-cost stand-in (wiki/LiveJ degree regime)",
            _powerlaw(n=600, attachments=30, triangle_prob=0.5, seed=31),
            600,
            0.20,
            0.40,
            description="dense hub-heavy stand-in for the update-cost figures",
        ),
    ]
)

#: Every registered stand-in: the 15 paper datasets plus the extras.
ALL_DATASETS: Dict[str, DatasetSpec] = {**DATASETS, **EXTRA_DATASETS}

#: The paper's five representative datasets (Section 9), in its order.
REPRESENTATIVES: List[str] = ["slashdot", "notre", "google", "wiki", "livej"]

#: Representatives plus the scalability dataset — the six columns of Table 2.
QUALITY_DATASETS: List[str] = REPRESENTATIVES + ["twitter"]


def list_datasets(include_extras: bool = True) -> List[str]:
    """Names of every registered dataset (paper stand-ins plus extras)."""
    return list(ALL_DATASETS) if include_extras else list(DATASETS)


def load_dataset(name: str) -> List[Edge]:
    """Generate and return the edge list of the named dataset stand-in."""
    spec = ALL_DATASETS.get(name)
    if spec is None:
        raise KeyError(f"unknown dataset {name!r}; known: {', '.join(ALL_DATASETS)}")
    return spec.load()


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` of the named dataset."""
    spec = ALL_DATASETS.get(name)
    if spec is None:
        raise KeyError(f"unknown dataset {name!r}; known: {', '.join(ALL_DATASETS)}")
    return spec
