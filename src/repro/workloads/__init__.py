"""Update workloads and the synthetic dataset registry used by the benchmarks."""

from repro.workloads.datasets import (
    ALL_DATASETS,
    DATASETS,
    EXTRA_DATASETS,
    REPRESENTATIVES,
    DatasetSpec,
    list_datasets,
    load_dataset,
)
from repro.workloads.updates import (
    InsertionStrategy,
    UpdateWorkload,
    generate_update_sequence,
)

__all__ = [
    "InsertionStrategy",
    "UpdateWorkload",
    "generate_update_sequence",
    "DatasetSpec",
    "DATASETS",
    "EXTRA_DATASETS",
    "ALL_DATASETS",
    "REPRESENTATIVES",
    "list_datasets",
    "load_dataset",
]
