"""Command line interface: ``python -m repro`` or the ``repro`` console script.

Subcommands
-----------
``list-datasets``
    Print the synthetic dataset registry.
``cluster``
    Run structural clustering on a dataset (or an edge-list file) and print
    the cluster summary.
``experiment``
    Run one of the table/figure reproductions and print its rows.
``serve``
    Run the multi-tenant clustering service (micro-batching engines behind
    the versioned ``/v1/tenants/{tenant}/...`` JSON/HTTP API) until
    interrupted; ``--backend`` selects any registered clustering backend,
    ``--replica-of URL`` runs the default tenant as a warm standby of the
    same-named tenant on another server.
``promote``
    Promote a standby tenant on a running service to primary (fence the
    old primary, drain the replay queue, flip writable).
``watchdog``
    Run the fleet watchdog as a sidecar: probe the primaries behind the
    standbys hosted on ``--targets``, auto-promote the best standby
    after a quorum of consecutive failed probes (with a cool-down guard
    against dueling promotions), and re-parent the surviving orphans
    onto the winner.
``query``
    Group-by query against a running service — current view by default,
    or a *historical* one with ``--as-of <position>`` (time-travel read
    over the tenant's retained snapshots + WAL).
``loadgen``
    Generate open-loop insert/delete/query traffic against a running service
    (or in-process engines) and print the throughput/latency report;
    repeat ``--tenant`` for a multi-tenant mix with disjoint vertex spaces,
    and add ``--trace`` to send a fresh ``X-Repro-Trace`` id per ingest
    batch so every batch's pipeline is recorded server-side.
``trace``
    Fetch recent spans from a running service's ``/v1/debug/traces``
    route — all recent spans, or one trace end-to-end with
    ``--trace-id`` (HTTP dispatch → router → per-shard apply → standby
    replay).
``check``
    Run the project-invariant static-analysis suite (monotonic-clock
    discipline, guarded fields, durable writes, asyncio hygiene,
    structured errors, thread hygiene, span hygiene) over the package
    source — or over explicit paths; exits non-zero on any unsuppressed
    finding.
``bench``
    Run a declarative capacity-bench matrix (``--matrix
    benchmarks/capacity_matrix.json``): boot real servers per spec,
    drive them with the open-loop load generator, emit the consolidated
    ``BENCH_capacity.json`` with p50/p90/p99 ingest+query latency and
    the max-sustainable-rate search.  ``repro bench gate BENCH_*.json
    --floors benchmarks/floors.json`` validates any benchmark report
    against the committed floors/ceilings and exits non-zero on a
    regression — the CI perf gate.

``repro --version`` prints the library version.  Unknown subcommands exit
with status 2 and a usage message (argparse's standard behaviour, locked in
by the CLI tests).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__
from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.experiments import (
    format_table,
    run_epsilon_sweep,
    run_eta_sweep,
    run_memory_table,
    run_overall_time,
    run_quality_table,
    run_query_size_sweep,
    run_rho_sweep,
    run_update_cost_curve,
    run_visualisation,
)
from repro.graph.io import load_edge_list
from repro.graph.similarity import SimilarityKind
from repro.workloads.datasets import DATASETS, dataset_spec, load_dataset

EXPERIMENTS = {
    "table1": lambda args: run_memory_table(update_multiplier=args.scale),
    "table2": lambda args: run_quality_table(SimilarityKind.JACCARD),
    "table3": lambda args: run_quality_table(SimilarityKind.COSINE, rhos=(0.01, 0.1)),
    "fig7": lambda args: run_overall_time(update_multiplier=args.scale),
    "fig8": lambda args: run_update_cost_curve(update_multiplier=args.scale),
    "fig9": lambda args: run_epsilon_sweep(update_multiplier=args.scale),
    "fig10": lambda args: run_eta_sweep(update_multiplier=args.scale),
    "fig11": lambda args: run_update_cost_curve(
        update_multiplier=args.scale, similarity=SimilarityKind.COSINE, epsilon=0.6
    ),
    "fig12a": lambda args: run_rho_sweep(update_multiplier=args.scale),
    "fig12b": lambda args: run_query_size_sweep(),
    "fig4-6": lambda args: run_visualisation(),
}


#: ``serve`` defaults for everything a standby discovers from its primary —
#: shared by the argument definitions and the ``--replica-of`` guard in
#: ``cmd_serve`` so the two can never drift apart.
SERVE_SHAPE_DEFAULTS = {
    "backend": "dynstrclu",
    "shards": 1,
    "epsilon": 0.5,
    "mu": 3,
    "rho": 0.01,
    "similarity": "jaccard",
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic Structural Clustering on Graphs (SIGMOD 2021) reproduction",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="print the synthetic dataset registry")

    cluster = sub.add_parser("cluster", help="cluster a dataset or an edge-list file")
    cluster.add_argument("--dataset", help="dataset name from the registry")
    cluster.add_argument("--edge-list", help="path to a SNAP-style edge list")
    cluster.add_argument("--epsilon", type=float, default=None)
    cluster.add_argument("--mu", type=int, default=5)
    cluster.add_argument("--rho", type=float, default=0.01)
    cluster.add_argument(
        "--similarity", choices=["jaccard", "cosine"], default="jaccard"
    )

    experiment = sub.add_parser("experiment", help="run a table/figure reproduction")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="update-sequence length as a multiple of the initial edge count",
    )

    serve = sub.add_parser(
        "serve", help="run the multi-tenant clustering service over JSON/HTTP (v1 API)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument(
        "--epsilon", type=float, default=SERVE_SHAPE_DEFAULTS["epsilon"]
    )
    serve.add_argument("--mu", type=int, default=SERVE_SHAPE_DEFAULTS["mu"])
    serve.add_argument("--rho", type=float, default=SERVE_SHAPE_DEFAULTS["rho"])
    serve.add_argument(
        "--similarity",
        choices=["jaccard", "cosine"],
        default=SERVE_SHAPE_DEFAULTS["similarity"],
    )
    serve.add_argument(
        "--backend",
        default=SERVE_SHAPE_DEFAULTS["backend"],
        help="clustering backend of the default tenant "
        "(dynstrclu, dynelm, scan-exact, pscan, hscan)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=SERVE_SHAPE_DEFAULTS["shards"],
        help="hash partitions of the default tenant's vertex space "
        "(1: single engine; N > 1: sharded engine with scatter-gather reads)",
    )
    serve.add_argument(
        "--data-dir",
        help="default tenant's snapshot+WAL directory; enables durability "
        "and crash recovery (dynstrclu backend only)",
    )
    serve.add_argument(
        "--replica-of",
        metavar="URL",
        help="run the default tenant as a warm standby of the same-named "
        "tenant at URL (host:port or http://host:port): shape and state "
        "are discovered from the primary, its WAL is replayed "
        "continuously, and writes are rejected until 'repro promote'; "
        "requires --data-dir",
    )
    serve.add_argument(
        "--data-root",
        help="directory under which dynamically created tenants persist "
        "(data_root/<tenant>/)",
    )
    serve.add_argument(
        "--max-tenants",
        type=int,
        default=64,
        help="server-wide cap on concurrently hosted tenants",
    )
    serve.add_argument("--batch-size", type=int, default=64)
    serve.add_argument("--flush-interval", type=float, default=0.05)
    serve.add_argument("--queue-capacity", type=int, default=4096)
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="cut a checkpoint every N applied updates (0: only on shutdown)",
    )
    serve.add_argument(
        "--dataset",
        help="optionally preload a registry dataset into the default tenant",
    )
    serve.add_argument(
        "--trace-log",
        metavar="PATH",
        help="mirror every completed trace span to this JSONL file "
        "(the in-memory span ring serves GET /v1/debug/traces either way)",
    )

    promote = sub.add_parser(
        "promote",
        help="promote a standby tenant on a running service to primary "
        "(fences the old primary, drains the replay queue, flips writable)",
    )
    promote.add_argument("--host", default="127.0.0.1")
    promote.add_argument("--port", type=int, default=8321)
    promote.add_argument(
        "--tenant", default="default", help="standby tenant to promote"
    )

    watchdog = sub.add_parser(
        "watchdog",
        help="sidecar fleet supervisor: probe primaries, auto-promote the "
        "best standby after a quorum of failed probes, re-parent orphans",
    )
    watchdog.add_argument(
        "--targets",
        nargs="+",
        required=True,
        metavar="HOST:PORT",
        help="servers hosting the standbys to supervise (the primaries "
        "they replicate from are discovered and probed automatically)",
    )
    watchdog.add_argument(
        "--tenant",
        action="append",
        dest="tenants",
        metavar="NAME",
        help="supervise only this tenant (repeatable; default: every "
        "standby tenant found on the targets)",
    )
    watchdog.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="seconds between probe rounds",
    )
    watchdog.add_argument(
        "--quorum",
        type=int,
        default=3,
        help="consecutive failed probes of a primary before promotion",
    )
    watchdog.add_argument(
        "--cooldown",
        type=float,
        default=5.0,
        help="seconds a tenant is frozen after any promotion attempt",
    )
    watchdog.add_argument(
        "--probe-timeout",
        type=float,
        default=2.0,
        help="per-probe socket timeout",
    )
    watchdog.add_argument(
        "--decision-log",
        metavar="PATH",
        help="append every probe/promotion decision to this JSONL file",
    )

    query = sub.add_parser(
        "query",
        help="group-by query against a running service (current view, or "
        "a historical one with --as-of)",
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=8321)
    query.add_argument("--tenant", default="default", help="tenant to query")
    query.add_argument(
        "--as-of",
        dest="as_of",
        metavar="POSITION",
        help="serve the historical view at this applied position instead "
        "of the live one: an integer for unsharded tenants, a "
        "comma-separated per-shard tuple for sharded ones, or 'latest' "
        "(positions come from the tenant's stats document)",
    )
    query.add_argument(
        "vertices",
        nargs="+",
        metavar="VERTEX",
        help="vertices to group (digits are int ids; prefix with '~' to "
        "force a string id, matching the WAL token convention)",
    )

    loadgen = sub.add_parser(
        "loadgen", help="generate open-loop traffic against a clustering service"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8321)
    loadgen.add_argument(
        "--in-process",
        action="store_true",
        help="drive a fresh in-process engine instead of a remote server",
    )
    loadgen.add_argument(
        "--tenant",
        action="append",
        dest="tenants",
        metavar="NAME",
        help="tenant to drive (repeat for a multi-tenant mix; default: default)",
    )
    loadgen.add_argument(
        "--create-tenants",
        action="store_true",
        help="create the named tenants on the server first (idempotent)",
    )
    loadgen.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for tenants created by --create-tenants or "
        "--in-process (1: single engine; omitted: the server default)",
    )
    loadgen.add_argument(
        "--vertex-prefix",
        default="",
        help="rewrite every vertex id to the string '<prefix><id>' "
        "(multi-tenant mixes always add a '<tenant>:' prefix per tenant)",
    )
    loadgen.add_argument("--dataset", default="email")
    loadgen.add_argument(
        "--updates", type=int, default=2000, help="generated updates after the hot start"
    )
    loadgen.add_argument("--eta", type=float, default=0.2, help="deletion ratio")
    loadgen.add_argument("--rate", type=float, default=0.0, help="requests/s (0: max)")
    loadgen.add_argument("--ingest-batch", type=int, default=16)
    loadgen.add_argument("--query-ratio", type=float, default=0.2)
    loadgen.add_argument("--query-size", type=int, default=32)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--epsilon", type=float, default=0.5)
    loadgen.add_argument("--mu", type=int, default=3)
    loadgen.add_argument("--rho", type=float, default=0.01)
    loadgen.add_argument(
        "--trace",
        action="store_true",
        help="send a fresh X-Repro-Trace id with every ingest batch so the "
        "server records each batch's full pipeline (HTTP mode only; "
        "inspect with 'repro trace' or GET /v1/debug/traces)",
    )
    loadgen.add_argument("--json", dest="json_out", help="also write the report to this file")

    trace = sub.add_parser(
        "trace",
        help="fetch recent spans from a running service "
        "(GET /v1/debug/traces; --trace-id follows one request end-to-end)",
    )
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument("--port", type=int, default=8321)
    trace.add_argument(
        "--trace-id",
        dest="trace_id",
        help="show only this trace's spans (an X-Repro-Trace value)",
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=100,
        help="most recent spans to fetch (default: 100)",
    )
    trace.add_argument(
        "--json",
        dest="json_out",
        action="store_true",
        help="print the raw span documents as JSON instead of the table",
    )

    check = sub.add_parser(
        "check",
        help="run the project-invariant static-analysis suite "
        "(see docs/DEVTOOLS.md)",
    )
    check.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to check (default: the installed "
        "repro package source)",
    )
    check.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        dest="output_format",
        help="output format (default: human)",
    )
    check.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated check codes or names to run "
        "(e.g. REPRO301 or durable-write,monotonic)",
    )

    bench = sub.add_parser(
        "bench",
        help="run a declarative capacity-bench matrix, or gate benchmark "
        "reports against committed floors (see docs/BENCHMARKS.md)",
    )
    bench.add_argument(
        "--matrix",
        metavar="PATH",
        help="JSON (or TOML) spec-matrix file to execute "
        "(e.g. benchmarks/capacity_matrix.json)",
    )
    bench.add_argument(
        "--output",
        default="BENCH_capacity.json",
        metavar="PATH",
        help="where to write the consolidated report "
        "(default: BENCH_capacity.json)",
    )
    bench.add_argument(
        "--mode",
        choices=("subprocess", "inprocess"),
        default="subprocess",
        help="server boot mode per spec: real 'repro serve' subprocesses "
        "(default) or an in-process background server (test harness)",
    )
    bench.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only this expanded spec (repeatable)",
    )
    bench.add_argument(
        "--list",
        dest="list_specs",
        action="store_true",
        help="print the expanded spec list and exit without running",
    )
    bench.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-spec progress lines on stderr",
    )
    bench_sub = bench.add_subparsers(dest="bench_command")
    bench_gate = bench_sub.add_parser(
        "gate",
        help="validate BENCH_*.json reports against the committed floors "
        "file; exits non-zero on any regression",
    )
    bench_gate.add_argument(
        "reports",
        nargs="*",
        metavar="REPORT",
        help="benchmark report files (BENCH_*.json); matched to gates by "
        "their 'benchmark' field",
    )
    bench_gate.add_argument(
        "--floors",
        required=True,
        metavar="PATH",
        help="the committed floors file (benchmarks/floors.json)",
    )
    bench_gate.add_argument(
        "--check-floors",
        action="store_true",
        help="only schema-validate the floors file (no reports needed); "
        "exit 2 when it is malformed — the fail-fast CI step",
    )
    bench_gate.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        dest="output_format",
        help="output format (default: human)",
    )
    return parser


def _cmd_list_datasets() -> int:
    rows = []
    for name, spec in DATASETS.items():
        rows.append(
            {
                "name": name,
                "paper_name": spec.paper_name,
                "vertices": spec.num_vertices,
                "eps_jaccard": spec.default_epsilon_jaccard,
                "eps_cosine": spec.default_epsilon_cosine,
                "representative": spec.representative,
            }
        )
    print(format_table(rows, title="Synthetic dataset registry"))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    if bool(args.dataset) == bool(args.edge_list):
        print("exactly one of --dataset / --edge-list is required", file=sys.stderr)
        return 2
    similarity = SimilarityKind(args.similarity)
    if args.dataset:
        edges = load_dataset(args.dataset)
        spec = dataset_spec(args.dataset)
        default_eps = (
            spec.default_epsilon_jaccard
            if similarity is SimilarityKind.JACCARD
            else spec.default_epsilon_cosine
        )
    else:
        edges, _mapping = load_edge_list(args.edge_list)
        default_eps = 0.2
    epsilon = args.epsilon if args.epsilon is not None else default_eps
    params = StrCluParams(epsilon=epsilon, mu=args.mu, rho=args.rho, similarity=similarity)
    algo = DynStrClu.from_edges(edges, params)
    clustering = algo.clustering()
    summary = clustering.summary()
    summary_row = {"epsilon": epsilon, "mu": args.mu, "rho": args.rho}
    summary_row.update(summary)
    print(format_table([summary_row], title="StrClu result"))
    top = [
        {"rank": i + 1, "size": len(c)} for i, c in enumerate(clustering.top_k(10))
    ]
    if top:
        print()
        print(format_table(top, title="Top clusters"))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    rows = EXPERIMENTS[args.name](args)
    print(format_table(rows, title=f"Experiment {args.name}"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.core.dynelm import Update
    from repro.service import (
        ClusteringServiceServer,
        EngineConfig,
        EngineManager,
        make_engine,
    )

    if args.trace_log:
        from repro.service import configure_tracer

        configure_tracer(jsonl_path=Path(args.trace_log))
    try:
        params = StrCluParams(
            epsilon=args.epsilon,
            mu=args.mu,
            rho=args.rho,
            similarity=SimilarityKind(args.similarity),
        )
        config = EngineConfig(
            batch_size=args.batch_size,
            flush_interval=args.flush_interval,
            queue_capacity=args.queue_capacity,
            checkpoint_every=args.checkpoint_every,
            shards=args.shards,
        )
        if args.replica_of:
            from repro.service import EngineError, ServiceError, StandbyEngine

            if not args.data_dir:
                print(
                    "repro serve: --replica-of requires --data-dir "
                    "(the standby keeps its own durable snapshot + WAL)",
                    file=sys.stderr,
                )
                return 2
            if args.dataset:
                print(
                    "repro serve: --dataset cannot be combined with "
                    "--replica-of (a standby is read-only until promoted)",
                    file=sys.stderr,
                )
                return 2
            # mirror EngineManager.create's refusal instead of silently
            # discarding tuning the operator believes applied (a standby
            # discovers shape, backend and params from its primary)
            overridden = [
                f"--{name}"
                for name, default in SERVE_SHAPE_DEFAULTS.items()
                if getattr(args, name) != default
            ]
            if overridden:
                print(
                    "repro serve: a standby's shape, backend and params are "
                    "discovered from its primary; "
                    f"{', '.join(overridden)} cannot be combined with "
                    "--replica-of",
                    file=sys.stderr,
                )
                return 2
            try:
                engine = StandbyEngine(
                    args.replica_of,
                    "default",
                    data_dir=args.data_dir,
                    config=config,
                )
            except (EngineError, ServiceError) as exc:
                # primary refused replication (non-durable tenant, 404,
                # chained standby): a clean message, not a traceback
                print(f"repro serve: {exc}", file=sys.stderr)
                return 2
        else:
            engine = make_engine(
                params, config=config, data_dir=args.data_dir, backend=args.backend
            )
    except (ValueError, OSError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    if engine.recovered_updates:
        print(
            f"recovered {engine.recovered_updates} WAL updates "
            f"(state at {engine.applied} applied)",
            file=sys.stderr,
        )
    manager = EngineManager.adopt(engine)
    manager.max_tenants = args.max_tenants
    if args.data_root:
        manager.data_root = Path(args.data_root)
    with engine:
        if args.dataset:
            for u, v in load_dataset(args.dataset):
                engine.submit(Update.insert(u, v))
            engine.flush()
            print(
                f"preloaded dataset {args.dataset!r}: {engine.view().stats()}",
                file=sys.stderr,
            )

        async def _serve() -> None:
            server = ClusteringServiceServer(manager, host=args.host, port=args.port)
            await server.start()
            if args.replica_of:
                shape = f"standby of {args.replica_of}"
            elif args.shards > 1:
                shape = f"{args.shards} shards"
            else:
                shape = "single engine"
            print(
                f"repro service v1 listening on http://{args.host}:{server.port} "
                f"(default tenant backend: {args.backend}, {shape}; "
                f"GET /v1/healthz, GET|POST /v1/tenants, "
                f"DELETE /v1/tenants/{{t}}, "
                f"POST /v1/tenants/{{t}}/updates, POST /v1/tenants/{{t}}/group-by, "
                f"GET /v1/tenants/{{t}}/cluster/{{v}}, GET /v1/tenants/{{t}}/stats; "
                f"legacy unversioned routes serve the default tenant)",
                file=sys.stderr,
            )
            await server.serve_forever()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            print("shutting down (final checkpoint)...", file=sys.stderr)
        finally:
            manager.close()
    return 0


def _cmd_promote(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port, tenant=args.tenant)
    try:
        document = client.promote_tenant()
    except (OSError, ServiceError) as exc:
        print(f"repro promote: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    print(
        f"tenant {args.tenant!r} promoted: epoch {document.get('epoch')}, "
        f"applied {document.get('applied')}, "
        f"old primary fenced: {document.get('fenced_primary')}"
    )
    return 0


def _cmd_watchdog(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service import DecisionLog, FleetError, FleetWatchdog, WatchdogConfig
    from repro.service.replication import parse_primary_url

    try:
        for target in args.targets:
            parse_primary_url(target)  # fail fast on malformed HOST:PORT
        config = WatchdogConfig(
            interval=args.interval,
            quorum=args.quorum,
            cooldown=args.cooldown,
            probe_timeout=args.probe_timeout,
        )
        log = DecisionLog(
            path=Path(args.decision_log) if args.decision_log else None,
            echo=lambda line: print(line, file=sys.stderr, flush=True),
        )
        watchdog = FleetWatchdog(
            targets=args.targets,
            tenants=args.tenants,
            config=config,
            decision_log=log,
        )
    except (FleetError, ValueError) as exc:
        print(f"repro watchdog: {exc}", file=sys.stderr)
        return 2
    watchdog.start()
    print(
        f"repro watchdog supervising {', '.join(args.targets)} "
        f"(interval {args.interval}s, quorum {args.quorum}, "
        f"cooldown {args.cooldown}s); Ctrl-C to stop",
        file=sys.stderr,
    )
    try:
        while watchdog.is_alive():
            watchdog.join(timeout=1.0)
    except KeyboardInterrupt:
        print("repro watchdog: stopping", file=sys.stderr)
    finally:
        watchdog.stop()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.persistence.updatelog import parse_vertex_token
    from repro.service import ServiceClient, ServiceError

    try:
        vertices = [parse_vertex_token(token) for token in args.vertices]
    except ValueError as exc:
        print(f"repro query: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(args.host, args.port, tenant=args.tenant)
    try:
        document = client.group_by_raw(vertices, as_of=args.as_of)
    except (OSError, ServiceError) as exc:
        if isinstance(exc, ServiceError) and exc.code == "as_of_unavailable":
            oldest = (
                exc.document.get("oldest_position")
                if isinstance(exc.document, dict)
                else None
            )
            print(
                f"repro query: history at --as-of {args.as_of} is no longer "
                f"retained (oldest replayable position: {oldest})",
                file=sys.stderr,
            )
            return 1
        print(f"repro query: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    print(json.dumps(document, indent=2, default=repr))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service import (
        ClientTarget,
        EngineConfig,
        EngineManager,
        EngineTarget,
        LoadGenConfig,
        LoadGenerator,
        MultiTenantLoadGenerator,
        ServiceClient,
        ServiceError,
    )
    from repro.workloads.updates import generate_update_sequence

    if args.trace and args.in_process:
        print(
            "repro loadgen: --trace needs the HTTP path (the X-Repro-Trace "
            "header); it cannot be combined with --in-process",
            file=sys.stderr,
        )
        return 2
    # dedup while preserving order: a repeated --tenant must not double-count
    tenants = list(dict.fromkeys(args.tenants)) if args.tenants else ["default"]
    try:
        spec = dataset_spec(args.dataset)
        edges = load_dataset(args.dataset)
        workload = generate_update_sequence(
            spec.num_vertices, edges, args.updates, eta=args.eta, seed=args.seed
        )
        stream = list(workload.all_updates())
        config = LoadGenConfig(
            rate=args.rate,
            ingest_batch=args.ingest_batch,
            query_ratio=args.query_ratio,
            query_size=args.query_size,
            seed=args.seed,
            vertex_prefix=args.vertex_prefix,
        )
    except (KeyError, ValueError) as exc:
        print(f"repro loadgen: {exc}", file=sys.stderr)
        return 2

    manager = None
    clients = []
    targets = {}
    if args.shards is not None:
        try:
            EngineConfig(shards=args.shards)  # the one validation authority
        except ValueError as exc:
            print(f"repro loadgen: {exc}", file=sys.stderr)
            return 2
    shards = args.shards  # None: inherit the server/manager default
    if args.in_process:
        params = StrCluParams(epsilon=args.epsilon, mu=args.mu, rho=args.rho)
        # the default tenant is built eagerly by the manager itself, so the
        # requested shard count must be in the inherited config — not only
        # in the explicit create() calls below
        manager = EngineManager(
            params,
            default_engine_config=(
                EngineConfig(shards=shards) if shards is not None else None
            ),
            create_default=("default" in tenants),
        )
        for tenant in tenants:
            if tenant not in manager:
                manager.create(tenant, shards=shards)
            targets[tenant] = EngineTarget(manager.get(tenant))
    else:
        probe = ServiceClient(args.host, args.port)
        try:
            probe.healthz()  # fail fast when no server is listening
        except (OSError, ServiceError) as exc:
            print(
                f"repro loadgen: no clustering service at "
                f"http://{args.host}:{args.port} ({exc})",
                file=sys.stderr,
            )
            probe.close()
            return 2
        for tenant in tenants:
            client = probe if tenant == probe.tenant else probe.for_tenant(tenant)
            if client is not probe:
                clients.append(client)
            if args.create_tenants:
                try:
                    client.create_tenant(exist_ok=True, shards=shards)
                except ServiceError as exc:
                    print(f"repro loadgen: creating tenant {tenant!r}: {exc}",
                          file=sys.stderr)
                    return 2
            targets[tenant] = ClientTarget(client, trace=args.trace)
        clients.append(probe)

    try:
        if len(tenants) == 1:
            generator = LoadGenerator(targets[tenants[0]], stream, config=config)
            reports = {tenants[0]: generator.run()}
            metrics_by_tenant = {tenants[0]: generator.metrics}
        else:
            multi = MultiTenantLoadGenerator(targets, stream, config=config)
            reports = multi.run()
            metrics_by_tenant = {
                name: generator.metrics for name, generator in multi.generators.items()
            }
        if manager is not None:
            for engine in manager.engines():
                engine.flush()
    finally:
        if manager is not None:
            manager.close()
        for client in clients:
            client.close()

    rows = []
    errors = []
    for tenant in tenants:
        report = reports[tenant]
        metrics = metrics_by_tenant[tenant]
        errors.extend(report.errors)
        rows.append(
            {
                "tenant": tenant,
                "requests": report.requests,
                "updates_sent": report.updates_sent,
                "accepted": report.updates_accepted,
                "rejected": report.updates_rejected,
                "offered_upd_s": round(report.offered_updates_per_second, 1),
                "accepted_upd_s": round(report.accepted_updates_per_second, 1),
                "query_p50_ms": round(metrics.query.percentile(50) * 1e3, 3),
                "query_p99_ms": round(metrics.query.percentile(99) * 1e3, 3),
                "max_lag_s": round(report.max_lag_s, 4),
            }
        )
    print(format_table(rows, title=f"loadgen against {args.dataset}"))
    if errors:
        print(f"{len(errors)} request errors; first: {errors[0]}", file=sys.stderr)
    if args.json_out:
        document = {tenant: reports[tenant].as_dict() for tenant in tenants}
        if len(tenants) == 1:
            document = document[tenants[0]]
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
        print(f"report written to {args.json_out}", file=sys.stderr)
    return 0 if not errors else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.host, args.port)
    try:
        document = client.debug_traces(trace_id=args.trace_id, limit=args.limit)
    except (OSError, ServiceError) as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    spans = document.get("spans", [])
    if args.json_out:
        print(json.dumps(spans, indent=2, default=str))
        return 0
    if not spans:
        scope = f"trace {args.trace_id!r}" if args.trace_id else "the span ring"
        print(f"no spans in {scope} (ring capacity "
              f"{document.get('capacity')}, dropped {document.get('dropped')})")
        return 0
    rows = []
    for span in spans:
        attrs = span.get("attrs") or {}
        rows.append(
            {
                "trace": span.get("trace_id"),
                "span": span.get("span_id"),
                "parent": span.get("parent_id") or "-",
                "name": span.get("name"),
                "ms": round(float(span.get("duration_s", 0.0)) * 1e3, 3),
                "thread": span.get("thread"),
                "attrs": ",".join(f"{k}={v}" for k, v in sorted(attrs.items())),
            }
        )
    title = (
        f"trace {args.trace_id}" if args.trace_id
        else f"last {len(rows)} spans"
    )
    print(format_table(rows, title=title))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.devtools import all_checkers, run_checks

    paths = (
        [Path(path) for path in args.paths]
        if args.paths
        else [Path(repro.__file__).parent]
    )
    select = args.select.split(",") if args.select else None
    try:
        report = run_checks(paths, all_checkers(), select=select)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(report.render_json())
    else:
        print(report.render_human())
    return 0 if report.ok else 1


def _cmd_bench_gate(args: argparse.Namespace) -> int:
    from repro.bench import FloorsError, gate_reports, load_floors

    try:
        floors = load_floors(args.floors)
    except FloorsError as exc:
        print(f"repro bench gate: malformed floors file: {exc}", file=sys.stderr)
        return 2
    if args.check_floors and not args.reports:
        print(f"floors file {args.floors} is schema-valid")
        return 0
    if not args.reports:
        print(
            "repro bench gate: at least one REPORT is required "
            "(or --check-floors to only validate the floors file)",
            file=sys.stderr,
        )
        return 2
    outcome = gate_reports(args.reports, args.floors, floors=floors)
    if args.output_format == "json":
        print(json.dumps(outcome.as_dict(), indent=2))
    else:
        from repro.experiments import format_table

        if outcome.results:
            rows = [result.row() for result in outcome.results]
            print(format_table(rows, title=f"bench gate — floors {args.floors}"))
        for note in outcome.unmatched:
            print(f"note: {note}", file=sys.stderr)
        for error in outcome.errors:
            print(f"error: {error}", file=sys.stderr)
        failed = sum(1 for result in outcome.results if not result.ok)
        verdict = "OK" if outcome.ok else f"FAIL ({failed} check(s) violated)"
        print(f"bench gate: {verdict}")
    return 0 if outcome.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    if getattr(args, "bench_command", None) == "gate":
        return _cmd_bench_gate(args)

    from repro.bench import (
        RunnerOptions,
        SpecError,
        load_matrix,
        render_summary,
        run_matrix,
        select_specs,
    )

    if not args.matrix:
        print(
            "repro bench: --matrix PATH is required "
            "(or use the 'gate' subcommand)",
            file=sys.stderr,
        )
        return 2
    try:
        specs = select_specs(load_matrix(args.matrix), args.only)
    except SpecError as exc:
        print(f"repro bench: {exc}", file=sys.stderr)
        return 2
    if args.list_specs:
        for spec in specs:
            print(spec.name)
        return 0
    options = RunnerOptions(mode=args.mode, verbose=not args.quiet)
    report = run_matrix(specs, options=options, matrix_path=args.matrix)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(render_summary(report))
    print(f"report written to {args.output}", file=sys.stderr)
    errors = [
        entry for entry in report["specs"] if "error" in entry  # type: ignore[index]
    ]
    if errors:
        for entry in errors:
            print(
                f"repro bench: spec {entry['name']!r} failed: {entry['error']}",
                file=sys.stderr,
            )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list-datasets":
        return _cmd_list_datasets()
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "promote":
        return _cmd_promote(args)
    if args.command == "watchdog":
        return _cmd_watchdog(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "bench":
        return _cmd_bench(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
