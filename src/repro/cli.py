"""Command line interface: ``python -m repro`` or the ``repro`` console script.

Subcommands
-----------
``list-datasets``
    Print the synthetic dataset registry.
``cluster``
    Run structural clustering on a dataset (or an edge-list file) and print
    the cluster summary.
``experiment``
    Run one of the table/figure reproductions and print its rows.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.experiments import (
    format_table,
    run_epsilon_sweep,
    run_eta_sweep,
    run_memory_table,
    run_overall_time,
    run_quality_table,
    run_query_size_sweep,
    run_rho_sweep,
    run_update_cost_curve,
    run_visualisation,
)
from repro.graph.io import load_edge_list
from repro.graph.similarity import SimilarityKind
from repro.workloads.datasets import DATASETS, dataset_spec, load_dataset

EXPERIMENTS = {
    "table1": lambda args: run_memory_table(update_multiplier=args.scale),
    "table2": lambda args: run_quality_table(SimilarityKind.JACCARD),
    "table3": lambda args: run_quality_table(SimilarityKind.COSINE, rhos=(0.01, 0.1)),
    "fig7": lambda args: run_overall_time(update_multiplier=args.scale),
    "fig8": lambda args: run_update_cost_curve(update_multiplier=args.scale),
    "fig9": lambda args: run_epsilon_sweep(update_multiplier=args.scale),
    "fig10": lambda args: run_eta_sweep(update_multiplier=args.scale),
    "fig11": lambda args: run_update_cost_curve(
        update_multiplier=args.scale, similarity=SimilarityKind.COSINE, epsilon=0.6
    ),
    "fig12a": lambda args: run_rho_sweep(update_multiplier=args.scale),
    "fig12b": lambda args: run_query_size_sweep(),
    "fig4-6": lambda args: run_visualisation(),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dynamic Structural Clustering on Graphs (SIGMOD 2021) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets", help="print the synthetic dataset registry")

    cluster = sub.add_parser("cluster", help="cluster a dataset or an edge-list file")
    cluster.add_argument("--dataset", help="dataset name from the registry")
    cluster.add_argument("--edge-list", help="path to a SNAP-style edge list")
    cluster.add_argument("--epsilon", type=float, default=None)
    cluster.add_argument("--mu", type=int, default=5)
    cluster.add_argument("--rho", type=float, default=0.01)
    cluster.add_argument(
        "--similarity", choices=["jaccard", "cosine"], default="jaccard"
    )

    experiment = sub.add_parser("experiment", help="run a table/figure reproduction")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="update-sequence length as a multiple of the initial edge count",
    )
    return parser


def _cmd_list_datasets() -> int:
    rows = []
    for name, spec in DATASETS.items():
        rows.append(
            {
                "name": name,
                "paper_name": spec.paper_name,
                "vertices": spec.num_vertices,
                "eps_jaccard": spec.default_epsilon_jaccard,
                "eps_cosine": spec.default_epsilon_cosine,
                "representative": spec.representative,
            }
        )
    print(format_table(rows, title="Synthetic dataset registry"))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    if bool(args.dataset) == bool(args.edge_list):
        print("exactly one of --dataset / --edge-list is required", file=sys.stderr)
        return 2
    similarity = SimilarityKind(args.similarity)
    if args.dataset:
        edges = load_dataset(args.dataset)
        spec = dataset_spec(args.dataset)
        default_eps = (
            spec.default_epsilon_jaccard
            if similarity is SimilarityKind.JACCARD
            else spec.default_epsilon_cosine
        )
    else:
        edges, _mapping = load_edge_list(args.edge_list)
        default_eps = 0.2
    epsilon = args.epsilon if args.epsilon is not None else default_eps
    params = StrCluParams(epsilon=epsilon, mu=args.mu, rho=args.rho, similarity=similarity)
    algo = DynStrClu.from_edges(edges, params)
    clustering = algo.clustering()
    summary = clustering.summary()
    summary_row = {"epsilon": epsilon, "mu": args.mu, "rho": args.rho}
    summary_row.update(summary)
    print(format_table([summary_row], title="StrClu result"))
    top = [
        {"rank": i + 1, "size": len(c)} for i, c in enumerate(clustering.top_k(10))
    ]
    if top:
        print()
        print(format_table(top, title="Top clusters"))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    rows = EXPERIMENTS[args.name](args)
    print(format_table(rows, title=f"Experiment {args.name}"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "list-datasets":
        return _cmd_list_datasets()
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
