"""Operation counting and structure-size accounting.

The paper reports wall-clock update latencies measured on a native C++
implementation.  In pure Python the interpreter overhead dominates absolute
latencies, so in addition to wall-clock timing (via ``pytest-benchmark``)
this module provides a deterministic *cost model*: algorithms increment
named counters for the operations that dominate their asymptotic cost
(neighbourhood probes, similarity evaluations, heap operations, connectivity
operations).  The benchmark harness reports both wall-clock time and these
counters; the counters are what make the asymptotic separation between
DynELM/DynStrClu and the pSCAN/hSCAN baselines visible independently of the
interpreter.

The module also provides :class:`MemoryModel`, a structure-size accountant
used for the Table 1 reproduction: instead of process RSS (meaningless for
small synthetic graphs), each algorithm reports the number of logical
machine words its data structures hold.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator


class OpCounter:
    """A named operation counter shared by an algorithm instance.

    Counters are plain integers keyed by a short operation name, e.g.
    ``"neighbour_probe"``, ``"similarity_eval"``, ``"heap_op"``,
    ``"cc_op"``, ``"sample"``.  The counter is intentionally tiny: the hot
    paths call :meth:`add` millions of times during a benchmark run.
    """

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counts[name] += amount

    def get(self, name: str) -> int:
        """Return the current value of counter ``name`` (0 if never used)."""
        return self.counts.get(name, 0)

    def total(self) -> int:
        """Return the sum over all counters."""
        return sum(self.counts.values())

    def reset(self) -> None:
        """Zero every counter."""
        self.counts.clear()

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy of the current counters."""
        return dict(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"OpCounter({inner})"


class NullCounter(OpCounter):
    """An OpCounter whose :meth:`add` is a no-op.

    Used as the default so that production code paths pay (almost) nothing
    when instrumentation is not requested.
    """

    def add(self, name: str, amount: int = 1) -> None:  # noqa: D102
        return


#: Shared do-nothing counter instance; safe because it holds no state.
NULL_COUNTER = NullCounter()


@dataclass
class MemoryModel:
    """Logical structure-size accounting, in machine words.

    Every algorithm exposes a ``memory_words()`` method built on this model.
    The constants below approximate the per-element footprint the paper's
    C++ implementation would pay; the point of Table 1 is the *relative*
    footprint (all methods linear in ``n + m``; DynStrClu ~10-20% above
    DynELM; hSCAN roughly 2x), which these counts preserve.
    """

    #: words per adjacency entry (vertex id + set/BST overhead)
    adjacency_entry: int = 3
    #: words per vertex record (degree, shared counter, bookkeeping)
    vertex_record: int = 4
    #: words per edge-label record
    edge_label: int = 2
    #: words per DT coordinator state (threshold, slack, signals, round)
    dt_coordinator: int = 4
    #: words per DtHeap entry (key, shared-counter snapshot, edge ref, position)
    dt_heap_entry: int = 4
    #: words per similar-neighbour index entry (hSCAN-style sorted index)
    index_entry: int = 3
    #: words per connectivity-structure node (treap node / level bookkeeping)
    cc_node: int = 8
    #: words per vAuxInfo neighbour-category entry
    aux_entry: int = 2

    def words(self, **element_counts: int) -> int:
        """Combine element counts into a single word total.

        Unknown keyword names raise ``AttributeError`` so typos in callers
        fail loudly.
        """
        total = 0
        for name, count in element_counts.items():
            per_element = getattr(self, name)
            total += per_element * count
        return total


@dataclass
class Stopwatch:
    """Accumulating wall-clock stopwatch with named phases."""

    elapsed: Dict[str, float] = field(default_factory=dict)

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Accumulate wall-clock time of the ``with`` body under ``phase``."""
        start = perf_counter()
        try:
            yield
        finally:
            self.elapsed[phase] = self.elapsed.get(phase, 0.0) + perf_counter() - start

    def total(self) -> float:
        """Return total elapsed seconds over all phases."""
        return sum(self.elapsed.values())
