"""Union–find based connectivity with rebuild-on-delete.

This backend is the simple, obviously-correct reference: insertions are
handled online by a weighted quick-union with path compression; a deletion
marks the structure dirty and the next query rebuilds the union–find from
the stored edge set.  It is used

* as the correctness oracle in property-based tests for the Euler-tour and
  HDT backends, and
* in the connectivity ablation benchmark, where the paper's choice of a
  poly-log fully dynamic structure is contrasted with the rebuild strategy
  on deletion-heavy workloads.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

from repro.connectivity.base import ConnectivityStructure, Vertex

Edge = Tuple[Vertex, Vertex]


class UnionFind:
    """Weighted quick-union with path halving over arbitrary hashable items."""

    __slots__ = ("_parent", "_size")

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Add ``item`` as a singleton set (no-op if present)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s set."""
        parent = self._parent
        root = item
        while parent[root] != root:
            parent[root] = parent[parent[root]]  # path halving
            root = parent[root]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; return True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, item: Hashable) -> int:
        """Return the size of ``item``'s set."""
        return self._size[self.find(item)]


class UnionFindConnectivity(ConnectivityStructure):
    """Connectivity structure backed by a union–find rebuilt after deletions."""

    def __init__(self) -> None:
        self._vertices: Set[Vertex] = set()
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._num_edges = 0
        self._uf = UnionFind()
        self._dirty = False
        self.rebuilds = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _key(u: Vertex, v: Vertex) -> Edge:
        try:
            return (u, v) if u <= v else (v, u)  # type: ignore[operator]
        except TypeError:
            return (u, v) if repr(u) <= repr(v) else (v, u)

    def _ensure_clean(self) -> None:
        if not self._dirty:
            return
        self._uf = UnionFind(self._vertices)
        for u, nbrs in self._adj.items():
            for v in nbrs:
                self._uf.union(u, v)
        self._dirty = False
        self.rebuilds += 1

    # ------------------------------------------------------------------
    def add_vertex(self, u: Vertex) -> None:
        if u in self._vertices:
            return
        self._vertices.add(u)
        self._adj[u] = set()
        if not self._dirty:
            self._uf.add(u)

    def remove_vertex(self, u: Vertex) -> None:
        if u not in self._vertices:
            return
        if self._adj[u]:
            raise ValueError(f"vertex {u!r} is not isolated")
        self._vertices.discard(u)
        del self._adj[u]
        self._dirty = True

    def has_vertex(self, u: Vertex) -> bool:
        return u in self._vertices

    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        if u == v:
            raise ValueError("self loops are not supported")
        self.add_vertex(u)
        self.add_vertex(v)
        if v in self._adj[u]:
            raise ValueError(f"edge ({u!r}, {v!r}) already exists")
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        if not self._dirty:
            self._uf.union(u, v)

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        if u not in self._adj or v not in self._adj[u]:
            raise ValueError(f"edge ({u!r}, {v!r}) does not exist")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        self._dirty = True

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    # ------------------------------------------------------------------
    def connected(self, u: Vertex, v: Vertex) -> bool:
        self._ensure_clean()
        if u not in self._uf or v not in self._uf:
            return False
        return self._uf.connected(u, v)

    def component_id(self, u: Vertex) -> int:
        self._ensure_clean()
        return hash(self._uf.find(u))

    def component_size(self, u: Vertex) -> int:
        self._ensure_clean()
        return self._uf.set_size(u)

    def num_vertices(self) -> int:
        return len(self._vertices)

    def num_edges(self) -> int:
        return self._num_edges

    def vertices(self) -> List[Vertex]:
        return list(self._vertices)
