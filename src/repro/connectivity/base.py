"""Abstract interface of the ``CC-Str(G_core)`` substrate.

The interface mirrors exactly the operations DynStrClu needs (paper §7):

* insert a sim-core edge into ``G_core``;
* remove an edge from ``G_core``;
* ``FindCcID(u)``: an identifier of the connected component containing ``u``,
  stable for the duration of a single query;
* insert/remove an isolated (core) vertex — the paper's "conceptual
  self-loop" trick for core vertices with no incident sim-core edge.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, Iterable, List, Set

Vertex = Hashable


class ConnectivityStructure(ABC):
    """Maintains connected components of a graph under edge/vertex updates."""

    # ------------------------------------------------------------------
    # vertex lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def add_vertex(self, u: Vertex) -> None:
        """Insert ``u`` as an isolated vertex (no-op if present)."""

    @abstractmethod
    def remove_vertex(self, u: Vertex) -> None:
        """Remove ``u``; the vertex must currently be isolated."""

    @abstractmethod
    def has_vertex(self, u: Vertex) -> bool:
        """Return True when ``u`` is present."""

    # ------------------------------------------------------------------
    # edge lifecycle
    # ------------------------------------------------------------------
    @abstractmethod
    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert the edge ``(u, v)``; endpoints are added if missing."""

    @abstractmethod
    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete the edge ``(u, v)``; endpoints remain present."""

    @abstractmethod
    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return True when the edge is present."""

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @abstractmethod
    def connected(self, u: Vertex, v: Vertex) -> bool:
        """Return True when ``u`` and ``v`` lie in the same component."""

    @abstractmethod
    def component_id(self, u: Vertex) -> int:
        """Return an identifier of the component of ``u`` (``FindCcID``).

        Identifiers are guaranteed consistent at any single moment: two
        vertices share an identifier exactly when they are connected.  They
        may change across updates.
        """

    @abstractmethod
    def component_size(self, u: Vertex) -> int:
        """Return the number of vertices in the component of ``u``."""

    @abstractmethod
    def num_vertices(self) -> int:
        """Return the number of vertices currently present."""

    @abstractmethod
    def num_edges(self) -> int:
        """Return the number of edges currently present."""

    @abstractmethod
    def vertices(self) -> Iterable[Vertex]:
        """Iterate over the vertices currently present."""

    # ------------------------------------------------------------------
    # derived helpers shared by all backends
    # ------------------------------------------------------------------
    def components(self) -> List[Set[Vertex]]:
        """Return the list of components as vertex sets (linear-time helper)."""
        by_id: Dict[int, Set[Vertex]] = {}
        for v in self.vertices():
            by_id.setdefault(self.component_id(v), set()).add(v)
        return list(by_id.values())

    def num_components(self) -> int:
        """Return the current number of connected components."""
        return len({self.component_id(v) for v in self.vertices()})

    def memory_elements(self) -> Dict[str, int]:
        """Element counts for the Table 1 memory model (backends may refine)."""
        return {"cc_node": self.num_vertices() + 2 * self.num_edges()}
