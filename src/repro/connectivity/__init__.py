"""Fully dynamic connectivity substrate (the paper's ``CC-Str(G_core)``).

Fact 2 of the paper requires a data structure that maintains the connected
components of the sim-core graph under edge insertions/deletions in
poly-logarithmic amortized time and answers ``FindCcID`` in ``O(log n)``.
Three interchangeable backends are provided:

* :class:`~repro.connectivity.union_find.UnionFindConnectivity` — amortized
  rebuild-on-delete oracle; simplest, used for correctness cross-checks and
  insert-heavy workloads.
* :class:`~repro.connectivity.euler_tour.EulerTourConnectivity` — Euler-tour
  trees over treaps with a linear replacement-edge scan on deletions.
* :class:`~repro.connectivity.hdt.HDTConnectivity` — the Holm–de
  Lichtenberg–Thorup level structure (the structure Fact 2 cites), built on
  the same Euler-tour forests.
"""

from repro.connectivity.base import ConnectivityStructure
from repro.connectivity.euler_tour import EulerTourConnectivity, EulerTourForest
from repro.connectivity.hdt import HDTConnectivity
from repro.connectivity.union_find import UnionFind, UnionFindConnectivity

__all__ = [
    "ConnectivityStructure",
    "UnionFind",
    "UnionFindConnectivity",
    "EulerTourForest",
    "EulerTourConnectivity",
    "HDTConnectivity",
]


def make_connectivity(backend: str = "hdt") -> ConnectivityStructure:
    """Factory for a connectivity backend by name (``hdt``, ``ett`` or ``union_find``)."""
    if backend == "hdt":
        return HDTConnectivity()
    if backend in ("ett", "euler_tour"):
        return EulerTourConnectivity()
    if backend in ("union_find", "uf"):
        return UnionFindConnectivity()
    raise ValueError(f"unknown connectivity backend: {backend!r}")
