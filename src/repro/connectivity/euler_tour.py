"""Euler-tour trees over randomized treaps.

An Euler-tour tree (ETT) represents each tree of a dynamic forest as the
Euler tour of that tree stored in a balanced binary search tree (here a
treap keyed by position).  ``link``/``cut``/``reroot``/``find_root`` all run
in ``O(log n)`` expected time, which is what both the simple dynamic
connectivity backend (:class:`EulerTourConnectivity`) and the HDT structure
(:mod:`repro.connectivity.hdt`) are built on.

The tour of a tree rooted at ``r`` contains one *vertex node* per vertex and
two *edge nodes* per tree edge — ``(u, v)`` and ``(v, u)`` — arranged
recursively as ``r, (r, c1), tour(c1), (c1, r), (r, c2), ...``.  Any rotation
of a valid tour is a valid tour of the same tree rooted at the rotated-to
vertex, which makes ``reroot`` a split + swap.

For the HDT structure, ETT nodes additionally carry two boolean marks with
subtree counts:

* ``mark_vertex`` on vertex nodes — "this vertex has non-tree edges at this
  level", and
* ``mark_edge`` on edge nodes — "this tree edge's level equals this forest's
  level",

so that a marked node inside a given tree can be located in ``O(log n)``.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

from repro.connectivity.base import ConnectivityStructure, Vertex

Edge = Tuple[Vertex, Vertex]


def _edge_key(u: Vertex, v: Vertex) -> Edge:
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class _Node:
    """One treap node of an Euler tour (either a vertex visit or a directed edge)."""

    __slots__ = (
        "prio",
        "left",
        "right",
        "parent",
        "size",
        "vcount",
        "u",
        "v",
        "is_vertex",
        "mark_vertex",
        "mark_edge",
        "mv_count",
        "me_count",
    )

    def __init__(self, u: Vertex, v: Vertex, prio: float) -> None:
        self.prio = prio
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.parent: Optional[_Node] = None
        self.u = u
        self.v = v
        self.is_vertex = u == v
        self.mark_vertex = False
        self.mark_edge = False
        self.size = 1
        self.vcount = 1 if self.is_vertex else 0
        self.mv_count = 0
        self.me_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "V" if self.is_vertex else "E"
        return f"<{kind} {self.u}->{self.v}>"


def _pull(node: _Node) -> None:
    """Recompute the subtree aggregates of ``node`` from its children."""
    size = 1
    vcount = 1 if node.is_vertex else 0
    mv = 1 if node.mark_vertex else 0
    me = 1 if node.mark_edge else 0
    left, right = node.left, node.right
    if left is not None:
        size += left.size
        vcount += left.vcount
        mv += left.mv_count
        me += left.me_count
    if right is not None:
        size += right.size
        vcount += right.vcount
        mv += right.mv_count
        me += right.me_count
    node.size = size
    node.vcount = vcount
    node.mv_count = mv
    node.me_count = me


def _merge(a: Optional[_Node], b: Optional[_Node]) -> Optional[_Node]:
    """Concatenate two tours (treap merge by priority)."""
    if a is None:
        return b
    if b is None:
        return a
    if a.prio < b.prio:
        merged = _merge(a.right, b)
        a.right = merged
        if merged is not None:
            merged.parent = a
        _pull(a)
        a.parent = None
        return a
    merged = _merge(a, b.left)
    b.left = merged
    if merged is not None:
        merged.parent = b
    _pull(b)
    b.parent = None
    return b


def _split(node: Optional[_Node], k: int) -> Tuple[Optional[_Node], Optional[_Node]]:
    """Split a tour into its first ``k`` nodes and the rest."""
    if node is None:
        return None, None
    left_size = node.left.size if node.left is not None else 0
    if k <= left_size:
        a, b = _split(node.left, k)
        node.left = b
        if b is not None:
            b.parent = node
        _pull(node)
        node.parent = None
        if a is not None:
            a.parent = None
        return a, node
    a, b = _split(node.right, k - left_size - 1)
    node.right = a
    if a is not None:
        a.parent = node
    _pull(node)
    node.parent = None
    if b is not None:
        b.parent = None
    return node, b


def _root_of(node: _Node) -> _Node:
    while node.parent is not None:
        node = node.parent
    return node


def _order(node: _Node) -> int:
    """Number of tour nodes strictly before ``node``."""
    idx = node.left.size if node.left is not None else 0
    current = node
    while current.parent is not None:
        parent = current.parent
        if current is parent.right:
            idx += (parent.left.size if parent.left is not None else 0) + 1
        current = parent
    return idx


def _update_path(node: _Node) -> None:
    """Recompute aggregates on the path from ``node`` up to its tour root."""
    current: Optional[_Node] = node
    while current is not None:
        _pull(current)
        current = current.parent


class EulerTourForest:
    """A forest of Euler-tour trees with link/cut/reroot and mark search."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._vertex_nodes: Dict[Vertex, _Node] = {}
        self._edge_nodes: Dict[Edge, Tuple[_Node, _Node]] = {}

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def has_vertex(self, v: Vertex) -> bool:
        return v in self._vertex_nodes

    def add_vertex(self, v: Vertex) -> None:
        """Add ``v`` as an isolated one-node tour (no-op if present)."""
        if v in self._vertex_nodes:
            return
        self._vertex_nodes[v] = _Node(v, v, self._rng.random())

    def remove_vertex(self, v: Vertex) -> None:
        """Remove an isolated vertex ``v``."""
        node = self._vertex_nodes.get(v)
        if node is None:
            return
        if _root_of(node).size != 1:
            raise ValueError(f"vertex {v!r} is not isolated")
        del self._vertex_nodes[v]

    def num_vertices(self) -> int:
        return len(self._vertex_nodes)

    def num_tree_edges(self) -> int:
        return len(self._edge_nodes)

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertex_nodes)

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def tree_root_node(self, v: Vertex) -> _Node:
        """Return the treap root of the tour containing ``v`` (component handle)."""
        return _root_of(self._vertex_nodes[v])

    def component_id(self, v: Vertex) -> int:
        """An identifier of the tree containing ``v``, stable between updates."""
        return id(self.tree_root_node(v))

    def connected(self, u: Vertex, v: Vertex) -> bool:
        """Return True when ``u`` and ``v`` are in the same tree."""
        if u not in self._vertex_nodes or v not in self._vertex_nodes:
            return False
        return self.tree_root_node(u) is self.tree_root_node(v)

    def tree_size(self, v: Vertex) -> int:
        """Number of vertices in the tree containing ``v``."""
        return self.tree_root_node(v).vcount

    def has_tree_edge(self, u: Vertex, v: Vertex) -> bool:
        return _edge_key(u, v) in self._edge_nodes

    def tree_vertices(self, v: Vertex) -> List[Vertex]:
        """Return all vertices of the tree containing ``v`` (linear in tree size)."""
        out: List[Vertex] = []
        stack = [self.tree_root_node(v)]
        while stack:
            node = stack.pop()
            if node.is_vertex:
                out.append(node.u)
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return out

    # ------------------------------------------------------------------
    # reroot / link / cut
    # ------------------------------------------------------------------
    def _reroot(self, v: Vertex) -> _Node:
        """Rotate the tour of ``v``'s tree so that it starts at ``v``; return its root."""
        node = self._vertex_nodes[v]
        root = _root_of(node)
        k = _order(node)
        if k == 0:
            return root
        prefix, suffix = _split(root, k)
        merged = _merge(suffix, prefix)
        assert merged is not None
        return merged

    def link(self, u: Vertex, v: Vertex) -> None:
        """Add tree edge ``(u, v)``; ``u`` and ``v`` must be in different trees."""
        key = _edge_key(u, v)
        if key in self._edge_nodes:
            raise ValueError(f"tree edge {key!r} already exists")
        self.add_vertex(u)
        self.add_vertex(v)
        if self.connected(u, v):
            raise ValueError(f"cannot link {u!r} and {v!r}: already connected")
        tour_u = self._reroot(u)
        tour_v = self._reroot(v)
        e_uv = _Node(u, v, self._rng.random())
        e_vu = _Node(v, u, self._rng.random())
        self._edge_nodes[key] = (e_uv, e_vu)
        _merge(_merge(tour_u, e_uv), _merge(tour_v, e_vu))

    def cut(self, u: Vertex, v: Vertex) -> None:
        """Remove tree edge ``(u, v)``, splitting its tree into two."""
        key = _edge_key(u, v)
        pair = self._edge_nodes.pop(key, None)
        if pair is None:
            raise ValueError(f"tree edge {key!r} does not exist")
        e1, e2 = pair
        root = _root_of(e1)
        o1, o2 = _order(e1), _order(e2)
        if o1 > o2:
            e1, e2 = e2, e1
            o1, o2 = o2, o1
        prefix, rest = _split(root, o1)
        first_edge, rest = _split(rest, 1)
        middle, rest = _split(rest, o2 - o1 - 1)
        second_edge, tail = _split(rest, 1)
        assert first_edge is e1 and second_edge is e2
        _merge(prefix, tail)
        # ``middle`` is already a standalone valid tour of the detached subtree

    # ------------------------------------------------------------------
    # HDT mark support
    # ------------------------------------------------------------------
    def set_vertex_mark(self, v: Vertex, flag: bool) -> None:
        """Mark/unmark vertex ``v`` ("has non-tree edges at this level")."""
        node = self._vertex_nodes[v]
        if node.mark_vertex == flag:
            return
        node.mark_vertex = flag
        _update_path(node)

    def vertex_mark(self, v: Vertex) -> bool:
        return self._vertex_nodes[v].mark_vertex

    def set_edge_mark(self, u: Vertex, v: Vertex, flag: bool) -> None:
        """Mark/unmark tree edge ``(u, v)`` ("level of this edge equals this forest's level")."""
        pair = self._edge_nodes.get(_edge_key(u, v))
        if pair is None:
            raise ValueError(f"tree edge ({u!r}, {v!r}) does not exist")
        node = pair[0]
        if node.mark_edge == flag:
            return
        node.mark_edge = flag
        _update_path(node)

    def find_marked_vertex(self, v: Vertex) -> Optional[Vertex]:
        """Return some marked vertex in the tree containing ``v`` (or None)."""
        node: Optional[_Node] = self.tree_root_node(v)
        if node is None or node.mv_count == 0:
            return None
        while node is not None:
            if node.left is not None and node.left.mv_count > 0:
                node = node.left
                continue
            if node.mark_vertex:
                return node.u
            node = node.right
        return None  # pragma: no cover - unreachable when mv_count > 0

    def find_marked_edge(self, v: Vertex) -> Optional[Edge]:
        """Return some marked tree edge in the tree containing ``v`` (or None)."""
        node: Optional[_Node] = self.tree_root_node(v)
        if node is None or node.me_count == 0:
            return None
        while node is not None:
            if node.left is not None and node.left.me_count > 0:
                node = node.left
                continue
            if node.mark_edge:
                return _edge_key(node.u, node.v)
            node = node.right
        return None  # pragma: no cover - unreachable when me_count > 0

    # ------------------------------------------------------------------
    def check_invariant(self) -> bool:
        """Validate aggregate fields and parent pointers (testing aid, O(n) per tree)."""
        checked_roots = set()
        for node in self._vertex_nodes.values():
            root = _root_of(node)
            if id(root) in checked_roots:
                continue
            checked_roots.add(id(root))
            if not self._check_subtree(root, None):
                return False
        return True

    def _check_subtree(self, node: Optional[_Node], parent: Optional[_Node]) -> bool:
        if node is None:
            return True
        if node.parent is not parent:
            return False
        expected_size = 1
        expected_vcount = 1 if node.is_vertex else 0
        expected_mv = 1 if node.mark_vertex else 0
        expected_me = 1 if node.mark_edge else 0
        for child in (node.left, node.right):
            if child is not None:
                if not self._check_subtree(child, node):
                    return False
                expected_size += child.size
                expected_vcount += child.vcount
                expected_mv += child.mv_count
                expected_me += child.me_count
        return (
            node.size == expected_size
            and node.vcount == expected_vcount
            and node.mv_count == expected_mv
            and node.me_count == expected_me
        )


class EulerTourConnectivity(ConnectivityStructure):
    """Dynamic connectivity: ETT spanning forest plus a replacement-edge scan.

    Insertions are ``O(log n)``; deleting a tree edge scans the non-tree
    edges incident to the smaller side for a replacement, which is linear in
    that side's size in the worst case but fast in practice.  The HDT backend
    removes that worst case; this class is the intermediate ablation point
    between union-find-rebuild and full HDT.
    """

    def __init__(self, seed: int = 0) -> None:
        self._forest = EulerTourForest(seed=seed)
        #: non-tree edges, per endpoint
        self._nontree_adj: Dict[Vertex, Set[Vertex]] = {}
        self._num_nontree = 0

    # ------------------------------------------------------------------
    def add_vertex(self, u: Vertex) -> None:
        self._forest.add_vertex(u)
        self._nontree_adj.setdefault(u, set())

    def remove_vertex(self, u: Vertex) -> None:
        if not self._forest.has_vertex(u):
            return
        if self._nontree_adj.get(u):
            raise ValueError(f"vertex {u!r} is not isolated")
        self._forest.remove_vertex(u)
        self._nontree_adj.pop(u, None)

    def has_vertex(self, u: Vertex) -> bool:
        return self._forest.has_vertex(u)

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        if self._forest.has_tree_edge(u, v):
            return True
        return u in self._nontree_adj and v in self._nontree_adj[u]

    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        if u == v:
            raise ValueError("self loops are not supported")
        if self.has_edge(u, v):
            raise ValueError(f"edge ({u!r}, {v!r}) already exists")
        self.add_vertex(u)
        self.add_vertex(v)
        if not self._forest.connected(u, v):
            self._forest.link(u, v)
        else:
            self._nontree_adj[u].add(v)
            self._nontree_adj[v].add(u)
            self._num_nontree += 1

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        if u in self._nontree_adj and v in self._nontree_adj[u]:
            self._nontree_adj[u].discard(v)
            self._nontree_adj[v].discard(u)
            self._num_nontree -= 1
            return
        if not self._forest.has_tree_edge(u, v):
            raise ValueError(f"edge ({u!r}, {v!r}) does not exist")
        self._forest.cut(u, v)
        self._find_replacement(u, v)

    def _find_replacement(self, u: Vertex, v: Vertex) -> None:
        """After cutting tree edge ``(u, v)``, reconnect via a non-tree edge if one exists."""
        small, other = u, v
        if self._forest.tree_size(u) > self._forest.tree_size(v):
            small, other = v, u
        other_root = self._forest.tree_root_node(other)
        for x in self._forest.tree_vertices(small):
            for y in list(self._nontree_adj.get(x, ())):
                if self._forest.tree_root_node(y) is other_root:
                    self._nontree_adj[x].discard(y)
                    self._nontree_adj[y].discard(x)
                    self._num_nontree -= 1
                    self._forest.link(x, y)
                    return

    # ------------------------------------------------------------------
    def connected(self, u: Vertex, v: Vertex) -> bool:
        return self._forest.connected(u, v)

    def component_id(self, u: Vertex) -> int:
        return self._forest.component_id(u)

    def component_size(self, u: Vertex) -> int:
        return self._forest.tree_size(u)

    def num_vertices(self) -> int:
        return self._forest.num_vertices()

    def num_edges(self) -> int:
        return self._forest.num_tree_edges() + self._num_nontree

    def vertices(self) -> List[Vertex]:
        return list(self._forest.vertices())
