"""Holm–de Lichtenberg–Thorup (HDT) fully dynamic connectivity.

This is the structure cited by Fact 2 of the paper: it maintains a spanning
forest of a graph under edge insertions and deletions with poly-logarithmic
amortized update cost and answers connectivity / ``FindCcID`` queries in
``O(log n)``.

Every edge carries a *level*; ``F_i`` denotes the spanning forest restricted
to edges of level at least ``i`` and is stored as an Euler-tour forest
(:class:`repro.connectivity.euler_tour.EulerTourForest`).  The invariants
maintained are

1. ``F_0 ⊇ F_1 ⊇ …`` as edge sets, and ``F_0`` is a spanning forest of the
   whole graph;
2. both endpoints of a level-``i`` edge lie in the same tree of ``F_i``;
3. every tree of ``F_i`` has at most ``n / 2^i`` vertices (which bounds the
   number of levels by ``log2 n``).

Edge levels only increase.  Deleting a non-tree edge is trivial; deleting a
tree edge of level ``ℓ`` cuts it out of ``F_0 … F_ℓ`` and searches for a
replacement from level ``ℓ`` down to 0, promoting the smaller side's level-i
tree edges and the scanned non-crossing level-i non-tree edges to level
``i + 1`` (which pays for the search amortized).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.connectivity.base import ConnectivityStructure, Vertex
from repro.connectivity.euler_tour import EulerTourForest, _edge_key

Edge = Tuple[Vertex, Vertex]


class HDTConnectivity(ConnectivityStructure):
    """Fully dynamic connectivity with the HDT level hierarchy."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._forests: List[EulerTourForest] = [EulerTourForest(seed=seed)]
        #: per level: non-tree adjacency (vertex -> set of neighbours at that level)
        self._nontree_adj: List[Dict[Vertex, Set[Vertex]]] = [{}]
        self._edge_level: Dict[Edge, int] = {}
        self._is_tree: Dict[Edge, bool] = {}
        self._degree: Dict[Vertex, int] = {}

    # ------------------------------------------------------------------
    # level helpers
    # ------------------------------------------------------------------
    def _ensure_level(self, level: int) -> None:
        while len(self._forests) <= level:
            self._forests.append(EulerTourForest(seed=self._seed + len(self._forests)))
            self._nontree_adj.append({})

    @property
    def max_level(self) -> int:
        """Highest level currently materialised (for tests and accounting)."""
        return len(self._forests) - 1

    def edge_level(self, u: Vertex, v: Vertex) -> Optional[int]:
        """Return the level of edge ``(u, v)`` or None if absent (testing aid)."""
        return self._edge_level.get(_edge_key(u, v))

    # ------------------------------------------------------------------
    # non-tree bookkeeping
    # ------------------------------------------------------------------
    def _add_nontree(self, level: int, x: Vertex, y: Vertex) -> None:
        self._ensure_level(level)
        forest = self._forests[level]
        adj = self._nontree_adj[level]
        forest.add_vertex(x)
        forest.add_vertex(y)
        adj.setdefault(x, set()).add(y)
        adj.setdefault(y, set()).add(x)
        forest.set_vertex_mark(x, True)
        forest.set_vertex_mark(y, True)

    def _remove_nontree(self, level: int, x: Vertex, y: Vertex) -> None:
        adj = self._nontree_adj[level]
        forest = self._forests[level]
        adj[x].discard(y)
        adj[y].discard(x)
        if not adj[x]:
            forest.set_vertex_mark(x, False)
        if not adj[y]:
            forest.set_vertex_mark(y, False)

    # ------------------------------------------------------------------
    # vertex lifecycle
    # ------------------------------------------------------------------
    def add_vertex(self, u: Vertex) -> None:
        if u in self._degree:
            return
        self._degree[u] = 0
        self._forests[0].add_vertex(u)

    def remove_vertex(self, u: Vertex) -> None:
        if u not in self._degree:
            return
        if self._degree[u] != 0:
            raise ValueError(f"vertex {u!r} is not isolated")
        del self._degree[u]
        for forest in self._forests:
            if forest.has_vertex(u):
                forest.remove_vertex(u)
        for adj in self._nontree_adj:
            adj.pop(u, None)

    def has_vertex(self, u: Vertex) -> bool:
        return u in self._degree

    # ------------------------------------------------------------------
    # edge lifecycle
    # ------------------------------------------------------------------
    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return _edge_key(u, v) in self._edge_level

    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        if u == v:
            raise ValueError("self loops are not supported")
        key = _edge_key(u, v)
        if key in self._edge_level:
            raise ValueError(f"edge {key!r} already exists")
        self.add_vertex(u)
        self.add_vertex(v)
        self._edge_level[key] = 0
        self._degree[u] += 1
        self._degree[v] += 1
        forest0 = self._forests[0]
        if not forest0.connected(u, v):
            self._is_tree[key] = True
            forest0.link(u, v)
            forest0.set_edge_mark(u, v, True)
        else:
            self._is_tree[key] = False
            self._add_nontree(0, u, v)

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        key = _edge_key(u, v)
        level = self._edge_level.pop(key, None)
        if level is None:
            raise ValueError(f"edge ({u!r}, {v!r}) does not exist")
        was_tree = self._is_tree.pop(key)
        self._degree[u] -= 1
        self._degree[v] -= 1
        if not was_tree:
            self._remove_nontree(level, u, v)
            return
        # tree edge: cut it out of every forest that contains it, then search
        # for a replacement from its level downwards
        for i in range(level, -1, -1):
            self._forests[i].cut(u, v)
        self._replace(u, v, level)

    # ------------------------------------------------------------------
    # replacement search
    # ------------------------------------------------------------------
    def _replace(self, u: Vertex, v: Vertex, level: int) -> None:
        for i in range(level, -1, -1):
            forest = self._forests[i]
            size_u = forest.tree_size(u)
            size_v = forest.tree_size(v)
            small, big = (u, v) if size_u <= size_v else (v, u)
            big_root = forest.tree_root_node(big)
            self._promote_tree_edges(i, small)
            replacement = self._scan_nontree(i, small, big_root)
            if replacement is not None:
                x, y = replacement
                self._attach_replacement(i, x, y)
                return
        # no replacement at any level: the component stays split

    def _promote_tree_edges(self, level: int, small: Vertex) -> None:
        """Promote every level-``level`` tree edge in ``small``'s tree to ``level + 1``."""
        forest = self._forests[level]
        self._ensure_level(level + 1)
        upper = self._forests[level + 1]
        while True:
            edge = forest.find_marked_edge(small)
            if edge is None:
                return
            x, y = edge
            forest.set_edge_mark(x, y, False)
            self._edge_level[edge] = level + 1
            upper.add_vertex(x)
            upper.add_vertex(y)
            upper.link(x, y)
            upper.set_edge_mark(x, y, True)

    def _scan_nontree(self, level: int, small: Vertex, big_root: object) -> Optional[Edge]:
        """Scan level-``level`` non-tree edges incident to ``small``'s tree.

        Edges whose endpoints both lie on the small side are promoted to
        ``level + 1``; the first edge found crossing to the big side is
        returned (already detached from the non-tree bookkeeping).
        """
        forest = self._forests[level]
        adj = self._nontree_adj[level]
        while True:
            x = forest.find_marked_vertex(small)
            if x is None:
                return None
            neighbours = list(adj.get(x, ()))
            if not neighbours:
                # defensive: stale mark with no non-tree edges left
                forest.set_vertex_mark(x, False)
                continue
            for y in neighbours:
                self._remove_nontree(level, x, y)
                if forest.tree_root_node(y) is big_root:
                    return _edge_key(x, y)
                self._edge_level[_edge_key(x, y)] = level + 1
                self._add_nontree(level + 1, x, y)

    def _attach_replacement(self, level: int, x: Vertex, y: Vertex) -> None:
        """Turn non-tree edge ``(x, y)`` into a tree edge of ``level`` in ``F_0 … F_level``."""
        key = _edge_key(x, y)
        self._edge_level[key] = level
        self._is_tree[key] = True
        for j in range(level + 1):
            forest = self._forests[j]
            forest.add_vertex(x)
            forest.add_vertex(y)
            forest.link(x, y)
        self._forests[level].set_edge_mark(x, y, True)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def connected(self, u: Vertex, v: Vertex) -> bool:
        if u not in self._degree or v not in self._degree:
            return False
        return self._forests[0].connected(u, v)

    def component_id(self, u: Vertex) -> int:
        return self._forests[0].component_id(u)

    def component_size(self, u: Vertex) -> int:
        return self._forests[0].tree_size(u)

    def num_vertices(self) -> int:
        return len(self._degree)

    def num_edges(self) -> int:
        return len(self._edge_level)

    def vertices(self) -> List[Vertex]:
        return list(self._degree)

    def memory_elements(self) -> Dict[str, int]:
        """Element counts for the Table 1 memory model."""
        tour_nodes = sum(f.num_vertices() + 2 * f.num_tree_edges() for f in self._forests)
        nontree_entries = sum(
            len(nbrs) for adj in self._nontree_adj for nbrs in adj.values()
        )
        return {"cc_node": tour_nodes + nontree_entries}
