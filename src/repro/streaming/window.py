"""Sliding-window structural clustering over a timestamped edge stream.

Many dynamic-graph applications care about the *recent* structure only:
interactions in the last hour, transactions in the last 10 000 blocks,
co-tagged photos from the last week.  :class:`SlidingWindowClustering`
maintains a :class:`~repro.core.dynstrclu.DynStrClu` instance over exactly
the edges observed within a trailing window of the event time, turning one
stream event into at most one insertion plus the deletions of every edge
that falls out of the window — i.e. the exact update workload the paper's
maintainers are designed for.

Window semantics
----------------
* Every observed edge carries an event time (any monotonically
  non-decreasing number: seconds, block height, logical step).
* An edge is *live* while ``now - last_seen < window``; observing an edge
  that is already live refreshes its timestamp instead of inserting a
  duplicate.
* :meth:`SlidingWindowClustering.advance_to` moves the clock without adding
  an edge (e.g. on a period of silence) and expires old edges.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import StrCluParams
from repro.core.dynstrclu import DynStrClu
from repro.core.result import Clustering, GroupByResult
from repro.graph.dynamic_graph import Vertex, canonical_edge
from repro.instrumentation import OpCounter

Edge = Tuple[Vertex, Vertex]


@dataclass(frozen=True)
class TimedEdge:
    """One stream event: an interaction between ``u`` and ``v`` at ``time``."""

    u: Vertex
    v: Vertex
    time: float

    @property
    def edge(self) -> Edge:
        return canonical_edge(self.u, self.v)


class SlidingWindowClustering:
    """Maintain the structural clustering of the last ``window`` time units.

    Parameters
    ----------
    params:
        Clustering parameters for the underlying :class:`DynStrClu`.
    window:
        Width of the trailing window, in the same unit as the event times.
    counter:
        Optional :class:`OpCounter` forwarded to the maintainer.

    Example
    -------
    >>> params = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
    >>> swc = SlidingWindowClustering(params, window=10.0)
    >>> for t, (u, v) in enumerate([(1, 2), (2, 3), (1, 3)]):
    ...     _ = swc.observe(u, v, time=float(t))
    >>> swc.num_live_edges
    3
    >>> swc.advance_to(20.0)   # everything expires
    3
    >>> swc.num_live_edges
    0
    """

    def __init__(
        self,
        params: StrCluParams,
        window: float,
        counter: Optional[OpCounter] = None,
        connectivity_backend: str = "hdt",
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self.maintainer = DynStrClu(
            params, counter=counter, connectivity_backend=connectivity_backend
        )
        self.now: float = float("-inf")
        #: last event time of every live edge
        self._last_seen: Dict[Edge, float] = {}
        #: min-heap of (expiry_candidate_time, tie_break, edge); the unique
        #: tie-break stops heapq from ever comparing edges (whose endpoints
        #: may be of mixed, mutually unorderable types); stale entries are
        #: lazily skipped
        self._expiry_heap: List[Tuple[float, int, Edge]] = []
        self._heap_sequence = 0
        self.observed_events = 0
        self.expired_edges = 0

    # ------------------------------------------------------------------
    # stream input
    # ------------------------------------------------------------------
    def observe(self, u: Vertex, v: Vertex, time: float) -> int:
        """Process one interaction; returns the number of edges expired by it.

        Raises
        ------
        ValueError
            If ``time`` is earlier than the latest observed event (the
            window model requires non-decreasing event times).
        """
        if time < self.now:
            raise ValueError(
                f"event times must be non-decreasing: got {time} after {self.now}"
            )
        self.observed_events += 1
        expired = self.advance_to(time)
        edge = canonical_edge(u, v)
        if edge in self._last_seen:
            # refresh: the edge stays live for another full window
            self._last_seen[edge] = time
        else:
            self.maintainer.insert_edge(u, v)
            self._last_seen[edge] = time
        self._heap_sequence += 1
        heapq.heappush(self._expiry_heap, (time, self._heap_sequence, edge))
        return expired

    def observe_event(self, event: TimedEdge) -> int:
        """Process one :class:`TimedEdge`."""
        return self.observe(event.u, event.v, event.time)

    def advance_to(self, time: float) -> int:
        """Move the clock to ``time`` and expire edges that left the window."""
        if time < self.now:
            raise ValueError(
                f"event times must be non-decreasing: got {time} after {self.now}"
            )
        self.now = time
        cutoff = time - self.window
        expired = 0
        while self._expiry_heap and self._expiry_heap[0][0] <= cutoff:
            seen_at, _seq, edge = heapq.heappop(self._expiry_heap)
            current = self._last_seen.get(edge)
            if current is None or current > seen_at:
                continue  # refreshed or already expired: stale heap entry
            if current <= cutoff:
                del self._last_seen[edge]
                self.maintainer.delete_edge(*edge)
                expired += 1
        self.expired_edges += expired
        return expired

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def num_live_edges(self) -> int:
        """Number of edges currently inside the window."""
        return len(self._last_seen)

    def live_edges(self) -> List[Edge]:
        """The edges currently inside the window."""
        return list(self._last_seen)

    def last_seen(self, u: Vertex, v: Vertex) -> Optional[float]:
        """Event time of the most recent observation of edge ``(u, v)``, if live."""
        return self._last_seen.get(canonical_edge(u, v))

    def clustering(self) -> Clustering:
        """The StrCluResult of the current window content."""
        return self.maintainer.clustering()

    def group_by(self, query) -> GroupByResult:
        """Cluster-group-by query restricted to the current window content."""
        return self.maintainer.group_by(query)

    @property
    def params(self) -> StrCluParams:
        return self.maintainer.params
