"""Stream processor: drive a maintainer from an update stream with observers.

:class:`StreamProcessor` turns the low-level maintainers into a service-like
component:

* it applies every incoming :class:`~repro.core.dynelm.Update` to the
  maintainer (a :class:`~repro.core.dynstrclu.DynStrClu` by default);
* every ``snapshot_every`` updates it retrieves the clustering, pushes it
  through a :class:`~repro.analysis.tracking.ClusterTracker` and notifies
  the registered listeners of the resulting cluster events;
* optionally it appends every update to a write-ahead log and periodically
  writes a state checkpoint (:mod:`repro.persistence`), so the processor can
  be reconstructed after a crash.

The component is deliberately synchronous and single-threaded — the
maintainers are not thread-safe and the paper's model is a single update
stream — but the listener interface is where an application would hang its
alerting, metrics or downstream materialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Protocol, Union

from repro.analysis.tracking import ClusterEvent, ClusterTracker
from repro.core.api import Clusterer, DynELMClusterer, make_clusterer
from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM, Update
from repro.core.dynstrclu import DynStrClu
from repro.core.result import Clustering
from repro.persistence.snapshot import save_snapshot
from repro.persistence.updatelog import UpdateLogWriter


class StreamListener(Protocol):
    """Observer interface for :class:`StreamProcessor` snapshots."""

    def on_snapshot(
        self, step: int, clustering: Clustering, events: List[ClusterEvent]
    ) -> None:
        """Called after each periodic snapshot with the step count, the
        clustering and the cluster events since the previous snapshot."""
        ...


@dataclass
class CallbackListener:
    """Adapt a plain callable into a :class:`StreamListener`."""

    callback: Callable[[int, Clustering, List[ClusterEvent]], None]

    def on_snapshot(
        self, step: int, clustering: Clustering, events: List[ClusterEvent]
    ) -> None:
        self.callback(step, clustering, events)


@dataclass
class StreamReport:
    """Summary returned by :meth:`StreamProcessor.process`."""

    updates_applied: int = 0
    snapshots_taken: int = 0
    events: List[ClusterEvent] = field(default_factory=list)
    final_clustering: Optional[Clustering] = None

    def events_of_kind(self, kind) -> List[ClusterEvent]:
        """Filter the accumulated events by kind."""
        return [event for event in self.events if event.kind is kind]


class StreamProcessor:
    """Apply an update stream to a maintainer with periodic snapshots.

    Parameters
    ----------
    params:
        Clustering parameters (used when no ``maintainer`` is supplied).
    maintainer:
        Optional pre-built maintainer (any :class:`~repro.core.api.Clusterer`,
        e.g. one restored from a snapshot); defaults to building the named
        ``backend`` from ``params``.
    backend:
        Registry name of the clustering backend to build when no
        ``maintainer`` is supplied (``"dynstrclu"`` by default; see
        :func:`repro.core.api.available_backends`).
    snapshot_every:
        Take a clustering snapshot every this many applied updates.
    wal_path:
        When given, every applied update is appended to this write-ahead
        log before it is applied.
    checkpoint_path / checkpoint_every:
        When given, a full state snapshot is written to ``checkpoint_path``
        every ``checkpoint_every`` applied updates.

    Example
    -------
    >>> from repro.core.dynelm import Update
    >>> processor = StreamProcessor(StrCluParams(epsilon=0.5, mu=2, rho=0.0),
    ...                             snapshot_every=2)
    >>> report = processor.process([Update.insert(1, 2), Update.insert(2, 3),
    ...                             Update.insert(1, 3), Update.insert(3, 4)])
    >>> report.updates_applied, report.snapshots_taken
    (4, 2)
    """

    def __init__(
        self,
        params: Optional[StrCluParams] = None,
        maintainer: Optional[Clusterer] = None,
        snapshot_every: int = 100,
        tracker: Optional[ClusterTracker] = None,
        wal_path: Optional[Union[str, Path]] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1000,
        backend: str = "dynstrclu",
    ) -> None:
        if maintainer is None:
            if params is None:
                raise ValueError("either params or a maintainer must be provided")
            maintainer = make_clusterer(backend, params)
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        # checkpoints snapshot the maintainer's logical state; the dynelm
        # registry backend wraps a DynELM, so checkpoint through the wrapped
        # instance rather than rejecting it
        self._checkpoint_target = (
            maintainer.elm if isinstance(maintainer, DynELMClusterer) else maintainer
        )
        if checkpoint_path is not None and not isinstance(
            self._checkpoint_target, (DynELM, DynStrClu)
        ):
            raise ValueError(
                "checkpoint_path requires a snapshot-capable maintainer "
                "(DynELM or DynStrClu)"
            )
        self.maintainer = maintainer
        self.snapshot_every = snapshot_every
        self.tracker = tracker if tracker is not None else ClusterTracker()
        self.listeners: List[StreamListener] = []
        self.updates_applied = 0
        self.snapshots_taken = 0
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.checkpoint_every = checkpoint_every
        self.checkpoints_written = 0
        self._wal: Optional[UpdateLogWriter] = (
            UpdateLogWriter(wal_path) if wal_path is not None else None
        )
        self._closed = False

    # ------------------------------------------------------------------
    # listeners
    # ------------------------------------------------------------------
    def add_listener(self, listener: Union[StreamListener, Callable]) -> None:
        """Register a listener (an object with ``on_snapshot`` or a callable)."""
        if callable(listener) and not hasattr(listener, "on_snapshot"):
            listener = CallbackListener(listener)
        self.listeners.append(listener)

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def apply(self, update: Update) -> Optional[List[ClusterEvent]]:
        """Apply one update; returns the snapshot events if a snapshot was due."""
        if self._wal is not None:
            self._wal.append(update)
        self.maintainer.apply(update)
        self.updates_applied += 1
        events: Optional[List[ClusterEvent]] = None
        if self.updates_applied % self.snapshot_every == 0:
            events = self._snapshot()
        if (
            self.checkpoint_path is not None
            and self.updates_applied % self.checkpoint_every == 0
        ):
            save_snapshot(self._checkpoint_target, self.checkpoint_path)
            if self._wal is not None:
                # a checkpoint is only a recovery point if every WAL entry
                # up to it is durable — fsync before declaring it written
                self._wal.sync()
            self.checkpoints_written += 1
        return events

    def process(self, updates: Iterable[Update]) -> StreamReport:
        """Apply a whole stream and return a :class:`StreamReport`."""
        report = StreamReport()
        for update in updates:
            events = self.apply(update)
            report.updates_applied += 1
            if events is not None:
                report.snapshots_taken += 1
                report.events.extend(events)
        report.final_clustering = self.maintainer.clustering()
        return report

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (no WAL configured counts as open)."""
        return self._closed

    def close(self) -> None:
        """Fsync and close the write-ahead log (if any).  Idempotent.

        Calling ``close`` twice (or closing a processor that never had a
        WAL) is a no-op, so teardown paths — context-manager exit, engine
        shutdown, test fixtures — can all call it unconditionally.
        """
        if self._wal is not None:
            self._wal.close()  # UpdateLogWriter.close fsyncs before closing
            self._wal = None
        self._closed = True

    def __enter__(self) -> "StreamProcessor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _snapshot(self) -> List[ClusterEvent]:
        clustering = self.maintainer.clustering()
        events = self.tracker.observe(clustering)
        self.snapshots_taken += 1
        for listener in self.listeners:
            listener.on_snapshot(self.updates_applied, clustering, events)
        return events
