"""Streaming front-ends over the dynamic clustering maintainers.

The paper's motivating scenario is a graph that changes continuously
(social interactions, protein measurements, blockchain transfers).  This
package provides the two front-ends a streaming deployment needs:

* :mod:`repro.streaming.window` — a sliding-window view of an interaction
  stream: every edge carries a timestamp, and edges older than the window
  are automatically deleted from the maintained graph, so the clustering
  always reflects the recent past;
* :mod:`repro.streaming.processor` — a stream processor that applies an
  update stream to a maintainer, takes periodic clustering snapshots,
  feeds them through :class:`~repro.analysis.tracking.ClusterTracker`, and
  notifies registered listeners of cluster events (born / merged / split /
  dissolved …), with optional write-ahead logging and checkpointing via
  :mod:`repro.persistence`.
"""

from repro.streaming.processor import StreamListener, StreamProcessor, StreamReport
from repro.streaming.window import SlidingWindowClustering, TimedEdge

__all__ = [
    "SlidingWindowClustering",
    "TimedEdge",
    "StreamProcessor",
    "StreamListener",
    "StreamReport",
]
