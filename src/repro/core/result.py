"""StrCluResult types and the O(n + m) retrieval of Fact 1.

Given a core threshold ``μ`` and an edge labelling ``L(G)`` the StrCluResult
is uniquely determined (Fact 1): core vertices are those with at least ``μ``
similar neighbours, the sim-core graph ``G_core`` consists of the similar
edges between two cores, and each StrClu cluster is a connected component of
``G_core`` together with every vertex similar to some core of that
component.  Non-core vertices belonging to two or more clusters are *hubs*;
non-core vertices belonging to none are *noise*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.connectivity.union_find import UnionFind
from repro.core.labelling import EdgeLabel
from repro.graph.dynamic_graph import DynamicGraph, Vertex, canonical_edge

Edge = Tuple[Vertex, Vertex]


def _vertex_sort_key(v: Vertex) -> Tuple[int, object]:
    """Deterministic total order over vertex ids ("smallest identifier" in the paper)."""
    if isinstance(v, int):
        return (0, v)
    return (1, repr(v))


@dataclass
class Clustering:
    """A complete StrCluResult: clusters plus vertex roles.

    Attributes
    ----------
    clusters:
        List of clusters; each cluster is a set of vertices.  Clusters may
        overlap (hubs belong to several).
    cores:
        The set of core vertices.
    hubs:
        Non-core vertices assigned to at least two clusters.
    noise:
        Non-core vertices assigned to no cluster.
    """

    clusters: List[Set[Vertex]] = field(default_factory=list)
    cores: Set[Vertex] = field(default_factory=set)
    hubs: Set[Vertex] = field(default_factory=set)
    noise: Set[Vertex] = field(default_factory=set)

    @property
    def num_clusters(self) -> int:
        """Number of clusters."""
        return len(self.clusters)

    def membership(self) -> Dict[Vertex, List[int]]:
        """Map each clustered vertex to the indices of the clusters containing it."""
        out: Dict[Vertex, List[int]] = {}
        for idx, cluster in enumerate(self.clusters):
            for v in cluster:
                out.setdefault(v, []).append(idx)
        return out

    def cluster_of_core(self, core: Vertex) -> Optional[int]:
        """Index of the (unique) cluster containing a core vertex, or None."""
        for idx, cluster in enumerate(self.clusters):
            if core in cluster:
                return idx
        return None

    def top_k(self, k: int) -> List[Set[Vertex]]:
        """The ``k`` largest clusters by size (ties broken deterministically)."""
        ranked = sorted(
            self.clusters, key=lambda c: (-len(c), tuple(sorted(map(repr, c))))
        )
        return ranked[:k]

    def as_frozen(self) -> FrozenSet[FrozenSet[Vertex]]:
        """A hashable, order-insensitive view used by equality assertions in tests."""
        return frozenset(frozenset(c) for c in self.clusters)

    def partition_assignment(
        self, graph: DynamicGraph, labels: Mapping[Edge, EdgeLabel]
    ) -> Dict[Vertex, int]:
        """Disjoint cluster assignment used by the ARI computation (Section 9.2).

        Each core belongs to exactly one cluster.  Each non-core clustered
        vertex is assigned only to the cluster containing its "smallest"
        similar core neighbour (smallest by identifier representation, as in
        the paper).  Noise vertices are omitted.
        """
        core_cluster: Dict[Vertex, int] = {}
        for idx, cluster in enumerate(self.clusters):
            for v in cluster:
                if v in self.cores:
                    core_cluster[v] = idx
        assignment: Dict[Vertex, int] = dict(core_cluster)
        clustered = set().union(*self.clusters) if self.clusters else set()
        for v in clustered:
            if v in self.cores:
                continue
            similar_cores = [
                w
                for w in graph.neighbours(v)
                if w in self.cores
                and labels.get(canonical_edge(v, w)) is EdgeLabel.SIMILAR
            ]
            if not similar_cores:
                continue
            smallest = min(similar_cores, key=_vertex_sort_key)
            assignment[v] = core_cluster[smallest]
        return assignment

    def summary(self) -> Dict[str, int]:
        """Small dictionary of headline statistics (used in reports and examples)."""
        return {
            "clusters": self.num_clusters,
            "cores": len(self.cores),
            "hubs": len(self.hubs),
            "noise": len(self.noise),
            "largest_cluster": max((len(c) for c in self.clusters), default=0),
        }


@dataclass(frozen=True)
class ViewDelta:
    """What one backend reports about a batch of updates, for view patching.

    The paper's cost argument is that an update perturbs only a small *flip
    set* of vertices.  A backend that tracks that set reports it here so the
    service layer can patch its published membership view instead of
    re-deriving it from scratch; a backend that cannot raises the
    ``full_rebuild`` flag and the view falls back to a full capture.

    Attributes
    ----------
    full_rebuild:
        True when the backend cannot (or chose not to) track the flip set
        for the drained window; ``flips`` is meaningless in that case.
    flips:
        Every vertex whose core status or cluster membership may have
        changed since the previous drain.  The set must be a *superset* of
        the truly changed vertices — over-reporting costs patch time,
        under-reporting would corrupt the view (the patcher re-checks the
        closure invariant and falls back to a full capture if violated).
    """

    full_rebuild: bool
    flips: FrozenSet = frozenset()

    @classmethod
    def full(cls) -> "ViewDelta":
        """The fallback delta: the whole clustering must be re-derived."""
        return cls(full_rebuild=True)

    @classmethod
    def of(cls, flips: Iterable[Vertex]) -> "ViewDelta":
        """A tracked delta covering exactly ``flips``."""
        return cls(full_rebuild=False, flips=frozenset(flips))


def clustering_from_membership(
    membership: Mapping[Vertex, Iterable[int]],
    cores: Set[Vertex],
    hubs: Set[Vertex],
    noise: Set[Vertex],
) -> Clustering:
    """Rebuild a :class:`Clustering` from a vertex→cluster-keys map.

    The inverse of :meth:`Clustering.membership`, used by the incremental
    views to materialise a full result object on demand.  Cluster keys are
    opaque; the rebuilt ``clusters`` list orders them by sorted key so the
    reconstruction is deterministic.
    """
    by_key: Dict[int, Set[Vertex]] = {}
    for v, keys in membership.items():
        for key in keys:
            by_key.setdefault(key, set()).add(v)
    clusters = [by_key[key] for key in sorted(by_key)]
    return Clustering(
        clusters=clusters, cores=set(cores), hubs=set(hubs), noise=set(noise)
    )


@dataclass
class GroupByResult:
    """Result of a cluster-group-by query (Definition 3.2).

    ``groups`` maps an opaque cluster identifier to the non-empty
    intersection of the query set with that cluster.
    """

    groups: Dict[int, Set[Vertex]] = field(default_factory=dict)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def as_sets(self) -> List[Set[Vertex]]:
        """The groups as a list of sets (identifier-free view)."""
        return list(self.groups.values())

    def group_of(self, v: Vertex) -> List[int]:
        """Identifiers of every group containing ``v`` (hubs may be in several)."""
        return [gid for gid, members in self.groups.items() if v in members]


def group_by_membership(
    membership: Mapping[Vertex, Iterable[int]], query: Iterable[Vertex]
) -> GroupByResult:
    """Cluster-group-by derived from a vertex→cluster-indices map.

    The single definition of the grouping semantics shared by the snapshot
    views (:meth:`repro.service.views.ClusteringView.group_by`) and the
    backends that answer group-by from a full retrieval
    (:mod:`repro.core.api`): vertices absent from every cluster are
    omitted, hubs land in each of their groups.
    """
    groups: Dict[int, Set[Vertex]] = {}
    for u in query:
        for idx in membership.get(u, ()):
            groups.setdefault(idx, set()).add(u)
    return GroupByResult(groups=groups)


def similar_neighbour_counts(
    graph: DynamicGraph, labels: Mapping[Edge, EdgeLabel]
) -> Dict[Vertex, int]:
    """SimCnt for every vertex: the number of similar edges incident on it."""
    counts: Dict[Vertex, int] = {v: 0 for v in graph.vertices()}
    for (u, v), label in labels.items():
        if label is EdgeLabel.SIMILAR and graph.has_edge(u, v):
            counts[u] = counts.get(u, 0) + 1
            counts[v] = counts.get(v, 0) + 1
    return counts


def compute_clusters(
    graph: DynamicGraph,
    labels: Mapping[Edge, EdgeLabel],
    mu: int,
) -> Clustering:
    """Fact 1: compute the unique StrCluResult of a labelling in O(n + m).

    Parameters
    ----------
    graph:
        The current graph.
    labels:
        An edge labelling covering every edge of ``graph`` (canonical keys).
    mu:
        The core threshold.
    """
    counts = similar_neighbour_counts(graph, labels)
    cores = {v for v, c in counts.items() if c >= mu}

    # connected components of the sim-core graph via union-find
    uf = UnionFind(cores)
    for (u, v), label in labels.items():
        if label is EdgeLabel.SIMILAR and u in cores and v in cores and graph.has_edge(u, v):
            uf.union(u, v)

    component_of: Dict[Vertex, Vertex] = {c: uf.find(c) for c in cores}
    cluster_index: Dict[Vertex, int] = {}
    clusters: List[Set[Vertex]] = []
    for core in cores:
        root = component_of[core]
        if root not in cluster_index:
            cluster_index[root] = len(clusters)
            clusters.append(set())
        clusters[cluster_index[root]].add(core)

    # attach every vertex similar to some core of each component
    assignments: Dict[Vertex, Set[int]] = {}
    for (u, v), label in labels.items():
        if label is not EdgeLabel.SIMILAR or not graph.has_edge(u, v):
            continue
        for core, other in ((u, v), (v, u)):
            if core in cores:
                idx = cluster_index[component_of[core]]
                clusters[idx].add(other)
                assignments.setdefault(other, set()).add(idx)

    hubs = set()
    noise = set()
    for v in graph.vertices():
        if v in cores:
            continue
        assigned = assignments.get(v, set())
        if len(assigned) >= 2:
            hubs.add(v)
        elif not assigned:
            noise.add(v)
    return Clustering(clusters=clusters, cores=cores, hubs=hubs, noise=noise)


def clusterings_equal(a: Clustering, b: Clustering) -> bool:
    """True when two clusterings have identical clusters, cores, hubs and noise."""
    return (
        a.as_frozen() == b.as_frozen()
        and a.cores == b.cores
        and a.hubs == b.hubs
        and a.noise == b.noise
    )
