"""DynELM — dynamic edge-label maintenance (paper Sections 5, 6 and 8.4).

DynELM maintains a valid ρ-approximate edge labelling of a dynamic graph
under edge insertions and deletions.  The machinery, following the paper:

* labels are produced by the (½ρε, δ_i)-strategy
  (:class:`~repro.core.labelling.LabellingStrategy`) backed by the sampling
  estimator, so one labelling costs poly-log work instead of a
  neighbourhood scan;
* every labelled edge can absorb ``τ(u, v) − 1`` affecting updates before
  its label can possibly become invalid
  (:mod:`~repro.core.affordability`), so a DT instance with threshold
  ``τ(u, v)`` tracks its affecting updates;
* the DT instances of all edges incident on a vertex share one counter and
  are organised in a ``DtHeap`` (:class:`~repro.dt.tracker.UpdateTracker`),
  so an update only touches the edges whose DT actually signals.

Handling an update ``(u, w)`` follows the five steps of Section 6 and
returns the set ``F`` of edges whose label flipped, which DynStrClu consumes
to maintain the clustering structures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.affordability import tracking_threshold
from repro.core.config import StrCluParams
from repro.core.estimator import ExactSimilarityOracle, SamplingSimilarityOracle, SimilarityOracle
from repro.core.labelling import EdgeLabel, LabellingStrategy
from repro.core.result import Clustering, compute_clusters
from repro.dt.tracker import UpdateTracker
from repro.graph.dynamic_graph import DynamicGraph, Vertex, canonical_edge
from repro.instrumentation import MemoryModel, NULL_COUNTER, OpCounter

Edge = Tuple[Vertex, Vertex]


class UpdateKind(str, Enum):
    """Kind of a graph update."""

    INSERT = "insert"
    DELETE = "delete"


@dataclass(frozen=True)
class Update:
    """One edge update of the dynamic graph."""

    kind: UpdateKind
    u: Vertex
    v: Vertex

    @staticmethod
    def insert(u: Vertex, v: Vertex) -> "Update":
        return Update(UpdateKind.INSERT, u, v)

    @staticmethod
    def delete(u: Vertex, v: Vertex) -> "Update":
        return Update(UpdateKind.DELETE, u, v)

    @property
    def edge(self) -> Edge:
        return canonical_edge(self.u, self.v)


@dataclass
class UpdateResult:
    """What DynELM reports back after processing one update.

    Attributes
    ----------
    update:
        The update that was processed.
    updated_edge_label:
        For an insertion, the label given to the new edge; for a deletion,
        the label the edge had immediately before removal.
    flips:
        Every *existing* edge whose label flipped while draining the DT
        heaps, with its new label.  The updated edge itself is reported via
        ``updated_edge_label``, not here.
    relabelled:
        Number of strategy invocations triggered by this update (the new
        edge plus every matured DT instance), for instrumentation.
    """

    update: Update
    updated_edge_label: EdgeLabel
    flips: List[Tuple[Edge, EdgeLabel]] = field(default_factory=list)
    relabelled: int = 0

    @property
    def label_events(self) -> List[Tuple[Edge, Optional[EdgeLabel]]]:
        """Uniform event list consumed by DynStrClu.

        Each element is ``(edge, new_label)`` where ``new_label`` is ``None``
        for a deleted edge.  The updated edge always appears first.
        """
        events: List[Tuple[Edge, Optional[EdgeLabel]]] = []
        if self.update.kind is UpdateKind.INSERT:
            events.append((self.update.edge, self.updated_edge_label))
        else:
            events.append((self.update.edge, None))
        events.extend(self.flips)
        return events


class DynELM:
    """Dynamic Edge Label Maintenance (Theorems 6.1 and 8.1).

    Parameters
    ----------
    params:
        Clustering parameters.  ``params.similarity`` selects Jaccard or
        cosine; ``params.rho == 0`` selects exact mode, in which the exact
        oracle is used and every affecting update triggers a re-label (the
        configuration used by the equivalence property tests).
    oracle:
        Optional similarity oracle override; by default a
        :class:`SamplingSimilarityOracle` (or an exact oracle in exact mode).
    counter:
        Optional :class:`OpCounter` receiving instrumentation events.
    scope:
        Optional predicate over edges (``scope(u, v) -> bool``).  An edge
        outside the scope is maintained as a *graph-only* edge: it enters
        and leaves :attr:`graph` (so the closed neighbourhoods — and hence
        the similarities of in-scope edges — stay exact), it still counts
        as an affecting update at both endpoints, but it is never labelled
        and never tracked by a DT instance.  This is the primitive behind
        the sharded engine: a shard labels only the edges it owns while
        holding the replicated boundary edges for neighbourhood accuracy,
        and the scatter-gather merge resolves the unlabelled boundary
        edges from the owning shards' neighbourhoods.  ``None`` (the
        default) labels every edge — the single-engine behaviour.

    Example
    -------
    >>> params = StrCluParams(epsilon=0.5, mu=2, rho=0.01, seed=7)
    >>> elm = DynELM(params)
    >>> _ = elm.insert_edge(1, 2)
    >>> _ = elm.insert_edge(2, 3)
    >>> elm.graph.num_edges
    2
    """

    def __init__(
        self,
        params: StrCluParams,
        oracle: Optional[SimilarityOracle] = None,
        counter: Optional[OpCounter] = None,
        graph: Optional[DynamicGraph] = None,
        scope: Optional[Callable[[Vertex, Vertex], bool]] = None,
    ) -> None:
        self.params = params
        self.scope = scope
        self.counter = counter if counter is not None else NULL_COUNTER
        self.graph = graph if graph is not None else DynamicGraph()
        self.rng = random.Random(params.seed)
        if oracle is None:
            if params.exact_mode:
                oracle = ExactSimilarityOracle(self.graph, params.similarity, self.counter)
            else:
                oracle = SamplingSimilarityOracle(
                    self.graph,
                    kind=params.similarity,
                    epsilon=params.epsilon,
                    rng=self.rng,
                    counter=self.counter,
                )
        self.oracle = oracle
        self.strategy = LabellingStrategy(params, oracle, self.counter)
        self.tracker = UpdateTracker(self.counter)
        self.labels: Dict[Edge, EdgeLabel] = {}
        self.updates_processed = 0
        self._memory_model = MemoryModel()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        params: StrCluParams,
        counter: Optional[OpCounter] = None,
    ) -> "DynELM":
        """Hot start: build the structure by inserting every edge in turn.

        The paper's remark after Theorem 7.1: inserting the ``m0`` initial
        edges one by one costs ``Õ(m0)`` which is amortised over the
        subsequent updates.
        """
        elm = cls(params, counter=counter)
        for u, v in edges:
            elm.insert_edge(u, v)
        return elm

    # ------------------------------------------------------------------
    # public update API
    # ------------------------------------------------------------------
    def apply(self, update: Update) -> UpdateResult:
        """Process a single :class:`Update`."""
        if update.kind is UpdateKind.INSERT:
            return self.insert_edge(update.u, update.v)
        return self.delete_edge(update.u, update.v)

    def insert_edge(self, u: Vertex, w: Vertex) -> UpdateResult:
        """Insert edge ``(u, w)`` and maintain the labelling (Steps 1–5, Case 1)."""
        update = Update.insert(u, w)
        self.updates_processed += 1
        self.counter.add("update")
        # Step 1: shared-counter increments for both endpoints
        self.tracker.increment(u)
        self.tracker.increment(w)
        # Step 2 (Case 1): insert, label the new edge, start its DT instance
        self.graph.insert_edge(u, w)
        if self.scope is not None and not self.scope(u, w):
            # graph-only edge: it affects the neighbourhoods (hence the
            # shared counters above and the drain below) but carries no
            # label and no DT instance of its own
            flips, relabelled = self._drain(u, w)
            return UpdateResult(update, EdgeLabel.DISSIMILAR, flips, relabelled)
        label = self.strategy.label(u, w)
        self.labels[update.edge] = label
        tau = tracking_threshold(self.graph, u, w, self.params)
        self.tracker.track(u, w, tau)
        relabelled = 1
        # Steps 3 and 4: drain checkpoint-ready DT entries at both endpoints
        flips, extra = self._drain(u, w)
        relabelled += extra
        return UpdateResult(update, label, flips, relabelled)

    def delete_edge(self, u: Vertex, w: Vertex) -> UpdateResult:
        """Delete edge ``(u, w)`` and maintain the labelling (Steps 1–5, Case 2)."""
        update = Update.delete(u, w)
        self.updates_processed += 1
        self.counter.add("update")
        # Step 1
        self.tracker.increment(u)
        self.tracker.increment(w)
        # Step 2 (Case 2): remember the old label, drop edge, label and DT.
        # A graph-only edge (out of ``scope``) legitimately has neither, so
        # only that case may default — an in-scope edge missing its label
        # must still fail loudly (the bookkeeping invariant).
        if self.scope is not None and not self.scope(u, w):
            old_label = self.labels.pop(update.edge, EdgeLabel.DISSIMILAR)
        else:
            old_label = self.labels.pop(update.edge)
        self.graph.delete_edge(u, w)
        self.tracker.untrack(u, w)
        # Steps 3 and 4
        flips, relabelled = self._drain(u, w)
        return UpdateResult(update, old_label, flips, relabelled)

    def _drain(self, u: Vertex, w: Vertex) -> Tuple[List[Tuple[Edge, EdgeLabel]], int]:
        """Steps 3/4: process matured DT instances at ``u`` then ``w``."""
        flips: List[Tuple[Edge, EdgeLabel]] = []
        relabelled = 0
        for endpoint in (u, w):
            for edge in self.tracker.process_ready(endpoint):
                a, b = edge
                old = self.labels[edge]
                new = self.strategy.label(a, b)
                relabelled += 1
                self.labels[edge] = new
                if new is not old:
                    flips.append((edge, new))
                tau = tracking_threshold(self.graph, a, b, self.params)
                self.tracker.track(a, b, tau)
        return flips, relabelled

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def edge_label(self, u: Vertex, v: Vertex) -> Optional[EdgeLabel]:
        """Current label of edge ``(u, v)`` or ``None`` if the edge is absent."""
        return self.labels.get(canonical_edge(u, v))

    def clustering(self) -> Clustering:
        """Retrieve the StrCluResult for the maintained labelling (Fact 1, O(n + m))."""
        return compute_clusters(self.graph, self.labels, self.params.mu)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_words(self) -> int:
        """Logical structure size in machine words (Table 1 memory model)."""
        n = self.graph.num_vertices
        m = self.graph.num_edges
        tracker_elements = self.tracker.memory_elements()
        return self._memory_model.words(
            vertex_record=n + tracker_elements["vertex_record"],
            adjacency_entry=2 * m,
            edge_label=m,
            dt_coordinator=tracker_elements["dt_coordinator"],
            dt_heap_entry=tracker_elements["dt_heap_entry"],
        )
