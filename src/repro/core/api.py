"""The unified clustering-backend protocol and its string-keyed registry.

The repository grew several maintainers of the same logical object — a
structural clustering of a dynamic graph — each with a slightly different
surface: :class:`~repro.core.dynstrclu.DynStrClu` (the paper's ultimate
algorithm), :class:`~repro.core.dynelm.DynELM` plus
:func:`~repro.core.result.compute_clusters` (labels without the group-by
structures), and the three SCAN baselines.  This module is the seam that
makes them interchangeable:

* :class:`Clusterer` — the protocol every backend satisfies: apply one
  :class:`~repro.core.dynelm.Update`, insert/delete one edge, retrieve the
  full :class:`~repro.core.result.Clustering`, answer a cluster-group-by
  over a vertex set, report the logical memory footprint, and drain the
  per-batch :class:`~repro.core.result.ViewDelta` (the flip set ``F`` of
  vertices whose membership changed, or a full-rebuild flag for backends
  that cannot track it — see :class:`FullRebuildDeltaMixin`);
* a **string-keyed registry** — ``make_clusterer("pscan", params)`` builds
  any registered backend from one parameter bundle, so the serving engine,
  the stream processor, the experiment runner and the CLI all select
  backends by name instead of hard-wiring a class.

Built-in backends
-----------------
==============  ====================================  =========================
Name            Implementation                        Notes
==============  ====================================  =========================
``dynstrclu``   :class:`DynStrClu`                    O(|Q| log n) group-by;
                                                      the only snapshot-capable
                                                      backend (durability)
``dynelm``      :class:`DynELM` + compute_clusters    group-by derived from a
                                                      full retrieval (O(n + m))
``scan-exact``  static SCAN re-run per retrieval      exact, trivially correct,
                                                      O(m^1.5) per retrieval
``pscan``       :class:`ExactDynamicSCAN`             exact labels maintained,
                                                      O(n) per update
``hscan``       :class:`IndexedDynamicSCAN`           similarity index bound to
                                                      the configured (ε, μ)
==============  ====================================  =========================

Backends constructed with ``rho == 0`` (exact mode) produce identical
clusterings on identical update streams — the invariant locked in by
``tests/property/test_property_backend_equivalence.py``.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM, Update, UpdateKind
from repro.core.dynstrclu import DynStrClu
from repro.core.result import Clustering, GroupByResult, ViewDelta, group_by_membership
from repro.graph.dynamic_graph import DynamicGraph, Vertex
from repro.instrumentation import MemoryModel, NULL_COUNTER, OpCounter


@runtime_checkable
class Clusterer(Protocol):
    """What every clustering backend exposes to the layers above it.

    Beyond the methods below, a conforming backend also carries three
    read-only attributes used by views, stats and recovery arithmetic:
    ``params`` (the :class:`StrCluParams` it was built with), ``graph``
    (the live :class:`DynamicGraph`) and ``updates_processed`` (how many
    updates it has applied).
    """

    def apply(self, update: Update) -> object:
        """Process one insert/delete update."""
        ...

    def insert_edge(self, u: Vertex, v: Vertex) -> object:
        """Insert edge ``(u, v)``."""
        ...

    def delete_edge(self, u: Vertex, v: Vertex) -> object:
        """Delete edge ``(u, v)``."""
        ...

    def clustering(self) -> Clustering:
        """Retrieve the full clustering of the current graph."""
        ...

    def group_by(self, query: Iterable[Vertex]) -> GroupByResult:
        """Partition ``query`` by cluster membership (Definition 3.2)."""
        ...

    def memory_words(self) -> int:
        """Logical structure size in machine words (Table 1 memory model)."""
        ...

    def drain_view_delta(self) -> ViewDelta:
        """Report (and reset) the flip set accumulated since the last drain.

        The per-batch delta surface of incremental view publication: a
        backend that tracks which vertices' core status or cluster
        membership changed returns :meth:`ViewDelta.of` with that flip set;
        a backend that cannot returns :meth:`ViewDelta.full` and the
        service layer re-captures the view from scratch.

        Backends reporting tracked deltas must additionally expose the two
        patch probes ``core_component(v)`` (an opaque, momentarily
        consistent cluster identifier for a core vertex) and
        ``core_attachments(v)`` (the vertices attached to a core) plus
        ``is_core(v)`` — the queries
        :meth:`repro.service.views.ClusteringView.patched` replays over the
        flip set's dirty region.
        """
        ...


class FullRebuildDeltaMixin:
    """Delta surface of backends that cannot track the flip set.

    Mixing this in satisfies the :class:`Clusterer` delta protocol with the
    honest answer — "recompute everything" — which the view layer turns
    into a full :meth:`~repro.service.views.ClusteringView.capture`.
    """

    def drain_view_delta(self) -> ViewDelta:
        return ViewDelta.full()


def drain_view_delta(maintainer: object) -> ViewDelta:
    """Drain ``maintainer``'s view delta, tolerating legacy backends.

    Plugin backends registered before the delta surface existed simply
    lack the method; they behave as full-rebuild backends.
    """
    drain = getattr(maintainer, "drain_view_delta", None)
    if drain is None:
        return ViewDelta.full()
    return drain()


def _group_by_from_clustering(
    clustering: Clustering, query: Iterable[Vertex]
) -> GroupByResult:
    """Derive a cluster-group-by from a full retrieval.

    The fallback for backends without DynStrClu's maintained group-by
    structures: costs one O(n + m) retrieval per query instead of
    O(|Q| log n), but partitions the query set identically because cluster
    membership in the retrieved :class:`Clustering` is defined by exactly
    the relation the live query path evaluates.
    """
    return group_by_membership(clustering.membership(), query)


class DynELMClusterer(FullRebuildDeltaMixin):
    """``dynelm`` backend: DynELM labels + clustering retrieval on demand.

    No view delta: DynELM reports flipped *edges* but maintains neither
    SimCnt counters nor ``G_core``, so per-vertex membership changes are
    not derivable without the full retrieval it would be patching around.
    """

    backend_name = "dynelm"

    def __init__(
        self,
        params: StrCluParams,
        counter: Optional[OpCounter] = None,
        scope: Optional[Callable[..., bool]] = None,
        **_ignored: object,
    ) -> None:
        self.elm = DynELM(params, counter=counter, scope=scope)

    @property
    def params(self) -> StrCluParams:
        return self.elm.params

    @property
    def graph(self) -> DynamicGraph:
        return self.elm.graph

    @property
    def updates_processed(self) -> int:
        return self.elm.updates_processed

    def apply(self, update: Update) -> object:
        return self.elm.apply(update)

    def insert_edge(self, u: Vertex, v: Vertex) -> object:
        return self.elm.insert_edge(u, v)

    def delete_edge(self, u: Vertex, v: Vertex) -> object:
        return self.elm.delete_edge(u, v)

    def clustering(self) -> Clustering:
        return self.elm.clustering()

    def group_by(self, query: Iterable[Vertex]) -> GroupByResult:
        return _group_by_from_clustering(self.clustering(), query)

    def memory_words(self) -> int:
        return self.elm.memory_words()


class StaticSCANClusterer(FullRebuildDeltaMixin):
    """``scan-exact`` backend: maintain only the graph, re-run SCAN per query.

    The from-scratch baseline as a maintainer: updates cost O(1) (a graph
    mutation), every retrieval re-computes the exact clustering.  Useful as
    a correctness oracle behind the same service surface as the dynamic
    backends.
    """

    backend_name = "scan-exact"

    def __init__(
        self,
        params: StrCluParams,
        counter: Optional[OpCounter] = None,
        **_ignored: object,
    ) -> None:
        self.params = params
        self.counter = counter if counter is not None else NULL_COUNTER
        self.graph = DynamicGraph()
        self.updates_processed = 0
        self._memory_model = MemoryModel()

    def apply(self, update: Update) -> object:
        if update.kind is UpdateKind.INSERT:
            return self.insert_edge(update.u, update.v)
        return self.delete_edge(update.u, update.v)

    def insert_edge(self, u: Vertex, v: Vertex) -> object:
        self.updates_processed += 1
        self.counter.add("update")
        self.graph.insert_edge(u, v)
        return None

    def delete_edge(self, u: Vertex, v: Vertex) -> object:
        self.updates_processed += 1
        self.counter.add("update")
        self.graph.delete_edge(u, v)
        return None

    def clustering(self) -> Clustering:
        from repro.baselines.scan import static_scan

        return static_scan(
            self.graph,
            self.params.epsilon,
            self.params.mu,
            self.params.similarity,
            counter=self.counter,
        )

    def group_by(self, query: Iterable[Vertex]) -> GroupByResult:
        return _group_by_from_clustering(self.clustering(), query)

    def memory_words(self) -> int:
        n = self.graph.num_vertices
        m = self.graph.num_edges
        return self._memory_model.words(vertex_record=n, adjacency_entry=2 * m)


class PScanClusterer(FullRebuildDeltaMixin):
    """``pscan`` backend: exact labels maintained by neighbourhood re-scans."""

    backend_name = "pscan"

    def __init__(
        self,
        params: StrCluParams,
        counter: Optional[OpCounter] = None,
        **_ignored: object,
    ) -> None:
        from repro.baselines.pscan import ExactDynamicSCAN

        self.params = params
        self.maintainer = ExactDynamicSCAN(
            params.epsilon, params.mu, params.similarity, counter
        )

    @property
    def graph(self) -> DynamicGraph:
        return self.maintainer.graph

    @property
    def updates_processed(self) -> int:
        return self.maintainer.updates_processed

    def apply(self, update: Update) -> object:
        return self.maintainer.apply(update)

    def insert_edge(self, u: Vertex, v: Vertex) -> object:
        return self.maintainer.insert_edge(u, v)

    def delete_edge(self, u: Vertex, v: Vertex) -> object:
        return self.maintainer.delete_edge(u, v)

    def clustering(self) -> Clustering:
        return self.maintainer.clustering()

    def group_by(self, query: Iterable[Vertex]) -> GroupByResult:
        return _group_by_from_clustering(self.clustering(), query)

    def memory_words(self) -> int:
        return self.maintainer.memory_words()


class HScanClusterer(FullRebuildDeltaMixin):
    """``hscan`` backend: the similarity index bound to one (ε, μ) pair.

    :class:`IndexedDynamicSCAN` answers any (ε, μ) at query time; behind the
    uniform protocol it is pinned to the configured parameters so all
    backends answer the same question.
    """

    backend_name = "hscan"

    def __init__(
        self,
        params: StrCluParams,
        counter: Optional[OpCounter] = None,
        **_ignored: object,
    ) -> None:
        from repro.baselines.hscan import IndexedDynamicSCAN

        self.params = params
        self.index = IndexedDynamicSCAN(params.similarity, counter)

    @property
    def graph(self) -> DynamicGraph:
        return self.index.graph

    @property
    def updates_processed(self) -> int:
        return self.index.updates_processed

    def apply(self, update: Update) -> object:
        return self.index.apply(update)

    def insert_edge(self, u: Vertex, v: Vertex) -> object:
        return self.index.insert_edge(u, v)

    def delete_edge(self, u: Vertex, v: Vertex) -> object:
        return self.index.delete_edge(u, v)

    def clustering(self) -> Clustering:
        return self.index.clustering(self.params.epsilon, self.params.mu)

    def group_by(self, query: Iterable[Vertex]) -> GroupByResult:
        return _group_by_from_clustering(self.clustering(), query)

    def memory_words(self) -> int:
        return self.index.memory_words()


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
#: A factory takes ``(params, counter=None, connectivity_backend="hdt")``
#: and returns a :class:`Clusterer`; unknown keyword arguments are ignored
#: by backends that have no use for them.
ClustererFactory = Callable[..., Clusterer]

_BACKENDS: Dict[str, ClustererFactory] = {}

#: Backends whose full state can round-trip through
#: :mod:`repro.persistence.snapshot` — the ones the serving engine can make
#: durable (snapshot + WAL checkpointing).
SNAPSHOT_CAPABLE_BACKENDS = frozenset({"dynstrclu"})


def register_backend(
    name: str, factory: ClustererFactory, replace: bool = False
) -> None:
    """Register a backend under ``name`` (lower-case by convention).

    Raises ``ValueError`` when the name is taken and ``replace`` is false,
    so plugins cannot silently shadow a built-in.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("backend name must be non-empty")
    if key in _BACKENDS and not replace:
        raise ValueError(f"backend {key!r} is already registered")
    _BACKENDS[key] = factory


def available_backends() -> Tuple[str, ...]:
    """Sorted names of every registered backend."""
    return tuple(sorted(_BACKENDS))


def make_clusterer(
    backend: str,
    params: StrCluParams,
    counter: Optional[OpCounter] = None,
    connectivity_backend: str = "hdt",
    scope: Optional[Callable[..., bool]] = None,
) -> Clusterer:
    """Build the named backend from one parameter bundle.

    ``scope`` is the optional edge-labelling scope predicate used by the
    sharded engine (see :class:`repro.core.dynelm.DynELM`); backends that
    do not support scoped labelling ignore it — their shard-local results
    are never consulted for out-of-scope edges by the merge layer.

    Raises ``ValueError`` (listing the registered names) for an unknown
    backend, so CLI and HTTP layers can surface the typo directly.
    """
    key = backend.strip().lower()
    factory = _BACKENDS.get(key)
    if factory is None:
        raise ValueError(
            f"unknown clustering backend {backend!r}; "
            f"registered: {', '.join(available_backends())}"
        )
    kwargs = {"counter": counter, "connectivity_backend": connectivity_backend}
    if scope is not None:
        # only forwarded when set, so legacy plugin factories that predate
        # scoped labelling keep working in the unsharded configuration
        kwargs["scope"] = scope
    return factory(params, **kwargs)


def _make_dynstrclu(
    params: StrCluParams,
    counter: Optional[OpCounter] = None,
    connectivity_backend: str = "hdt",
    scope: Optional[Callable[..., bool]] = None,
) -> DynStrClu:
    return DynStrClu(
        params, counter=counter, connectivity_backend=connectivity_backend, scope=scope
    )


register_backend("dynstrclu", _make_dynstrclu)
register_backend("dynelm", DynELMClusterer)
register_backend("scan-exact", StaticSCANClusterer)
register_backend("pscan", PScanClusterer)
register_backend("hscan", HScanClusterer)
