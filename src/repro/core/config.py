"""Structural-clustering parameters and their validation.

The algorithms are governed by four user parameters (paper Sections 2-6):

* ``epsilon`` — similarity threshold, in ``(0, 1]``;
* ``mu`` — core threshold (minimum number of similar neighbours), ``>= 1``;
* ``rho`` — approximation slack, in ``[0, min(1, 1/epsilon - 1))``; ``rho = 0``
  demands exact labels;
* ``delta_star`` — overall failure probability of the maintained labelling
  over an entire update sequence.

``similarity`` selects Jaccard (default) or cosine structural similarity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.graph.similarity import SimilarityKind


@dataclass(frozen=True)
class StrCluParams:
    """Validated parameter bundle shared by every algorithm in the library.

    Example
    -------
    >>> params = StrCluParams(epsilon=0.3, mu=3, rho=0.01)
    >>> params.delta_schedule(1)  # doctest: +ELLIPSIS
    0.000...
    """

    epsilon: float = 0.2
    mu: int = 5
    rho: float = 0.01
    delta_star: float = 0.001
    similarity: SimilarityKind = SimilarityKind.JACCARD
    seed: int = 0
    #: optional cap on the per-invocation sample size of the estimator; the
    #: theoretical L_i grows with ln(i), which on small synthetic graphs can
    #: exceed the neighbourhood sizes — capping trades a little probability
    #: budget for speed and is recorded in DESIGN.md.
    max_samples: Optional[int] = 2048

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0, 1], got {self.epsilon}")
        if self.mu < 1 or int(self.mu) != self.mu:
            raise ValueError(f"mu must be a positive integer, got {self.mu}")
        rho_upper = min(1.0, 1.0 / self.epsilon - 1.0)
        # rho = 0 (exact mode) is always admissible, even when the open range
        # [0, rho_upper) collapses because epsilon = 1
        rho_valid = self.rho == 0.0 or 0.0 <= self.rho < rho_upper
        if not rho_valid:
            raise ValueError(
                f"rho must be in [0, {rho_upper}) for epsilon={self.epsilon}, got {self.rho}"
            )
        if not 0.0 < self.delta_star < 1.0:
            raise ValueError(f"delta_star must be in (0, 1), got {self.delta_star}")
        if not isinstance(self.similarity, SimilarityKind):
            object.__setattr__(self, "similarity", SimilarityKind(self.similarity))

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def delta_estimate(self) -> float:
        """The estimator accuracy ``Δ = ρ ε / 2`` used by the (½ρε, δ)-strategy."""
        return 0.5 * self.rho * self.epsilon

    @property
    def exact_mode(self) -> bool:
        """True when ``rho == 0``: labels must be exact, no sampling slack exists."""
        return self.rho == 0.0

    def delta_schedule(self, invocation: int) -> float:
        """Failure probability ``δ_i = δ* / (i (i + 1))`` of the i-th strategy invocation.

        The telescoping sum of the schedule over all invocations is below
        ``δ*`` (paper Eq. (3) and Lemma 6.5).
        """
        if invocation < 1:
            raise ValueError("invocation index starts at 1")
        return self.delta_star / (invocation * (invocation + 1))

    def jaccard_sample_size(self, invocation: int) -> int:
        """Sample size ``L_i`` of the i-th invocation under Jaccard (paper Eq. (4))."""
        delta_i = self.delta_schedule(invocation)
        width = self.delta_estimate
        if width <= 0.0:
            raise ValueError("sampling is undefined in exact mode (rho = 0)")
        samples = math.ceil(2.0 / (width * width) * math.log(2.0 / delta_i))
        return self._cap(samples)

    def cosine_sample_size(self, invocation: int) -> int:
        """Sample size of the i-th invocation under cosine (paper Theorem 8.3)."""
        delta_i = self.delta_schedule(invocation)
        width = self.delta_estimate
        if width <= 0.0:
            raise ValueError("sampling is undefined in exact mode (rho = 0)")
        eps = self.epsilon
        factor = (eps * eps + 1.0) ** 2 / (8.0 * eps * eps * width * width)
        samples = math.ceil(factor * math.log(2.0 / delta_i))
        return self._cap(samples)

    def sample_size(self, invocation: int) -> int:
        """Dispatch to the sample size of the configured similarity."""
        if self.similarity is SimilarityKind.JACCARD:
            return self.jaccard_sample_size(invocation)
        return self.cosine_sample_size(invocation)

    def _cap(self, samples: int) -> int:
        if self.max_samples is not None:
            return max(1, min(samples, self.max_samples))
        return max(1, samples)

    def with_similarity(self, similarity: SimilarityKind | str) -> "StrCluParams":
        """Return a copy of the parameters with a different similarity kind."""
        return replace(self, similarity=SimilarityKind(similarity))

    def with_rho(self, rho: float) -> "StrCluParams":
        """Return a copy of the parameters with a different approximation slack."""
        return replace(self, rho=rho)

    def with_epsilon(self, epsilon: float) -> "StrCluParams":
        """Return a copy of the parameters with a different similarity threshold."""
        return replace(self, epsilon=epsilon)


#: Default parameter bundle used throughout examples and benchmarks.
DEFAULT_PARAMS = StrCluParams()
