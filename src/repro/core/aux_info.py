"""vAuxInfo — per-vertex auxiliary information maintained by DynStrClu.

For every vertex ``u`` the paper maintains (Section 7):

* ``SimCnt(u)`` — the number of similar neighbours of ``u`` (which decides
  the core status against ``μ``), and
* a partition of ``u``'s neighbours into *sim-core*, *sim-non-core* and
  *dissimilar* neighbours.

Here the two similar categories are stored as explicit sets (dissimilar
neighbours are implicit: adjacent but in neither set), so that

* ``SimCnt`` is the sum of the two set sizes (O(1) to read),
* moving a neighbour between categories is O(1), and
* a non-core vertex can enumerate its sim-core neighbours directly, which is
  what the cluster-group-by query needs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Set

Vertex = Hashable


class VertexAuxInfo:
    """SimCnt counters and similar-neighbour categories for every vertex."""

    def __init__(self) -> None:
        self._sim_core: Dict[Vertex, Set[Vertex]] = {}
        self._sim_noncore: Dict[Vertex, Set[Vertex]] = {}

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def sim_count(self, u: Vertex) -> int:
        """``SimCnt(u)``: the number of similar neighbours of ``u``."""
        return len(self._sim_core.get(u, ())) + len(self._sim_noncore.get(u, ()))

    def similar_neighbours(self, u: Vertex) -> Set[Vertex]:
        """All similar neighbours of ``u`` (a fresh set)."""
        out = set(self._sim_core.get(u, ()))
        out.update(self._sim_noncore.get(u, ()))
        return out

    def sim_core_neighbours(self, u: Vertex) -> Set[Vertex]:
        """Similar neighbours of ``u`` that are currently core (live set; do not mutate)."""
        return self._sim_core.get(u, set())

    def sim_noncore_neighbours(self, u: Vertex) -> Set[Vertex]:
        """Similar neighbours of ``u`` that are currently non-core (live set)."""
        return self._sim_noncore.get(u, set())

    def is_similar_neighbour(self, u: Vertex, v: Vertex) -> bool:
        """True when ``v`` is recorded as a similar neighbour of ``u``."""
        return v in self._sim_core.get(u, ()) or v in self._sim_noncore.get(u, ())

    def vertices(self) -> Set[Vertex]:
        """Every vertex that currently has at least one similar neighbour."""
        out = {v for v, s in self._sim_core.items() if s}
        out.update(v for v, s in self._sim_noncore.items() if s)
        return out

    def num_entries(self) -> int:
        """Total number of (vertex, similar-neighbour) entries (memory accounting)."""
        return sum(len(s) for s in self._sim_core.values()) + sum(
            len(s) for s in self._sim_noncore.values()
        )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def add_similar(self, u: Vertex, v: Vertex, v_is_core: bool) -> None:
        """Record ``v`` as a similar neighbour of ``u`` in the right category."""
        target = self._sim_core if v_is_core else self._sim_noncore
        target.setdefault(u, set()).add(v)

    def remove_similar(self, u: Vertex, v: Vertex) -> None:
        """Forget ``v`` as a similar neighbour of ``u`` (whatever its category)."""
        bucket = self._sim_core.get(u)
        if bucket is not None:
            bucket.discard(v)
        bucket = self._sim_noncore.get(u)
        if bucket is not None:
            bucket.discard(v)

    def set_neighbour_core_status(self, u: Vertex, v: Vertex, v_is_core: bool) -> None:
        """Move ``v`` between ``u``'s sim-core / sim-non-core categories."""
        if not self.is_similar_neighbour(u, v):
            return
        self.remove_similar(u, v)
        self.add_similar(u, v, v_is_core)

    def update_similar_edge(self, u: Vertex, v: Vertex, u_is_core: bool, v_is_core: bool) -> None:
        """Record the similar edge ``(u, v)`` in both endpoints' categories."""
        self.add_similar(u, v, v_is_core)
        self.add_similar(v, u, u_is_core)

    def remove_similar_edge(self, u: Vertex, v: Vertex) -> None:
        """Forget the similar edge ``(u, v)`` on both endpoints."""
        self.remove_similar(u, v)
        self.remove_similar(v, u)
