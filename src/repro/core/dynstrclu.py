"""DynStrClu — the ultimate dynamic structural clustering algorithm (Section 7).

DynStrClu composes three modules:

* **ELM** — a :class:`~repro.core.dynelm.DynELM` instance maintaining the
  ρ-approximate edge labelling and reporting the flipped edges ``F`` of each
  update;
* **vAuxInfo** — per-vertex SimCnt counters and neighbour categories
  (:class:`~repro.core.aux_info.VertexAuxInfo`);
* **CC-Str(G_core)** — a fully dynamic connectivity structure over the
  sim-core graph (any backend from :mod:`repro.connectivity`).

On top of the clustering-retrieval capability inherited from DynELM, the
composition answers *cluster-group-by* queries over an arbitrary vertex set
``Q`` in ``O(|Q| · log n)`` time (Theorem 7.1): a core vertex contributes the
component identifier of its ``G_core`` component, a non-core vertex the
identifiers of its sim-core neighbours' components.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.connectivity import make_connectivity
from repro.connectivity.base import ConnectivityStructure
from repro.core.aux_info import VertexAuxInfo
from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM, Update, UpdateKind, UpdateResult
from repro.core.estimator import SimilarityOracle
from repro.core.labelling import EdgeLabel
from repro.core.result import Clustering, GroupByResult, ViewDelta
from repro.graph.dynamic_graph import DynamicGraph, Vertex, canonical_edge
from repro.instrumentation import MemoryModel, NULL_COUNTER, OpCounter

Edge = Tuple[Vertex, Vertex]


class DynStrClu:
    """Dynamic structural clustering with cluster-group-by queries.

    Example
    -------
    >>> params = StrCluParams(epsilon=0.5, mu=2, rho=0.0)
    >>> algo = DynStrClu(params)
    >>> for edge in [(1, 2), (2, 3), (1, 3), (3, 4)]:
    ...     _ = algo.insert_edge(*edge)
    >>> result = algo.group_by([1, 2, 4])
    >>> sorted(len(g) for g in result.as_sets())
    [3]
    """

    def __init__(
        self,
        params: StrCluParams,
        oracle: Optional[SimilarityOracle] = None,
        counter: Optional[OpCounter] = None,
        connectivity: Optional[ConnectivityStructure] = None,
        connectivity_backend: str = "hdt",
        scope: Optional[Callable[[Vertex, Vertex], bool]] = None,
    ) -> None:
        self.counter = counter if counter is not None else NULL_COUNTER
        self.elm = DynELM(params, oracle=oracle, counter=self.counter, scope=scope)
        self.aux = VertexAuxInfo()
        self.cc = connectivity if connectivity is not None else make_connectivity(
            connectivity_backend
        )
        self.cores: Set[Vertex] = set()
        self._memory_model = MemoryModel()
        # flip set accumulated since the last drain_view_delta() — every
        # vertex whose core status or cluster membership may have changed
        self._view_flips: Set[Vertex] = set()

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def params(self) -> StrCluParams:
        return self.elm.params

    @property
    def graph(self) -> DynamicGraph:
        return self.elm.graph

    @property
    def updates_processed(self) -> int:
        """Number of updates applied so far (delegated to the ELM stream count)."""
        return self.elm.updates_processed

    @property
    def labels(self) -> Dict[Edge, EdgeLabel]:
        return self.elm.labels

    @property
    def scope(self) -> Optional[Callable[[Vertex, Vertex], bool]]:
        """The edge-labelling scope predicate (``None``: label everything)."""
        return self.elm.scope

    def is_core(self, u: Vertex) -> bool:
        """True when ``u`` currently has at least μ similar neighbours."""
        return u in self.cores

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        params: StrCluParams,
        counter: Optional[OpCounter] = None,
        connectivity_backend: str = "hdt",
    ) -> "DynStrClu":
        """Hot start: insert every edge of an existing graph one by one."""
        algo = cls(params, counter=counter, connectivity_backend=connectivity_backend)
        for u, v in edges:
            algo.insert_edge(u, v)
        return algo

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply(self, update: Update) -> UpdateResult:
        """Process one :class:`Update`."""
        if update.kind is UpdateKind.INSERT:
            return self.insert_edge(update.u, update.v)
        return self.delete_edge(update.u, update.v)

    def insert_edge(self, u: Vertex, w: Vertex) -> UpdateResult:
        """Insert edge ``(u, w)`` and maintain labelling, vAuxInfo and G_core."""
        result = self.elm.insert_edge(u, w)
        self._integrate(result)
        return result

    def delete_edge(self, u: Vertex, w: Vertex) -> UpdateResult:
        """Delete edge ``(u, w)`` and maintain labelling, vAuxInfo and G_core."""
        result = self.elm.delete_edge(u, w)
        self._integrate(result)
        return result

    # ------------------------------------------------------------------
    # the maintenance pass of Section 7
    # ------------------------------------------------------------------
    def _integrate(self, result: UpdateResult) -> None:
        """Consume the flip set ``F`` of one update: maintain vAuxInfo and CC-Str."""
        events = result.label_events
        touched: Set[Vertex] = set()
        for (a, b), _new_label in events:
            touched.add(a)
            touched.add(b)
        old_core = {v: v in self.cores for v in touched}

        # --- vAuxInfo: similar-neighbour sets -------------------------------
        for (a, b), new_label in events:
            if new_label is EdgeLabel.SIMILAR:
                self.aux.update_similar_edge(a, b, a in self.cores, b in self.cores)
            else:
                # dissimilar or deleted: either way the edge is no longer a
                # similar edge of the graph
                self.aux.remove_similar_edge(a, b)

        # --- core-status flips (V') ------------------------------------------
        mu = self.params.mu
        core_flips: List[Vertex] = []
        for v in touched:
            now_core = self.aux.sim_count(v) >= mu
            if now_core != old_core[v]:
                core_flips.append(v)
                if now_core:
                    self.cores.add(v)
                else:
                    self.cores.discard(v)

        # neighbour categories follow the new core status of the flipped vertices
        for v in core_flips:
            v_is_core = v in self.cores
            for x in self.aux.similar_neighbours(v):
                self.aux.set_neighbour_core_status(x, v, v_is_core)

        # the flip set of this update (paper's F, vertex form): the touched
        # endpoints, plus every vertex attached to a core whose status
        # flipped — exactly the vertices whose membership can have changed
        self._view_flips.update(touched)
        for v in core_flips:
            self._view_flips.update(self.aux.similar_neighbours(v))

        # --- sim-core edge flips (F') and G_core maintenance ------------------
        candidates: Set[Edge] = {edge for edge, _ in events}
        for v in core_flips:
            for x in self.aux.similar_neighbours(v):
                candidates.add(canonical_edge(v, x))

        graph = self.graph
        labels = self.labels
        newly_core = [v for v in core_flips if v in self.cores]
        for v in newly_core:
            # the paper's conceptual self-loop: a core vertex is present in
            # G_core even if it has no incident sim-core edge yet
            self.cc.add_vertex(v)
            self.counter.add("cc_op")

        for a, b in candidates:
            is_sim_core = (
                graph.has_edge(a, b)
                and labels.get(canonical_edge(a, b)) is EdgeLabel.SIMILAR
                and a in self.cores
                and b in self.cores
            )
            was_sim_core = self.cc.has_edge(a, b)
            if is_sim_core and not was_sim_core:
                self.cc.insert_edge(a, b)
                self.counter.add("cc_op")
            elif was_sim_core and not is_sim_core:
                self.cc.delete_edge(a, b)
                self.counter.add("cc_op")

        for v in core_flips:
            if v not in self.cores and self.cc.has_vertex(v):
                # all incident sim-core edges were removed above, so v is isolated
                self.cc.remove_vertex(v)
                self.counter.add("cc_op")

    # ------------------------------------------------------------------
    # the per-batch delta surface (incremental view publication)
    # ------------------------------------------------------------------
    def drain_view_delta(self) -> ViewDelta:
        """Return (and reset) the flip set accumulated since the last drain.

        DynStrClu is the one backend that tracks the paper's flip set
        exactly, so its delta is never a full rebuild.  The service layer
        drains once per micro-batch and patches the published view with the
        returned vertices (:meth:`repro.service.views.ClusteringView.patched`).
        """
        flips = self._view_flips
        self._view_flips = set()
        return ViewDelta.of(flips)

    def core_component(self, v: Vertex) -> int:
        """Opaque ``G_core`` component identifier of a core vertex.

        Only meaningful for current cores; identifiers are consistent at a
        single moment (two cores share one iff connected) but not stable
        across updates — callers must re-key per batch.
        """
        return self.cc.component_id(v)

    def core_attachments(self, v: Vertex) -> Set[Vertex]:
        """Every vertex attached to core ``v``: its similar neighbours."""
        return self.aux.similar_neighbours(v)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def group_by(self, query: Iterable[Vertex]) -> GroupByResult:
        """Cluster-group-by query (Definition 3.2) in O(|Q| log n) time."""
        groups: Dict[int, Set[Vertex]] = {}
        for u in query:
            self.counter.add("groupby_vertex")
            if u in self.cores:
                cc_id = self.cc.component_id(u)
                groups.setdefault(cc_id, set()).add(u)
                continue
            for v in self.aux.sim_core_neighbours(u):
                cc_id = self.cc.component_id(v)
                groups.setdefault(cc_id, set()).add(u)
        return GroupByResult(groups=groups)

    def clustering(self) -> Clustering:
        """Retrieve the full StrCluResult from the maintained structures (O(n + m)).

        Clusters correspond one-to-one to the connected components of the
        maintained ``G_core``; each contains the component's cores plus every
        vertex with a similar edge to one of those cores.
        """
        cluster_index: Dict[int, int] = {}
        clusters: List[Set[Vertex]] = []
        for core in self.cores:
            cc_id = self.cc.component_id(core)
            idx = cluster_index.get(cc_id)
            if idx is None:
                idx = len(clusters)
                cluster_index[cc_id] = idx
                clusters.append(set())
            clusters[idx].add(core)

        assignments: Dict[Vertex, Set[int]] = {}
        for core in self.cores:
            idx = cluster_index[self.cc.component_id(core)]
            for v in self.aux.similar_neighbours(core):
                clusters[idx].add(v)
                assignments.setdefault(v, set()).add(idx)

        hubs: Set[Vertex] = set()
        noise: Set[Vertex] = set()
        for v in self.graph.vertices():
            if v in self.cores:
                continue
            assigned = assignments.get(v, set())
            if len(assigned) >= 2:
                hubs.add(v)
            elif not assigned:
                noise.add(v)
        return Clustering(clusters=clusters, cores=set(self.cores), hubs=hubs, noise=noise)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def memory_words(self) -> int:
        """Logical structure size in machine words (Table 1 memory model)."""
        base = self.elm.memory_words()
        cc_elements = self.cc.memory_elements()
        return base + self._memory_model.words(
            aux_entry=self.aux.num_entries(),
            cc_node=cc_elements.get("cc_node", 0),
        )
