"""The paper's primary contribution: DynELM and DynStrClu.

Public entry points:

* :class:`~repro.core.config.StrCluParams` — clustering parameters
  (ε, μ, ρ, δ*, similarity kind).
* :class:`~repro.core.dynelm.DynELM` — dynamic edge-label maintenance
  (Theorem 6.1 / 8.1).
* :class:`~repro.core.dynstrclu.DynStrClu` — the ultimate algorithm with
  cluster-group-by queries (Theorem 7.1).
* :func:`~repro.core.result.compute_clusters` — Fact 1: StrCluResult from an
  edge labelling in O(n + m) time.
"""

from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM
from repro.core.dynstrclu import DynStrClu
from repro.core.labelling import EdgeLabel
from repro.core.result import Clustering, compute_clusters

__all__ = [
    "StrCluParams",
    "DynELM",
    "DynStrClu",
    "EdgeLabel",
    "Clustering",
    "compute_clusters",
]
