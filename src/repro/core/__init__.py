"""The paper's primary contribution: DynELM and DynStrClu.

Public entry points:

* :class:`~repro.core.config.StrCluParams` — clustering parameters
  (ε, μ, ρ, δ*, similarity kind).
* :class:`~repro.core.dynelm.DynELM` — dynamic edge-label maintenance
  (Theorem 6.1 / 8.1).
* :class:`~repro.core.dynstrclu.DynStrClu` — the ultimate algorithm with
  cluster-group-by queries (Theorem 7.1).
* :func:`~repro.core.result.compute_clusters` — Fact 1: StrCluResult from an
  edge labelling in O(n + m) time.
* :mod:`~repro.core.api` — the :class:`~repro.core.api.Clusterer` protocol
  and the string-keyed backend registry
  (:func:`~repro.core.api.make_clusterer`) that make every maintainer in
  the repository interchangeable behind one surface.
"""

from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM
from repro.core.dynstrclu import DynStrClu
from repro.core.labelling import EdgeLabel
from repro.core.result import Clustering, ViewDelta, compute_clusters
from repro.core.api import (
    Clusterer,
    available_backends,
    make_clusterer,
    register_backend,
)

__all__ = [
    "StrCluParams",
    "DynELM",
    "DynStrClu",
    "EdgeLabel",
    "Clustering",
    "compute_clusters",
    "Clusterer",
    "available_backends",
    "make_clusterer",
    "register_backend",
    "ViewDelta",
]
