"""Edge labels, the (½ρε, δ)-strategy, and ρ-approximate validity checks.

An edge labelling assigns ``similar`` or ``dissimilar`` to every edge of the
graph.  The paper's algorithms never store exact similarities; they store
labels produced by the *(Δ, δ)-strategy* (Definition 4.2): an edge is
labelled ``similar`` iff the estimator reports ``σ̃ ≥ ε``.  With
``Δ = ½ρε`` the resulting labelling is a valid ρ-approximate labelling
(Definition 2.2) with probability at least ``1 − δ`` per invocation
(Lemma 4.3), and the δ-budget is split across invocations by the schedule
``δ_i = δ*/(i(i+1))``.

This module also provides the exact labelling (Definition 2.1) and the
validity predicates that the evaluation module and the property-based tests
use.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Tuple

from repro.core.config import StrCluParams
from repro.core.estimator import SimilarityOracle
from repro.graph.dynamic_graph import DynamicGraph, Vertex, canonical_edge
from repro.graph.similarity import SimilarityKind, structural_similarity
from repro.instrumentation import NULL_COUNTER, OpCounter

Edge = Tuple[Vertex, Vertex]


class EdgeLabel(str, Enum):
    """Label of an edge under structural clustering."""

    SIMILAR = "similar"
    DISSIMILAR = "dissimilar"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_similar(self) -> bool:
        """Convenience flag used in hot paths."""
        return self is EdgeLabel.SIMILAR


class LabellingStrategy:
    """The (½ρε, δ)-strategy with the per-invocation δ-schedule.

    Each call to :meth:`label` is one strategy invocation: the invocation
    counter ``i`` advances, δ_i and the sample size L_i are derived from the
    parameters, the oracle is queried and the threshold test ``σ̃ ≥ ε`` is
    applied.
    """

    def __init__(
        self,
        params: StrCluParams,
        oracle: SimilarityOracle,
        counter: OpCounter | None = None,
    ) -> None:
        self.params = params
        self.oracle = oracle
        self.invocations = 0
        self.counter = counter if counter is not None else NULL_COUNTER

    def label(self, u: Vertex, v: Vertex) -> EdgeLabel:
        """Label edge ``(u, v)`` with a fresh strategy invocation."""
        self.invocations += 1
        self.counter.add("label_invocation")
        if self.params.exact_mode:
            estimate = self.oracle.similarity(u, v)
        else:
            samples = self.params.sample_size(self.invocations)
            estimate = self.oracle.similarity(u, v, num_samples=samples)
        return EdgeLabel.SIMILAR if estimate >= self.params.epsilon else EdgeLabel.DISSIMILAR

    def last_sample_size(self) -> int:
        """Sample size that the *next* invocation would use (monitoring aid)."""
        if self.params.exact_mode:
            return 0
        return self.params.sample_size(self.invocations + 1)


# ----------------------------------------------------------------------
# exact labellings and validity predicates
# ----------------------------------------------------------------------
def exact_labelling(
    graph: DynamicGraph,
    epsilon: float,
    kind: SimilarityKind = SimilarityKind.JACCARD,
) -> Dict[Edge, EdgeLabel]:
    """Return the valid (exact) edge labelling ``L_ε(G)`` of Definition 2.1."""
    labels: Dict[Edge, EdgeLabel] = {}
    for u, v in graph.edges():
        sigma = structural_similarity(graph, u, v, kind)
        labels[canonical_edge(u, v)] = (
            EdgeLabel.SIMILAR if sigma >= epsilon else EdgeLabel.DISSIMILAR
        )
    return labels


def is_valid_exact(
    graph: DynamicGraph,
    labels: Dict[Edge, EdgeLabel],
    epsilon: float,
    kind: SimilarityKind = SimilarityKind.JACCARD,
) -> bool:
    """Check Definition 2.1: every label agrees with the ``σ ≥ ε`` test."""
    return is_valid_rho_approximate(graph, labels, epsilon, 0.0, kind)


def is_valid_rho_approximate(
    graph: DynamicGraph,
    labels: Dict[Edge, EdgeLabel],
    epsilon: float,
    rho: float,
    kind: SimilarityKind = SimilarityKind.JACCARD,
) -> bool:
    """Check Definition 2.2 on every edge of ``graph``.

    Edges with ``σ ≥ (1+ρ)ε`` must be similar, edges with ``σ < (1−ρ)ε``
    must be dissimilar, everything in between is a free ("does not matter")
    choice.  Every edge of the graph must carry some label.
    """
    upper = (1.0 + rho) * epsilon
    lower = (1.0 - rho) * epsilon
    for u, v in graph.edges():
        key = canonical_edge(u, v)
        label = labels.get(key)
        if label is None:
            return False
        sigma = structural_similarity(graph, u, v, kind)
        if sigma >= upper and label is not EdgeLabel.SIMILAR:
            return False
        if sigma < lower and label is not EdgeLabel.DISSIMILAR:
            return False
    return True


def mislabelled_edges(
    exact: Dict[Edge, EdgeLabel], approximate: Dict[Edge, EdgeLabel]
) -> int:
    """Number of edges labelled differently in the two labellings (common keys only)."""
    return sum(
        1
        for edge, label in approximate.items()
        if edge in exact and exact[edge] is not label
    )
