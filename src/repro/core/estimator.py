"""Similarity oracles: the sampling (Δ, δ)-estimator and its exact counterpart.

Section 4 of the paper builds a biased sampling estimator for the Jaccard
similarity of an edge ``(u, v)``: repeat ``L`` times —

1. flip a coin ``z`` with ``Pr[z = 1] = |N[u]| / (|N[u]| + |N[v]|)``;
2. draw ``w`` uniformly from ``N[u]`` if ``z = 1`` else from ``N[v]``;
3. record ``X = 1`` iff ``w ∈ N[u] ∩ N[v]``.

Then ``E[X̄] = 2σ / (1 + σ)`` and ``σ̃ = X̄ / (2 − X̄)`` estimates ``σ`` within
``Δ`` with probability ``1 − δ`` for ``L = (2/Δ²) ln(2/δ)`` (Theorem 4.1).

Section 8.1 reuses the same random variable for cosine similarity:
``(d[u] + d[v]) X̄ / (2 sqrt(d[u] d[v]))`` estimates ``σ_c`` (Theorem 8.3),
after short-circuiting edges with ``d_min < ε² d_max`` as dissimilar
(Lemma 8.2).

Both oracles implement the same tiny protocol (:class:`SimilarityOracle`),
so DynELM can run with exact similarities (ρ = 0 mode, ablations) or with
the sampling estimator (the paper's configuration) interchangeably.
"""

from __future__ import annotations

import math
import random
from typing import Optional, Protocol

from repro.graph.dynamic_graph import DynamicGraph, Vertex
from repro.graph.similarity import SimilarityKind, cosine_similarity, jaccard_similarity
from repro.instrumentation import NULL_COUNTER, OpCounter


class SimilarityOracle(Protocol):
    """Anything that can produce a similarity value for an edge of the graph."""

    def similarity(self, u: Vertex, v: Vertex, num_samples: Optional[int] = None) -> float:
        """Return an (estimate of the) structural similarity of edge ``(u, v)``."""
        ...


class ExactSimilarityOracle:
    """Oracle that computes the exact similarity by scanning neighbourhoods.

    Cost per call is ``Θ(min(d[u], d[v]))`` set probes — the cost the
    sampling estimator is designed to avoid.  Used by the exact baselines,
    by ρ = 0 mode and by the estimator ablation benchmark.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        kind: SimilarityKind = SimilarityKind.JACCARD,
        counter: OpCounter | None = None,
    ) -> None:
        self.graph = graph
        self.kind = SimilarityKind(kind)
        self.counter = counter if counter is not None else NULL_COUNTER

    def similarity(self, u: Vertex, v: Vertex, num_samples: Optional[int] = None) -> float:
        """Return the exact similarity; ``num_samples`` is accepted and ignored."""
        self.counter.add("similarity_eval")
        self.counter.add("neighbour_probe", min(self.graph.degree(u), self.graph.degree(v)) + 1)
        if self.kind is SimilarityKind.JACCARD:
            return jaccard_similarity(self.graph, u, v)
        return cosine_similarity(self.graph, u, v)


class SamplingSimilarityOracle:
    """The (Δ, δ)-similarity estimator of Sections 4 and 8.1.

    Parameters
    ----------
    graph:
        The dynamic graph; random neighbour draws use its O(1)
        ``random_closed_neighbour``.
    kind:
        Jaccard or cosine.
    epsilon:
        Only used by the cosine short-circuit of Lemma 8.2.
    rng:
        Random source (seeded by the caller for reproducibility).
    default_samples:
        Sample size used when the caller does not pass ``num_samples``.
    """

    def __init__(
        self,
        graph: DynamicGraph,
        kind: SimilarityKind = SimilarityKind.JACCARD,
        epsilon: float = 0.2,
        rng: random.Random | None = None,
        default_samples: int = 256,
        counter: OpCounter | None = None,
    ) -> None:
        self.graph = graph
        self.kind = SimilarityKind(kind)
        self.epsilon = epsilon
        self.rng = rng if rng is not None else random.Random(0)
        self.default_samples = default_samples
        self.counter = counter if counter is not None else NULL_COUNTER

    # ------------------------------------------------------------------
    def _mean_indicator(self, u: Vertex, v: Vertex, num_samples: int) -> float:
        """Return ``X̄`` — the empirical mean of the paper's indicator variable."""
        graph = self.graph
        rng = self.rng
        nu = graph.neighbours(u)
        nv = graph.neighbours(v)
        size_u = len(nu) + 1  # |N[u]| includes u itself
        size_v = len(nv) + 1
        threshold = size_u / (size_u + size_v)
        hits = 0
        self.counter.add("sample", num_samples)
        for _ in range(num_samples):
            if rng.random() < threshold:
                w = graph.random_closed_neighbour(u, rng)
            else:
                w = graph.random_closed_neighbour(v, rng)
            # membership in N[x] means: equals x, or is adjacent to x
            in_nu = w == u or w in nu
            in_nv = w == v or w in nv
            if in_nu and in_nv:
                hits += 1
        return hits / num_samples

    def similarity(self, u: Vertex, v: Vertex, num_samples: Optional[int] = None) -> float:
        """Return ``σ̃(u, v)`` (Jaccard) or ``σ̃_c(u, v)`` (cosine)."""
        samples = num_samples if num_samples is not None else self.default_samples
        if samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.counter.add("similarity_eval")
        if self.kind is SimilarityKind.JACCARD:
            mean = self._mean_indicator(u, v, samples)
            return mean / (2.0 - mean) if mean < 2.0 else 1.0
        # cosine: short-circuit of Lemma 8.2, then Eq. (6) — using the closed
        # neighbourhood sizes |N[x]| = d[x] + 1 throughout (see DESIGN.md)
        size_u = self.graph.degree(u) + 1
        size_v = self.graph.degree(v) + 1
        n_min, n_max = min(size_u, size_v), max(size_u, size_v)
        if n_min < self.epsilon * self.epsilon * n_max:
            return 0.0
        mean = self._mean_indicator(u, v, samples)
        return (size_u + size_v) * mean / (2.0 * math.sqrt(size_u * size_v))


def hoeffding_sample_size(delta: float, accuracy: float) -> int:
    """Reference sample size ``L = (2/Δ²) ln(2/δ)`` from Theorem 4.1 (testing aid)."""
    if not 0.0 < delta < 1.0:
        raise ValueError("delta must be in (0, 1)")
    if accuracy <= 0.0:
        raise ValueError("accuracy must be positive")
    return math.ceil(2.0 / (accuracy * accuracy) * math.log(2.0 / delta))
