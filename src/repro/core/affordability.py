"""Update affordability: how many affecting updates an edge label survives.

The ρ-approximate notion gives every freshly labelled edge a buffer: its
exact similarity must move by at least ``ρε`` (Jaccard) before the label can
become invalid, and each affecting update moves the similarity by a bounded
amount.  Lemmas 5.1/5.2 (Jaccard) and 8.4/8.5 (cosine) turn that into a
number of affecting updates ``k`` the edge can absorb, and DynELM tracks the
``(k + 1)``-th affecting update with a DT instance whose threshold ``τ`` is
computed here (Equations (2), (7) and (8)).
"""

from __future__ import annotations

import math

from repro.core.config import StrCluParams
from repro.graph.dynamic_graph import DynamicGraph, Vertex
from repro.graph.similarity import SimilarityKind

#: constants of the cosine-case analysis (Section 8.2/8.3)
COSINE_BALANCED_FACTOR = 0.45
COSINE_BALANCE_CUTOFF = 0.81
COSINE_UNBALANCED_FACTOR = 0.19


def jaccard_affordability(d_max: int, rho: float, epsilon: float) -> int:
    """``k = floor(½ ρ ε · d_max)`` — Lemmas 5.1 and 5.2."""
    return math.floor(0.5 * rho * epsilon * d_max)


def jaccard_threshold(d_max: int, rho: float, epsilon: float) -> int:
    """DT threshold ``τ(u, v) = floor(½ ρ ε · d_max) + 1`` — Equation (2)."""
    return jaccard_affordability(d_max, rho, epsilon) + 1


def cosine_is_balanced(d_min: int, d_max: int, epsilon: float) -> bool:
    """True when ``d_min ≥ 0.81 ε² d_max`` (the DT case of Section 8.3)."""
    return d_min >= COSINE_BALANCE_CUTOFF * epsilon * epsilon * d_max


def cosine_threshold(d_min: int, d_max: int, rho: float, epsilon: float) -> int:
    """DT threshold under cosine similarity — Equations (7) and (8).

    Balanced degrees use ``τ = floor(0.45 ρ ε² d_max) + 1``; unbalanced
    degrees (where the edge is necessarily dissimilar, Lemma 8.2) use the
    degree gap ``τ* = floor(0.19 ε² d_max) + 1``.
    """
    eps_sq = epsilon * epsilon
    if cosine_is_balanced(d_min, d_max, epsilon):
        return math.floor(COSINE_BALANCED_FACTOR * rho * eps_sq * d_max) + 1
    return math.floor(COSINE_UNBALANCED_FACTOR * eps_sq * d_max) + 1


def tracking_threshold(graph: DynamicGraph, u: Vertex, v: Vertex, params: StrCluParams) -> int:
    """DT threshold for edge ``(u, v)`` at its current degrees.

    In exact mode (ρ = 0) every affecting update may invalidate the label, so
    the threshold degenerates to 1 and DynELM re-labels the edge on every
    affecting update — the behaviour used by the correctness property tests.

    Under cosine similarity the closed neighbourhood sizes ``d[x] + 1`` are
    used for the balance test and the thresholds, consistently with the
    similarity definition used in this library (see DESIGN.md).
    """
    du = graph.degree(u)
    dv = graph.degree(v)
    if params.similarity is SimilarityKind.JACCARD:
        return jaccard_threshold(max(du, dv), params.rho, params.epsilon)
    n_min, n_max = min(du, dv) + 1, max(du, dv) + 1
    return cosine_threshold(n_min, n_max, params.rho, params.epsilon)
