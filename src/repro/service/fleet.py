"""Autonomous replica fleets: the watchdog that removes the operator.

PR 5 gave a tenant a warm standby and a *manual* ``repro promote``; this
module closes the loop so a primary loss heals itself.  A
:class:`FleetWatchdog` probes every primary a fleet's standbys replicate
from, counts consecutive failed probes, and drives
:meth:`~repro.service.replication.StandbyEngine.promote` automatically
once a **quorum of probes** has failed and the per-tenant **cool-down**
has elapsed — then re-parents the surviving orphans onto the winner so
the replication tree reconverges.

Safety model, in layers:

* **quorum-of-probes** — one failed probe is noise (GC pause, dropped
  SYN); the watchdog only acts after ``quorum`` *consecutive* failures,
  so the minimum detection window is ``quorum x interval`` and a
  transient partition shorter than that window causes no promotion.
* **cool-down** — after any promotion attempt (successful or aborted) a
  tenant is frozen for ``cooldown`` seconds, so two watchdogs racing the
  same fleet cannot ping-pong promotions, and a flapping primary is not
  re-failed-over in a tight loop.
* **epoch fencing (the hard backstop)** — the watchdog merely *asks*;
  ``promote()`` itself still fences the old primary first and aborts
  against a live one, so even a wrong watchdog decision cannot produce a
  dueling-primaries split brain (PR 5 semantics, unchanged).

The watchdog runs in two shapes sharing one decision loop:

* **in-process** — ``FleetWatchdog(manager=...)`` inside a serving
  process, probing the upstreams of that process's own standby tenants
  and promoting through :class:`~repro.service.manager.EngineManager`;
* **sidecar** — ``repro watchdog --targets host:port ...`` in its own
  process, probing every target over the v1 API, promoting the
  best-positioned standby (max applied position wins) and re-parenting
  the rest via ``POST .../reparent``.

Every observation and decision lands in a :class:`DecisionLog` — a
bounded in-memory ring plus an optional JSONL file — because an
autonomous promoter that cannot explain *why* it flipped a primary is an
outage multiplier, not an HA feature.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.service.obs import register_decision_log

__all__ = [
    "FleetError",
    "WatchdogConfig",
    "DecisionLog",
    "FleetWatchdog",
]


class FleetError(RuntimeError):
    """A fleet-level operation failed (bad config, no promotable standby)."""


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WatchdogConfig:
    """Tuning knobs for one watchdog loop.

    ``interval``
        seconds between probe rounds; the failure-detection window is
        ``quorum * interval`` plus probe timeouts.
    ``quorum``
        consecutive failed probes of the *same* primary required before
        a promotion is considered (>= 1).
    ``cooldown``
        seconds a tenant is frozen after any promotion attempt, measured
        on the monotonic clock.
    ``probe_timeout``
        per-probe socket timeout; a hung primary must not stall the loop.
    ``max_lag``
        optional ceiling on acceptable standby lag (records): a standby
        further behind is never chosen as the promotion candidate while
        a closer one exists.
    """

    interval: float = 0.5
    quorum: int = 3
    cooldown: float = 5.0
    probe_timeout: float = 2.0
    max_lag: Optional[int] = None
    decision_log_path: Optional[Path] = None
    decision_log_limit: int = 1024

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise FleetError("watchdog interval must be positive")
        if self.quorum < 1:
            raise FleetError("watchdog quorum must be >= 1")
        if self.cooldown < 0:
            raise FleetError("watchdog cooldown must be >= 0")
        if self.probe_timeout <= 0:
            raise FleetError("watchdog probe_timeout must be positive")


# ----------------------------------------------------------------------
# decision log
# ----------------------------------------------------------------------
class DecisionLog:
    """Bounded ring of watchdog events, optionally mirrored to JSONL.

    Events are plain dicts with at least ``event`` and ``ts`` (wall
    clock, for the humans reading the post-mortem); the CI fleet smoke
    uploads the JSONL file as an artifact when a round fails.
    """

    def __init__(
        self,
        path: Optional[Path] = None,
        limit: int = 1024,
        echo: Optional[Callable[[str], None]] = None,
    ) -> None:
        self._events: Deque[Dict[str, object]] = deque(maxlen=max(1, limit))  # guarded-by: _lock
        self._path = Path(path) if path is not None else None
        self._echo = echo
        self._lock = threading.Lock()
        # surfaces this log on GET /v1/debug/decisions (weakly held —
        # registration never extends the log's lifetime)
        register_decision_log(self)

    def record(self, event: str, **fields: object) -> Dict[str, object]:
        entry: Dict[str, object] = {"event": event, "ts": time.time()}
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True, default=str)
        with self._lock:
            self._events.append(entry)
            if self._path is not None:
                try:
                    with self._path.open("a", encoding="utf-8") as handle:
                        handle.write(line + "\n")
                except OSError:
                    # the log must never take the watchdog down
                    pass
        if self._echo is not None:
            self._echo(line)
        return entry

    def events(self, event: Optional[str] = None) -> List[Dict[str, object]]:
        with self._lock:
            snapshot = list(self._events)
        if event is None:
            return snapshot
        return [entry for entry in snapshot if entry.get("event") == event]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# ----------------------------------------------------------------------
# internal per-primary probe state
# ----------------------------------------------------------------------
@dataclass
class _PrimaryState:
    failures: int = 0
    last_failover_at: Optional[float] = None  # monotonic


# a standby observed somewhere in the fleet: where it lives, which
# tenant, which primary it ships from, and how far along it is
@dataclass(frozen=True)
class _Standby:
    endpoint: Optional[str]  # None in in-process mode
    tenant: str
    replica_of: str
    applied: int
    lag: int


class FleetWatchdog(threading.Thread):
    """Probe primaries, promote standbys, re-parent orphans — on a loop.

    Exactly one of ``manager`` (in-process mode) or ``targets`` (sidecar
    mode) must be given.  The ``scanner`` / ``prober`` / ``promoter`` /
    ``reparenter`` hooks exist for tests: each defaults to the real v1
    client (sidecar) or :class:`EngineManager` (in-process)
    implementation, and a unit test can replace any of them to script a
    failure scenario without sockets.

    The loop itself is deliberately dumb: scan standbys, group by the
    primary they ship from, probe each primary once, bump or reset its
    consecutive-failure counter, and — quorum reached, cool-down clear —
    promote the best candidate (highest applied position; ties broken by
    lowest lag, then name) and re-parent the other orphans onto it.
    """

    def __init__(
        self,
        manager: Optional[object] = None,
        targets: Optional[List[str]] = None,
        tenants: Optional[List[str]] = None,
        config: Optional[WatchdogConfig] = None,
        decision_log: Optional[DecisionLog] = None,
        scanner: Optional[Callable[[], List[_Standby]]] = None,
        prober: Optional[Callable[[str, str], bool]] = None,
        promoter: Optional[Callable[[_Standby], Dict[str, object]]] = None,
        reparenter: Optional[Callable[[_Standby, _Standby], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__(name="fleet-watchdog", daemon=True)
        if (manager is None) == (targets is None):
            raise FleetError(
                "exactly one of manager= (in-process) or targets= (sidecar) "
                "is required"
            )
        self.config = config or WatchdogConfig()
        self.manager = manager
        self.targets = list(targets or [])
        self.tenants = list(tenants) if tenants else None
        # NOT ``decision_log or ...``: DecisionLog defines __len__, so a
        # freshly created (empty) log is falsy and would be discarded
        self.log = (
            decision_log
            if decision_log is not None
            else DecisionLog(
                path=self.config.decision_log_path,
                limit=self.config.decision_log_limit,
            )
        )
        self._scanner = scanner or (
            self._scan_manager if manager is not None else self._scan_targets
        )
        self._prober = prober or self._probe_primary
        self._promoter = promoter or (
            self._promote_via_manager if manager is not None else self._promote_via_api
        )
        self._reparenter = reparenter or (
            self._reparent_via_manager
            if manager is not None
            else self._reparent_via_api
        )
        self._clock = clock
        self._states: Dict[Tuple[str, str], _PrimaryState] = {}
        self._stop_event = threading.Event()
        self.ticks = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self) -> None:
        self.log.record(
            "watchdog_started",
            mode="in-process" if self.manager is not None else "sidecar",
            targets=self.targets,
            interval=self.config.interval,
            quorum=self.config.quorum,
            cooldown=self.config.cooldown,
        )
        while not self._stop_event.is_set():
            try:
                self.tick()
            except Exception as exc:  # pragma: no cover - last-resort guard
                # a broken tick must not kill the supervisor thread
                self.log.record("tick_error", error=f"{type(exc).__name__}: {exc}")
            self._stop_event.wait(self.config.interval)
        self.log.record("watchdog_stopped")

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)

    def __enter__(self) -> "FleetWatchdog":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # one decision round
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One probe-and-decide round (callable directly from tests)."""
        self.ticks += 1
        standbys = self._scanner()
        if self.tenants is not None:
            wanted = set(self.tenants)
            standbys = [row for row in standbys if row.tenant in wanted]
        # group the fleet by the (tenant, primary) edge being probed: all
        # replicas of one primary share a single failure counter, so the
        # quorum is over *time* (consecutive rounds), not over replicas
        groups: Dict[Tuple[str, str], List[_Standby]] = {}
        for row in standbys:
            groups.setdefault((row.tenant, row.replica_of), []).append(row)
        seen = set(groups)
        for key in list(self._states):
            if key not in seen:
                del self._states[key]
        for (tenant, primary), members in sorted(groups.items()):
            state = self._states.setdefault((tenant, primary), _PrimaryState())
            healthy = self._prober(primary, tenant)
            if healthy:
                if state.failures:
                    self.log.record(
                        "primary_recovered",
                        tenant=tenant,
                        primary=primary,
                        failures=state.failures,
                    )
                state.failures = 0
                continue
            state.failures += 1
            self.log.record(
                "probe_failed",
                tenant=tenant,
                primary=primary,
                failures=state.failures,
                quorum=self.config.quorum,
            )
            if state.failures < self.config.quorum:
                continue
            now = self._clock()
            if (
                state.last_failover_at is not None
                and now - state.last_failover_at < self.config.cooldown
            ):
                self.log.record(
                    "failover_suppressed",
                    tenant=tenant,
                    primary=primary,
                    reason="cooldown",
                    remaining=round(
                        self.config.cooldown - (now - state.last_failover_at), 3
                    ),
                )
                continue
            state.last_failover_at = now
            self._fail_over(tenant, primary, members)
            state.failures = 0

    def _fail_over(
        self, tenant: str, primary: str, members: List[_Standby]
    ) -> None:
        candidates = sorted(
            members, key=lambda row: (-row.applied, row.lag, row.endpoint or "")
        )
        if self.config.max_lag is not None:
            close = [row for row in candidates if row.lag <= self.config.max_lag]
            if close:
                candidates = close + [row for row in candidates if row not in close]
        winner = candidates[0]
        self.log.record(
            "promotion_started",
            tenant=tenant,
            primary=primary,
            winner=winner.endpoint or "in-process",
            applied=winner.applied,
            candidates=len(candidates),
        )
        try:
            document = self._promoter(winner)
        except Exception as exc:
            # promote() aborting against a live primary is the epoch
            # fence doing its job — record it and let the cool-down
            # prevent a tight retry loop
            self.log.record(
                "promotion_aborted",
                tenant=tenant,
                primary=primary,
                winner=winner.endpoint or "in-process",
                error=f"{type(exc).__name__}: {exc}",
            )
            return
        self.log.record(
            "promotion_succeeded",
            tenant=tenant,
            primary=primary,
            winner=winner.endpoint or "in-process",
            epoch=document.get("epoch") if isinstance(document, dict) else None,
        )
        for orphan in candidates[1:]:
            try:
                self._reparenter(orphan, winner)
                self.log.record(
                    "reparented",
                    tenant=tenant,
                    orphan=orphan.endpoint or "in-process",
                    onto=winner.endpoint or "in-process",
                )
            except Exception as exc:
                # the orphan keeps probing its dead upstream; the next
                # quorum round retries the reparent via a fresh failover
                self.log.record(
                    "reparent_failed",
                    tenant=tenant,
                    orphan=orphan.endpoint or "in-process",
                    onto=winner.endpoint or "in-process",
                    error=f"{type(exc).__name__}: {exc}",
                )

    # ------------------------------------------------------------------
    # default hooks: in-process (EngineManager) mode
    # ------------------------------------------------------------------
    def _scan_manager(self) -> List[_Standby]:
        from repro.service.replication import StandbyEngine

        rows: List[_Standby] = []
        for name, engine in self.manager.items():  # type: ignore[union-attr]
            if not isinstance(engine, StandbyEngine) or engine.promoted:
                continue
            status = engine.replication_status()
            rows.append(
                _Standby(
                    endpoint=None,
                    tenant=name,
                    replica_of=engine.replica_of,
                    applied=engine.applied,
                    lag=int(status.get("lag", 0)),
                )
            )
        return rows

    def _promote_via_manager(self, standby: _Standby) -> Dict[str, object]:
        return self.manager.promote(standby.tenant)  # type: ignore[union-attr]

    def _reparent_via_manager(self, orphan: _Standby, winner: _Standby) -> None:
        # in-process mode hosts one standby per tenant: a second orphan of
        # the same tenant lives in another process and is out of reach
        raise FleetError(
            "in-process watchdog cannot re-parent a remote orphan; run a "
            "sidecar watchdog (repro watchdog --targets ...) for fleets"
        )

    # ------------------------------------------------------------------
    # default hooks: sidecar (v1 API) mode
    # ------------------------------------------------------------------
    def _client(self, endpoint: str, tenant: Optional[str] = None):
        from repro.service.client import ServiceClient
        from repro.service.replication import parse_primary_url

        host, port = parse_primary_url(endpoint)
        return ServiceClient(
            host, port, tenant=tenant, timeout=self.config.probe_timeout
        )

    def _scan_targets(self) -> List[_Standby]:
        from repro.service.client import ServiceError

        rows: List[_Standby] = []
        for endpoint in self.targets:
            try:
                with self._client(endpoint) as client:
                    tenants = client.list_tenants()
                    for row in tenants:
                        if "replica_of" not in row or row.get("promoted"):
                            continue
                        name = str(row["tenant"])
                        lag = 0
                        try:
                            with client.for_tenant(name) as tenant_client:
                                topology = tenant_client.topology()
                            lag = int(topology.get("lag", 0))  # type: ignore[arg-type]
                        except (OSError, ServiceError):
                            pass
                        rows.append(
                            _Standby(
                                endpoint=endpoint,
                                tenant=name,
                                replica_of=str(row["replica_of"]),
                                applied=int(row.get("applied", 0)),  # type: ignore[arg-type]
                                lag=lag,
                            )
                        )
            except (OSError, ServiceError) as exc:
                # an unreachable *standby* is not a failover trigger —
                # only its primary's health drives promotion
                self.log.record(
                    "scan_failed",
                    target=endpoint,
                    error=f"{type(exc).__name__}: {exc}",
                )
        return rows

    def _probe_primary(self, primary: str, tenant: str) -> bool:
        """One reachability + tenant-liveness probe of a primary."""
        from repro.service.client import ServiceError

        try:
            with self._client(primary, tenant=tenant) as client:
                client.healthz()
                # the tenant must exist and answer: a half-up primary that
                # lost the tenant (wiped data dir) is as dead as a down one
                client.describe_tenant()
            return True
        except (OSError, ServiceError):
            return False

    def _promote_via_api(self, standby: _Standby) -> Dict[str, object]:
        assert standby.endpoint is not None
        with self._client(standby.endpoint, tenant=standby.tenant) as client:
            return client.promote_tenant()

    def _reparent_via_api(self, orphan: _Standby, winner: _Standby) -> None:
        assert orphan.endpoint is not None and winner.endpoint is not None
        with self._client(orphan.endpoint, tenant=orphan.tenant) as client:
            client.reparent_tenant(winner.endpoint)
