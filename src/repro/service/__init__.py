"""Concurrent clustering service: batched ingest + snapshot-isolated reads.

The maintainers in :mod:`repro.core` faithfully reproduce the paper's
single-stream update model; this package is the layer that turns them into
a *system*.  It decouples the single writer from many readers with the
read-committed-snapshot discipline of OLTP serving stacks, and since v1
hosts many isolated tenants behind one versioned HTTP surface:

* :mod:`repro.service.engine` — :class:`ClusteringEngine`, a single writer
  thread fed by a bounded micro-batching queue (backpressure on overflow),
  running any registered clustering backend
  (:func:`repro.core.api.make_clusterer`), with WAL-before-apply durability
  and snapshot+WAL crash recovery;
* :mod:`repro.service.views` — :class:`ClusteringView`, the immutable
  snapshot published atomically after each batch; all reads are lock-free
  and observe exactly one prefix of the update stream;
* :mod:`repro.service.sharding` — :class:`ShardedEngine`, ``N`` inner
  engines over a stable hash partition of the vertex space: cross-shard
  edges replicated to both endpoint shards (graph-only, so owned
  neighbourhoods stay exact), per-shard scoped labelling, scatter-gather
  merged reads (:class:`ShardedView`) memoised per view tuple, and
  per-shard WAL/snapshot durability;
* :mod:`repro.service.replication` — :class:`StandbyEngine`, a warm
  replica that tails a primary tenant's WAL over HTTP
  (:class:`WalShipper`, one per shard) and replays it continuously into a
  live read-only engine, with snapshot re-seed on WAL gaps and an
  epoch-fenced :meth:`~repro.service.replication.StandbyEngine.promote`;
  ``replica_of`` may itself point at another replica (chained standbys
  with per-hop ack forwarding), and orphans re-parent onto a new primary
  after failover;
* :mod:`repro.service.fleet` — :class:`FleetWatchdog`, the autonomous
  failover supervisor: probes primaries, auto-promotes the
  best-positioned standby behind a quorum-of-probes + cool-down guard,
  re-parents orphans, and journals every decision in a
  :class:`DecisionLog` (``repro watchdog`` runs it as a sidecar);
* :mod:`repro.service.timetravel` — :class:`HistoricalViewStore`,
  time-travel (``as_of``) reads: any retained historical position is
  answered by restoring the newest position-stamped snapshot anchor at or
  below it and replaying retained WAL forward through the same range
  reader the standbys use, with cached replayers, a size-bounded
  materialised-view LRU and retention pins so pruning never races a
  replay;
* :mod:`repro.service.manager` — :class:`EngineManager`, many named
  engines (per-tenant params, backend, queue quota, shard count, replica
  source, data directory) with runtime tenant create/delete/promote;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib-only asyncio JSON-over-HTTP front-end serving the versioned
  ``/v1/tenants/{tenant}/...`` API (legacy unversioned routes map to the
  ``default`` tenant for one release) and its matching client;
* :mod:`repro.service.metrics` — ingest/query latency histograms and
  throughput counters, mergeable across tenants;
* :mod:`repro.service.obs` — end-to-end tracing (``X-Repro-Trace``
  propagation from client through router, shard apply and standby
  replay), Prometheus text-format exposition for ``GET /metrics``, and a
  sampling profiler behind ``/v1/debug/profile``;
* :mod:`repro.service.loadgen` — an open-loop insert/delete/query load
  generator over :mod:`repro.workloads.updates` streams, including
  multi-tenant mixes with disjoint per-tenant vertex spaces.

Exposed on the CLI as ``repro serve`` and ``repro loadgen``.
"""

from repro.service.client import BackpressureError, ServiceClient, ServiceError
from repro.service.engine import (
    ClusteringEngine,
    EngineBackpressure,
    EngineClosed,
    EngineConfig,
    EngineError,
    EngineFenced,
    ReadOnlyEngineError,
)
from repro.service.loadgen import (
    ClientTarget,
    EngineTarget,
    LoadGenConfig,
    LoadGenerator,
    LoadReport,
    MultiTenantLoadGenerator,
)
from repro.service.manager import (
    DEFAULT_TENANT,
    EngineManager,
    NotAStandbyError,
    TenantConfig,
    TenantDeleteError,
    TenantError,
    TenantExistsError,
    TenantLimitError,
    UnknownTenantError,
)
from repro.service.fleet import (
    DecisionLog,
    FleetError,
    FleetWatchdog,
    WatchdogConfig,
)
from repro.service.replication import (
    ReplicationError,
    StandbyEngine,
    WalGapError,
    WalShipper,
)
from repro.service.metrics import LatencyHistogram, ServiceMetrics
from repro.service.obs import (
    SpanContext,
    Tracer,
    configure_tracer,
    decision_events,
    get_tracer,
    new_trace_id,
    parse_prometheus_text,
    register_decision_log,
    render_metrics,
    sample_stacks,
)
from repro.service.server import BackgroundServer, ClusteringServiceServer
from repro.service.sharding import (
    ShardedEngine,
    ShardedView,
    ShardExport,
    make_engine,
    shard_of,
)
from repro.service.timetravel import (
    AsOfUnavailableError,
    HistoricalViewStore,
)
from repro.service.views import ClusteringView

__all__ = [
    "ClusteringEngine",
    "ShardedEngine",
    "ShardedView",
    "ShardExport",
    "StandbyEngine",
    "WalShipper",
    "make_engine",
    "shard_of",
    "EngineConfig",
    "EngineError",
    "EngineBackpressure",
    "EngineClosed",
    "EngineFenced",
    "ReadOnlyEngineError",
    "ReplicationError",
    "WalGapError",
    "FleetWatchdog",
    "WatchdogConfig",
    "DecisionLog",
    "FleetError",
    "HistoricalViewStore",
    "AsOfUnavailableError",
    "EngineManager",
    "NotAStandbyError",
    "TenantConfig",
    "TenantDeleteError",
    "TenantError",
    "TenantExistsError",
    "TenantLimitError",
    "UnknownTenantError",
    "DEFAULT_TENANT",
    "ClusteringView",
    "ClusteringServiceServer",
    "BackgroundServer",
    "ServiceClient",
    "ServiceError",
    "BackpressureError",
    "ServiceMetrics",
    "LatencyHistogram",
    "Tracer",
    "SpanContext",
    "configure_tracer",
    "get_tracer",
    "new_trace_id",
    "render_metrics",
    "parse_prometheus_text",
    "sample_stacks",
    "decision_events",
    "register_decision_log",
    "LoadGenerator",
    "LoadGenConfig",
    "LoadReport",
    "EngineTarget",
    "ClientTarget",
    "MultiTenantLoadGenerator",
]
