"""WAL-shipping replication: warm standby engines with promote-on-failure.

A durable tenant's WAL is an exact, ordered record of every applied update
(PR 1's WAL-before-apply discipline), which makes it a replication stream
for free.  This module turns that observation into an availability story:

* **Pull-based shipping.**  A :class:`WalShipper` (one per tenant, one per
  shard for sharded tenants) runs *next to the standby* and tails the
  primary's WAL segments over the existing stdlib HTTP stack —
  ``GET /v1/tenants/{t}/wal?from=N`` — resuming from the standby's own
  applied position.  The primary serves the requested range straight from
  its retained + active segment files
  (:func:`repro.persistence.updatelog.list_wal_segments`).
* **Positive-ack flow control.**  The shipper only advances ``from`` after
  the fetched records are applied *and locally durable* on the standby
  (they go through the standby engine's normal submit path, so they are
  WAL-logged before they mutate the replica), and every fetch carries an
  ``ack`` of that position; a standby that cannot keep up simply stops
  fetching — the primary is never asked to buffer in memory.
* **Continuous replay into a live engine.**  The :class:`StandbyEngine`
  replays into a real :class:`~repro.service.engine.ClusteringEngine` (or
  a :class:`~repro.service.sharding.ShardedEngine` with per-shard
  shippers), so views are published through the normal incremental-capture
  path and standby reads are snapshot-isolated and cheap.  Client writes
  are rejected with :class:`~repro.service.engine.ReadOnlyEngineError`
  until promotion.
* **Gap and torn-tail handling.**  When the standby lags past the
  primary's retained WAL horizon (``wal_gap``), or a retained segment is
  damaged (torn short of the next segment's base), the standby falls back
  to a **snapshot re-seed**: it discards its local state, downloads the
  primary's last checkpoint per shard and resumes tailing from there.
* **Promotion with epoch fencing.**  ``promote()`` stops the shippers
  (draining the replay queue), fences the old primary at a strictly newer
  epoch — persisted in the replication manifest on *both* sides, per
  shard for sharded tenants — and flips the standby writable.  A fenced
  primary rejects every subsequent write with
  :class:`~repro.service.engine.EngineFenced`, so a half-dead primary
  cannot split-brain the stream; fencing an unreachable (dead) primary is
  best-effort and promotion proceeds.

Consistency claim (locked in by the property suite): at every acked
position ``P``, the standby's clustering is exactly the primary's
clustering after the first ``P`` updates of the (per-shard) stream — the
replay is the same deterministic sequence through the same maintainer.
"""

from __future__ import annotations

import json
import random
import shutil
import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.dynelm import Update
from repro.persistence.snapshot import write_durable
from repro.persistence.updatelog import UpdateLogReader, WalSegment
from repro.service.engine import (
    SNAPSHOT_FILE,
    EngineConfig,
    EngineError,
    ReadOnlyEngineError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.obs import attach_context, get_tracer
from repro.service.sharding import (
    MANIFEST_FILE,
    SHARD_DIR_FORMAT,
    AnyEngine,
    make_engine,
)

#: How many records one WAL fetch returns at most (server-side clamp too).
DEFAULT_FETCH_RECORDS = 512
MAX_FETCH_RECORDS = 4096

#: Default seconds a shipper sleeps when the primary has nothing new.
DEFAULT_POLL_INTERVAL = 0.05

#: Ceiling on the shipper's jittered error-path backoff (seconds).
DEFAULT_MAX_POLL_INTERVAL = 2.0

#: Standby-local manifest: everything needed to rebuild the standby's
#: engine when the primary is unreachable at restart (the failover case).
STANDBY_FILE = "standby.json"
STANDBY_FORMAT = "repro-standby-manifest"


class ReplicationError(EngineError):
    """Base class for replication failures."""


class WalGapError(ReplicationError):
    """The requested WAL position is older than the retained horizon.

    Carries ``min_position``, the earliest position still served; the
    standby answers it with a snapshot re-seed.
    """

    def __init__(self, message: str, min_position: int = 0) -> None:
        super().__init__(message)
        self.min_position = min_position


def parse_primary_url(url: str) -> Tuple[str, int]:
    """``host:port`` or ``http://host:port`` → ``(host, port)``.

    The service stack is plain HTTP (stdlib only), so an ``https://``
    primary is rejected loudly rather than silently downgraded.
    """
    target = url.strip()
    if target.startswith("https://"):
        raise ValueError(f"https primaries are not supported: {url!r}")
    if target.startswith("http://"):
        target = target[len("http://"):]
    target = target.rstrip("/")
    host, sep, port_text = target.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"replica_of must be 'host:port' or 'http://host:port', got {url!r}"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"invalid primary port in {url!r}") from exc
    return host, port


# ----------------------------------------------------------------------
# primary side: serving a WAL range from the on-disk segments
# ----------------------------------------------------------------------
@dataclass
class WalChunk:
    """One served slice of the stream: ``records`` starting at ``start``.

    ``torn`` marks a *damaged* retained segment — it ended (torn tail or
    short) before reaching the next segment's base, so the positions in
    between are unrecoverable from the log and the standby must re-seed.
    A benign torn tail on the **active** segment (the writer is mid-append
    right now) is not reported: those records simply arrive on the next
    poll.
    """

    start: int
    records: List[Update]
    torn: bool


def read_wal_range(
    segments: List[WalSegment],
    start: int,
    max_records: int,
    limit_position: int,
) -> WalChunk:
    """Read up to ``max_records`` updates beginning at stream position ``start``.

    ``limit_position`` caps the range at the engine's applied count — the
    WAL may momentarily hold an entry that is flushed but not yet applied,
    and a replica must only ever see the applied prefix.  Raises
    :class:`WalGapError` when ``start`` predates the earliest retained
    segment.
    """
    if start >= limit_position:
        return WalChunk(start=start, records=[], torn=False)
    segments = sorted(segments, key=lambda segment: (segment.base, segment.active))
    if not segments or start < segments[0].base:
        earliest = segments[0].base if segments else limit_position
        raise WalGapError(
            f"position {start} is below the retained WAL horizon {earliest}",
            min_position=earliest,
        )
    records: List[Update] = []
    position = start
    for index, segment in enumerate(segments):
        if segment.base > position:
            # discontinuity between retained segments: the log cannot
            # produce the positions in between (a pruned or lost segment)
            raise WalGapError(
                f"positions [{position}, {segment.base}) are not retained",
                min_position=segment.base,
            )
        next_base = (
            segments[index + 1].base if index + 1 < len(segments) else None
        )
        if next_base is not None and next_base <= position:
            continue  # already past this segment
        reader = UpdateLogReader(segment.path, tolerate_torn_tail=True)
        # jump over the already-served prefix without parsing it — the
        # replica polls this route continuously, and re-tokenising the
        # whole segment up to `from` on every poll would be O(stream)
        # parse work per poll instead of a line skip
        try:
            for update in reader.iter_from(position - segment.base):
                if segment.active and reader.observed_base != segment.base:
                    # the writer rotated the active log between the listing
                    # and this open: the file on disk now starts at a
                    # different stream position, so the skip arithmetic
                    # above counted lines of the *wrong* file — serving
                    # them would hand the replica records mislabelled with
                    # positions they do not hold.  Stop with whatever the
                    # still-immutable earlier segments yielded; the next
                    # poll lists the rotated layout and resumes exactly
                    return WalChunk(start=start, records=records, torn=False)
                records.append(update)
                position += 1
                if len(records) >= max_records or position >= limit_position:
                    return WalChunk(start=start, records=records, torn=False)
        except FileNotFoundError:
            if segment.active:
                # rotation gap: the active log was renamed away and not yet
                # recreated — transient, the next poll sees the new layout
                return WalChunk(start=start, records=records, torn=False)
            # a retained segment pruned between listing and opening: the
            # positions it held are gone for good — report the structured
            # gap (not a raw 500) so the standby re-seeds immediately
            resume = next_base if next_base is not None else limit_position
            raise WalGapError(
                f"retained segment {segment.path.name} was pruned while "
                f"being served; positions [{position}, {resume}) are "
                "no longer retained",
                min_position=resume,
            )
        if segment.active and reader.observed_base != segment.base:
            # same race, observed after a fetch that yielded nothing new
            return WalChunk(start=start, records=records, torn=False)
        cursor = segment.base + reader.entries_skipped + reader.entries_read
        if next_base is not None and cursor < next_base:
            # a *closed* segment ended short of its successor — the
            # reader's torn-tail reporting makes the two causes
            # distinguishable instead of silently serving a stream with a
            # hole: a torn tail is damage (report it), a cleanly-ended
            # short segment means the positions in between were pruned
            if reader.torn_tail:
                return WalChunk(start=start, records=records, torn=True)
            raise WalGapError(
                f"positions [{cursor}, {next_base}) are not retained",
                min_position=next_base,
            )
    return WalChunk(start=start, records=records, torn=False)


def backoff_delay(
    failures: int, base: float, cap: float, rng: random.Random
) -> float:
    """Jittered exponential backoff for the ``failures``-th consecutive error.

    The delay is drawn uniformly from ``[base, min(cap, base * 2**failures)]``
    — exponential growth with full jitter above the healthy poll interval.
    The jitter is the point: every shard of every standby polls a dead
    primary on its own clock, and identical fixed retry intervals would
    synchronise them into one thundering herd the moment the primary
    returns.  ``failures <= 0`` (the healthy path) is just ``base``.
    """
    if failures <= 0:
        return base
    ceiling = min(cap, base * (2 ** min(failures, 30)))
    if ceiling <= base:
        return base
    return base + rng.random() * (ceiling - base)


# ----------------------------------------------------------------------
# standby side: the shipper
# ----------------------------------------------------------------------
class WalShipper(threading.Thread):
    """Tail one (tenant, shard) WAL of the primary into the standby.

    The loop is deliberately simple: fetch from the standby's current
    position, apply through the standby's guarded apply path, repeat;
    sleep ``poll_interval`` when the primary has nothing new; on a
    reported gap or damaged segment, trigger the standby's re-seed.  All
    shared state is owned by the :class:`StandbyEngine` (the shipper holds
    no positions of its own), which is what makes re-seeds and promotion
    race-free: the standby serialises every state transition behind one
    lock and the shipper re-reads the position after each one.
    """

    def __init__(
        self,
        standby: "StandbyEngine",
        slot: int,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        max_records: int = DEFAULT_FETCH_RECORDS,
        max_poll_interval: float = DEFAULT_MAX_POLL_INTERVAL,
    ) -> None:
        name = f"wal-shipper-{standby.tenant}-{slot}"
        super().__init__(name=name, daemon=True)
        self.standby = standby
        self.slot = slot
        self.poll_interval = poll_interval
        self.max_poll_interval = max(poll_interval, max_poll_interval)
        self.max_records = max_records
        self.last_primary_position = 0
        self.last_error: Optional[str] = None
        self.connected = False
        self.consecutive_failures = 0
        self._rng = random.Random()
        self._stop_event = threading.Event()

    def stop(self) -> None:
        """Ask the shipper to exit after the in-flight fetch/apply."""
        self._stop_event.set()

    @property
    def stopping(self) -> bool:
        return self._stop_event.is_set()

    def _backoff(self) -> None:
        """Sleep the jittered, exponentially growing error-path delay."""
        self.consecutive_failures += 1
        self._stop_event.wait(
            backoff_delay(
                self.consecutive_failures,
                self.poll_interval,
                self.max_poll_interval,
                self._rng,
            )
        )

    def _reseed(self, reason: str) -> None:
        """Trigger a re-seed; a primary dying mid-re-seed is just a retry.

        The standby stages the download before touching local state, so a
        failure here leaves it serving its last replayed position and the
        next loop iteration tries again.
        """
        from repro.service.client import ServiceError

        try:
            self.standby.reseed(reason=reason)
        except (OSError, ServiceError) as exc:
            self.connected = False
            self.last_error = f"re-seed failed ({reason}): {exc}"
            self._backoff()

    def run(self) -> None:
        from repro.service.client import ServiceError

        while not self._stop_event.is_set():
            try:
                position = self.standby.position(self.slot)
                document = self.standby.fetch_wal(
                    self.slot, position, self.max_records
                )
            except ServiceError as exc:
                if exc.code == "wal_gap":
                    self.connected = True
                    self.last_error = None
                    self.consecutive_failures = 0
                    self._reseed(f"wal gap at shard {self.slot}")
                    continue
                self.connected = False
                self.last_error = f"{exc.code}: {exc}"
                self._backoff()
                continue
            except OSError as exc:
                # primary unreachable (crashed, restarting): keep retrying
                # with jittered exponential backoff — the warm standby keeps
                # serving its last replayed state, and the backoff keeps a
                # whole fleet's shippers from stampeding a returning primary
                self.connected = False
                self.last_error = str(exc)
                self._backoff()
                continue
            self.connected = True
            self.last_error = None
            self.consecutive_failures = 0
            self.last_primary_position = int(document.get("applied", 0))
            self.standby.note_epoch(int(document.get("epoch", 0)))
            if document.get("torn"):
                self._reseed(f"damaged primary segment at shard {self.slot}")
                continue
            records = document.get("records", [])
            if not records:
                self._stop_event.wait(self.poll_interval)
                continue
            try:
                updates = _decode_records(records)
                traces = _decode_traces(document.get("traces"))
                self.standby.apply_chunk(
                    self.slot, position, updates, traces=traces
                )
            except Exception as exc:
                # a malformed record, the standby's engine dying, or an
                # apply racing a re-seed (the old engine is killed under
                # it): the shipper must never die silently while the
                # stats keep reporting a healthy, lag-free standby —
                # surface the error and retry from the re-read position
                self.connected = False
                self.last_error = f"apply failed: {exc}"
                self._backoff()


def _decode_records(records: List[object]) -> List[Update]:
    """Wire records ``[[op, u, v], ...]`` → updates (lossless, validated)."""
    from repro.service.server import decode_updates

    return decode_updates({"updates": records})


def _decode_traces(raw: object) -> Optional[Dict[int, str]]:
    """Wire trace map ``{"<position>": trace_id, ...}`` → ``{int: str}``.

    Best-effort: a malformed entry (or an old primary that does not ship
    the field at all) degrades to untraced replay, never to an error.
    """
    if not isinstance(raw, dict) or not raw:
        return None
    traces: Dict[int, str] = {}
    for key, value in raw.items():
        try:
            traces[int(key)] = str(value)
        except (TypeError, ValueError):
            continue
    return traces or None


# ----------------------------------------------------------------------
# the standby engine
# ----------------------------------------------------------------------
class StandbyEngine:
    """A warm replica of one remote tenant, promotable to primary.

    Mirrors the read surface of both engine shapes (``view`` /
    ``group_by`` / ``cluster_of`` / ``stats`` plus the ``applied`` /
    ``queue_depth`` / ``running`` properties), so the tenant manager and
    the HTTP server host it unchanged; the write surface raises
    :class:`~repro.service.engine.ReadOnlyEngineError` until
    :meth:`promote` flips it.

    Construction contacts the primary: the tenant's shape (shard count,
    backend) is discovered from its headline document, and — when the
    local ``data_dir`` holds no previous standby state — the initial state
    is seeded from the primary's last checkpoint per shard.  A restarted
    standby recovers from its *own* snapshot + WAL and resumes tailing
    from its recovered position.
    """

    def __init__(
        self,
        replica_of: str,
        tenant: str,
        data_dir: Union[str, Path],
        config: Optional[EngineConfig] = None,
        connectivity_backend: str = "hdt",
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        client_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        self.replica_of = replica_of
        self.tenant = tenant
        self.data_dir = Path(data_dir)
        self.connectivity_backend = connectivity_backend
        self.poll_interval = poll_interval
        self._lock = threading.RLock()
        self._closed = False  # guarded-by: _lock
        self._promoted = False  # guarded-by: _lock
        self._promotion: Optional[Dict[str, object]] = None  # guarded-by: _lock
        self._seen_epoch = 0  # guarded-by: _lock
        self._reseeds = 0  # guarded-by: _lock
        self._reparents = 0  # guarded-by: _lock
        self._replayed_logical = 0  # guarded-by: _lock
        # last acked position per shard of *our own* downstream replicas
        # (chained standbys shipping from us): forwarded upstream so the
        # root primary's retention floor reflects the slowest leaf
        self._downstream_acks: Dict[int, int] = {}  # guarded-by: _lock

        if client_factory is None:
            client_factory = self._url_client_factory(replica_of)
        self._client_factory = client_factory
        self._client = client_factory()

        try:
            row = self._client.describe_tenant(tenant)
        except OSError as exc:
            # the primary is unreachable — exactly the situation a warm
            # standby must survive: a restart with local state falls back
            # to its own manifest (and can still be promoted); only a
            # *first* seed genuinely needs the primary
            row = self._local_manifest()
            if row is None:
                raise ReplicationError(
                    f"primary {replica_of} is unreachable and {self.data_dir} "
                    f"holds no previous standby state: {exc}"
                ) from exc
        else:
            if not row.get("durable", False):
                raise ReplicationError(
                    f"tenant {tenant!r} on {replica_of} is not durable; only "
                    "durable (WAL-backed) tenants can be replicated"
                )
            # an un-promoted standby upstream is allowed: it serves the
            # wal/snapshot routes from its own local log, so replicas can
            # chain (primary -> A -> B) to fan out a replication tree
        self.num_shards = int(row.get("shards", 1))
        self.backend = str(row.get("backend", "dynstrclu"))
        base_config = config if config is not None else EngineConfig()
        self.config = replace(base_config, shards=self.num_shards)

        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._store_local_manifest()
        if not self._has_local_state():
            self._seed_from_primary()
        self._engine = self._build_engine()
        self.recovered_updates = self._engine.recovered_updates
        self._shippers: List[WalShipper] = []
        self._spawn_shippers()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _url_client_factory(self, url: str) -> Callable[[], object]:
        """The default client factory for a primary URL (used by reparent too)."""
        host, port = parse_primary_url(url)
        tenant = self.tenant

        def factory() -> object:
            from repro.service.client import ServiceClient

            return ServiceClient(host, port, tenant=tenant)

        return factory

    def _spawn_shippers(self) -> None:
        """(Re-)create the shipper threads, one per shard (not started)."""
        self._shippers = [
            WalShipper(self, slot, poll_interval=self.poll_interval)
            for slot in range(self.num_shards)
        ]

    def _local_manifest(self) -> Optional[Dict[str, object]]:
        """The persisted shape of this standby (None when never seeded)."""
        path = self.data_dir / STANDBY_FILE
        if not path.exists():
            return None
        document = json.loads(path.read_text(encoding="utf-8"))
        if document.get("format") != STANDBY_FORMAT:
            return None
        return document

    def _store_local_manifest(self) -> None:
        write_durable(
            self.data_dir / STANDBY_FILE,
            json.dumps(
                {
                    "format": STANDBY_FORMAT,
                    "replica_of": self.replica_of,
                    "tenant": self.tenant,
                    "shards": self.num_shards,
                    "backend": self.backend,
                    "durable": True,
                },
                indent=2,
            ),
        )

    def _has_local_state(self) -> bool:
        if self.num_shards == 1:
            return (self.data_dir / SNAPSHOT_FILE).exists()
        return (self.data_dir / MANIFEST_FILE).exists()

    def _shard_dir(self, slot: int) -> Path:
        if self.num_shards == 1:
            return self.data_dir
        return self.data_dir / SHARD_DIR_FORMAT.format(index=slot)

    def _fetch_seed(self) -> List[Dict[str, object]]:
        """Download the primary's last checkpoint per shard (network only).

        Kept separate from writing so a re-seed can stage the download
        *before* destroying local state — a primary that dies mid-fetch
        must leave the standby serving its last replayed state.
        """
        documents = []
        for slot in range(self.num_shards):
            document = self._client.fetch_snapshot(
                shard=slot if self.num_shards > 1 else None
            )
            self.note_epoch(int(document.get("epoch", 0)))
            documents.append(document)
        return documents

    def _write_seed(self, documents: List[Dict[str, object]]) -> None:
        # atomic (tmp + fsync + rename), like every other persisted file:
        # a crash mid-seed must leave either no snapshot (re-seeded on the
        # next start) or a whole one — a torn snapshot.json would make
        # every subsequent restart fail its recovery parse
        for slot, document in enumerate(documents):
            directory = self._shard_dir(slot)
            directory.mkdir(parents=True, exist_ok=True)
            write_durable(
                directory / SNAPSHOT_FILE,
                json.dumps(document["snapshot"], indent=2),
            )

    def _seed_from_primary(self) -> None:
        """Download and install the primary's last checkpoint per shard."""
        self._write_seed(self._fetch_seed())

    def _build_engine(self) -> AnyEngine:
        # params come from the seeded/recovered snapshots; reconcile is
        # off because a standby replays each shard's WAL verbatim and a
        # reconciliation repair would shift the position arithmetic
        return make_engine(
            params=None,
            config=self.config,
            data_dir=self.data_dir,
            connectivity_backend=self.connectivity_backend,
            backend=self.backend,
            reconcile=False,
        )

    # ------------------------------------------------------------------
    # shipper-facing surface (all state transitions behind the lock)
    # ------------------------------------------------------------------
    def position(self, slot: int) -> int:
        """The standby's applied position of one shard stream (the ack)."""
        with self._lock:
            if self.num_shards == 1:
                return self._engine.applied
            return self._engine.shards[slot].applied

    def fetch_wal(self, slot: int, position: int, max_records: int) -> Dict[str, object]:
        """One primary fetch (kept here so the client is shared/lockable).

        The ``ack`` carried upstream is ``min(our applied position, the
        last ack of our own slowest downstream replica)`` — per-hop ack
        forwarding, so in a chain ``primary -> A -> B`` the root primary's
        retention floor reflects the slowest *leaf*, not just A.
        """
        with self._lock:
            client = self._client
            ack = position
            downstream = self._downstream_acks.get(slot)
            if downstream is not None:
                ack = min(ack, downstream)
        return client.fetch_wal(
            from_position=position,
            shard=slot if self.num_shards > 1 else None,
            max_records=max_records,
            ack=ack,
        )

    def note_downstream_ack(self, slot: int, position: int) -> None:
        """Record a chained replica's acked position for one shard.

        Called by the manager when this (un-promoted) standby serves its
        own WAL route; the recorded position is folded into the next
        upstream fetch's ``ack`` (see :meth:`fetch_wal`).  Last-wins per
        shard, mirroring the primary's own standby-ack slot.
        """
        with self._lock:
            self._downstream_acks[slot] = position

    def downstream_acks(self) -> Dict[int, int]:
        """Last acked position per shard of our downstream replicas."""
        with self._lock:
            return dict(self._downstream_acks)

    def note_epoch(self, epoch: int) -> None:
        """Remember the highest primary epoch observed on the wire."""
        with self._lock:
            if epoch > self._seen_epoch:
                self._seen_epoch = epoch

    @property
    def seen_epoch(self) -> int:
        """Highest upstream epoch observed on the wire (>= own epoch's source)."""
        with self._lock:
            return self._seen_epoch

    def apply_chunk(
        self,
        slot: int,
        start: int,
        updates: List[Update],
        traces: Optional[Dict[int, str]] = None,
    ) -> bool:
        """Apply one fetched chunk; returns false when it raced a re-seed.

        ``traces`` maps absolute stream positions (``start + offset``) to
        the trace ids the primary recorded for those updates; contiguous
        runs of the same trace replay under one ``standby.replay`` span,
        and the replayed updates carry that span's context so the local
        engine's apply spans — and any chained replica downstream — stay
        on the original trace.

        The chunk is only valid if it still begins exactly at the shard's
        current position — a re-seed (or a competing apply) in between
        invalidates it and the shipper simply re-fetches.  Records go
        through the engine's normal submit path (WAL-before-apply on the
        standby too) and the flush makes the advanced position — the next
        ack — cover only locally-durable records.

        The blocking part (submit + flush of up to a full fetch) runs
        *outside* the state lock: ``/stats`` and ``/v1/healthz`` read
        positions through that lock and must not stall behind a replay
        burst.  The races this opens are benign — promotion and close
        stop (join) this shipper before touching the engine, and a
        re-seed triggered by another shard's shipper kills the engine
        mid-apply, which surfaces as an exception the shipper's loop
        reports and retries; the killed engine's state is discarded
        wholesale, so the partial apply costs nothing.
        """
        with self._lock:
            if self._closed or self._promoted:
                return False
            if self.position(slot) != start:
                return False
            engine = self._engine
        target = engine if self.num_shards == 1 else engine.shards[slot]
        tracer = get_tracer()
        replayed = 0
        index = 0
        while index < len(updates):
            trace_id = traces.get(start + index) if traces else None
            end = index + 1
            while end < len(updates) and (
                (traces.get(start + end) if traces else None) == trace_id
            ):
                end += 1
            run = updates[index:end]
            if trace_id is None:
                for update in run:
                    replayed += self._replay_one(engine, target, slot, update)
            else:
                with tracer.span(
                    "standby.replay",
                    trace_id=trace_id,
                    slot=slot,
                    start=start + index,
                    count=len(run),
                ) as context:
                    for update in run:
                        attach_context(update, context)
                        replayed += self._replay_one(
                            engine, target, slot, update
                        )
            index = end
        target.flush()
        with self._lock:
            if self._engine is engine:
                self._replayed_logical += replayed
        return True

    def _replay_one(
        self, engine: AnyEngine, target: object, slot: int, update: Update
    ) -> int:
        """Submit one replayed update; returns its logical-count weight.

        A cross-shard update appears in both endpoint shards' WALs; it is
        counted once, at ``u``'s owner.
        """
        target.submit(update)
        if self.num_shards > 1 and engine._owner(update.u) == slot:
            return 1
        return 0

    def reseed(self, reason: str = "") -> None:
        """Discard local state, re-download the primary's checkpoint, rebuild.

        The fallback path for WAL gaps (standby lagged past the retained
        horizon) and damaged segments.  Serialised behind the lock; the
        published views of the *old* engine keep serving readers until the
        rebuilt engine publishes its first view — readers never observe a
        half-seeded replica.  The download is staged *before* any local
        state is destroyed, so a primary that dies mid-re-seed (raising
        here, caught by the shipper, retried later) costs nothing.
        """
        with self._lock:
            if self._closed or self._promoted:
                return
            staged = self._fetch_seed()  # may raise; local state untouched
            old = self._engine
            old.kill()
            for entry in list(self.data_dir.iterdir()):
                if entry.is_dir():
                    shutil.rmtree(entry)
                else:
                    entry.unlink()
            self._store_local_manifest()
            self._write_seed(staged)
            engine = self._build_engine()
            self._engine = engine
            self._replayed_logical = 0
            self._reseeds += 1
            engine.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "StandbyEngine":
        """Start the inner engine and (unless promoted) the shippers."""
        self._engine.start()
        if not self.promoted:
            for shipper in self._shippers:
                if not shipper.is_alive() and not shipper.stopping:
                    shipper.start()
        return self

    def close(self, checkpoint: bool = True) -> None:
        """Stop the shippers, settle the applied count, close the engine."""
        self._stop_shippers()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self.num_shards > 1:
                # fold the replayed logical count into the engine before
                # its manifest is written (see ShardedEngine.close)
                self._engine.applied = self.applied
                self._replayed_logical = 0
            self._engine.close(checkpoint=checkpoint)
        self._client.close()

    def kill(self) -> None:
        """Crash-stop: shippers down, engine killed without checkpoint."""
        self._stop_shippers()
        with self._lock:
            self._closed = True
            self._engine.kill()
        self._client.close()

    def _stop_shippers(self) -> None:
        for shipper in self._shippers:
            shipper.stop()
        for shipper in self._shippers:
            if shipper.is_alive():
                shipper.join()

    def __enter__(self) -> "StandbyEngine":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # promotion
    # ------------------------------------------------------------------
    @property
    def promoted(self) -> bool:
        with self._lock:
            return self._promoted

    def promote(self) -> Dict[str, object]:
        """Fence the old primary, drain the replay queue, flip writable.

        Idempotent: a second call returns the recorded promotion document.
        Fencing is *ordered before* the flip — the old primary is told to
        reject writes at the new epoch first, so even a promotion that
        crashes half-way leaves the system safe (no writer accepts): the
        demoted primary is already fenced and the standby, still
        read-only, re-runs the promotion when asked again.  An
        *unreachable* primary (the failover case) is presumed dead and
        skipped, and one whose tenant is gone has nothing left to fence —
        but a primary that is alive and **fails the fence** aborts with
        :class:`ReplicationError`: whether it refuses as stale even after
        re-fencing above its learned epoch (another standby already won
        the promotion) or errors unexpectedly (e.g. persisting the fence
        failed server-side), it may still be writable, and flipping this
        standby writable next to it would split the brain.  On abort the
        shippers are restarted and the standby keeps replicating.
        """
        with self._lock:
            if self._closed:
                raise EngineError("standby is closed")
            if self._promoted:
                return dict(self._promotion or {})
        # stop the shippers *outside* the lock: an in-flight apply_chunk
        # holds the lock and must be allowed to finish before join()
        self._stop_shippers()
        from repro.service.client import ServiceError

        with self._lock:
            if self._promoted:
                return dict(self._promotion or {})
            new_epoch = max(self._seen_epoch, self._engine.epoch) + 1
            fenced_primary = False
            for _attempt in range(3):
                try:
                    self._client.fence_tenant(new_epoch)
                    fenced_primary = True
                    break
                except OSError:
                    break  # unreachable: presumed dead, promotion proceeds
                except ServiceError as exc:
                    if exc.code == "unknown_tenant":
                        break  # tenant gone on the primary: nothing to fence
                    if exc.code != "stale_epoch":
                        # the primary is ALIVE but the fence failed for an
                        # unexpected reason (an internal error persisting
                        # it, an unrecognised refusal): it may well still
                        # be writable, and only a *confirmed* fence — or a
                        # dead/absent primary — makes flipping this
                        # standby safe.  Abort and keep replicating.
                        self._spawn_shippers()
                        self.start()
                        raise ReplicationError(
                            f"promotion aborted: primary {self.replica_of} "
                            f"failed the fence with {exc.code!r} ({exc}); "
                            "promoting against a possibly-writable live "
                            "primary would split the brain"
                        )
                    # the primary is ALIVE and ahead of everything this
                    # standby has seen: learn its epoch and fence above it
                    try:
                        current = int(self._client.stats().get("epoch", new_epoch))
                    except (OSError, ServiceError, TypeError, ValueError):
                        current = new_epoch
                    new_epoch = max(new_epoch, current) + 1
            else:
                self._spawn_shippers()
                self.start()
                raise ReplicationError(
                    f"promotion aborted: primary {self.replica_of} is alive "
                    f"and kept refusing the fence as stale (last tried epoch "
                    f"{new_epoch}); promoting anyway would split the brain"
                )
            if self._engine.running:
                self._engine.flush()
            if self.num_shards > 1:
                self._engine.applied = self.applied
                self._replayed_logical = 0
                self._engine._rebuild_router_state()
            self._engine.set_epoch(new_epoch)
            self._promoted = True
            self._promotion = {
                "promoted": True,
                "epoch": new_epoch,
                "applied": self.applied,
                "fenced_primary": fenced_primary,
            }
            return dict(self._promotion)

    # ------------------------------------------------------------------
    # re-parenting (orphan rescue after a promotion elsewhere)
    # ------------------------------------------------------------------
    def reparent(
        self,
        replica_of: str,
        client_factory: Optional[Callable[[], object]] = None,
    ) -> Dict[str, object]:
        """Re-point this standby at a new primary, keeping its local state.

        The post-failover orphan path: when a sibling standby was promoted,
        every other replica of the dead primary re-parents onto the winner
        and resumes shipping from its *own* position — both histories are
        prefixes of the dead primary's stream, so as long as the new
        primary's log covers our position the records are identical and no
        re-seed is needed.  Two cases do force a re-seed, detected with a
        probe fetch against the new primary before shipping resumes:

        * we are **ahead** of the new primary on some shard (we replicated
          records the winner never acked): our extra suffix may diverge
          from what the winner writes next, so our state is discarded and
          re-seeded from the winner's checkpoint;
        * we are **below** the new primary's retained WAL horizon
          (``wal_gap``): the ordinary re-seed case.

        An unreachable or refusing new primary aborts with
        :class:`ReplicationError` and the standby keeps shipping from its
        previous source — the caller (typically the fleet watchdog)
        retries.  Raises for a closed or promoted standby.
        """
        from repro.service.client import ServiceError

        if client_factory is None:
            client_factory = self._url_client_factory(replica_of)
        with self._lock:
            if self._closed:
                raise EngineError("standby is closed")
            if self._promoted:
                raise ReplicationError(
                    f"tenant {self.tenant!r} is promoted; a primary cannot "
                    "be re-parented"
                )
        # stop the shippers outside the lock (an in-flight apply_chunk
        # holds it), exactly like promote()
        self._stop_shippers()
        probe = client_factory()
        needs_reseed = False
        try:
            for slot in range(self.num_shards):
                position = self.position(slot)
                try:
                    document = probe.fetch_wal(
                        from_position=position,
                        shard=slot if self.num_shards > 1 else None,
                        max_records=1,
                        ack=position,
                    )
                except ServiceError as exc:
                    if exc.code == "wal_gap":
                        needs_reseed = True
                        continue
                    raise ReplicationError(
                        f"reparent aborted: new primary {replica_of} refused "
                        f"the probe fetch with {exc.code!r} ({exc})"
                    ) from exc
                except OSError as exc:
                    raise ReplicationError(
                        f"reparent aborted: new primary {replica_of} is "
                        f"unreachable: {exc}"
                    ) from exc
                if int(document.get("applied", 0)) < position:
                    # we replicated past the winner's acked history: the
                    # suffix we hold may diverge from its future writes
                    needs_reseed = True
        except ReplicationError:
            probe.close()
            # keep replicating from the previous source
            self._spawn_shippers()
            self.start()
            raise
        with self._lock:
            if self._closed or self._promoted:
                probe.close()
                raise ReplicationError(
                    f"tenant {self.tenant!r} changed state during reparent"
                )
            old_client = self._client
            self._client_factory = client_factory
            self._client = probe
            self.replica_of = replica_of
            self._reparents += 1
            self._store_local_manifest()
        old_client.close()
        if needs_reseed:
            try:
                self.reseed(reason=f"reparent onto {replica_of}")
            except (OSError, ServiceError) as exc:
                # the winner died between probe and re-seed: leave the
                # shippers stopped (resuming could replay a diverged
                # suffix) and report — the watchdog retries the reparent
                raise ReplicationError(
                    f"reparent onto {replica_of} needs a re-seed that "
                    f"failed: {exc}; shipping is paused until a retry"
                ) from exc
        self._spawn_shippers()
        self.start()
        return {
            "tenant": self.tenant,
            "replica_of": replica_of,
            "reseeded": needs_reseed,
        }

    # ------------------------------------------------------------------
    # engine surface (reads delegate; writes are gated on promotion)
    # ------------------------------------------------------------------
    @property
    def engine(self) -> AnyEngine:
        """The inner engine (the promoted survivor keeps using it)."""
        return self._engine

    @property
    def params(self):
        return self._engine.params

    @property
    def metrics(self) -> ServiceMetrics:
        return self._engine.metrics

    @property
    def applied(self) -> int:
        if self.num_shards == 1:
            return self._engine.applied
        with self._lock:
            return self._engine.applied + self._replayed_logical

    @property
    def queue_depth(self) -> int:
        return self._engine.queue_depth

    @property
    def total_queue_capacity(self) -> int:
        return self._engine.total_queue_capacity

    @property
    def running(self) -> bool:
        return self._engine.running

    @property
    def epoch(self) -> int:
        return self._engine.epoch

    @property
    def fenced(self) -> bool:
        return self._engine.fenced

    def fence(self, epoch: int) -> None:
        """Fence the (possibly promoted) standby — chained failover safety."""
        self._engine.fence(epoch)

    @property
    def view_version(self) -> int:
        return self._engine.view_version

    def view(self):
        return self._engine.view()

    def group_by(self, vertices):
        return self._engine.group_by(vertices)

    def cluster_of(self, v):
        return self._engine.cluster_of(v)

    def submit(self, update: Update, block: bool = True, timeout: Optional[float] = None) -> None:
        if not self.promoted:
            raise ReadOnlyEngineError(
                f"tenant {self.tenant!r} is a standby of {self.replica_of}; "
                "promote it before writing"
            )
        self._engine.submit(update, block=block, timeout=timeout)

    def submit_many(self, updates, block: bool = True, timeout: Optional[float] = None) -> int:
        if not self.promoted:
            raise ReadOnlyEngineError(
                f"tenant {self.tenant!r} is a standby of {self.replica_of}; "
                "promote it before writing"
            )
        return self._engine.submit_many(updates, block=block, timeout=timeout)

    def backpressure_signal(self):
        return self._engine.backpressure_signal()

    def flush(self, timeout: Optional[float] = None) -> bool:
        return self._engine.flush(timeout=timeout)

    def wal_horizon(self) -> Dict[str, object]:
        """The inner engine's replayable horizon (standby history is local)."""
        return self._engine.wal_horizon()

    def stats(self) -> Dict[str, object]:
        document = self._engine.stats()
        document["applied"] = self.applied
        document["replication"] = self.replication_status()
        return document

    def replication_status(self) -> Dict[str, object]:
        """The ``replication`` stats block of this tenant."""
        shards: List[Dict[str, object]] = []
        total_lag = 0
        oldest_applied_at: Optional[float] = None
        for shipper in self._shippers:
            position = self.position(shipper.slot)
            primary_position = max(shipper.last_primary_position, position)
            lag = primary_position - position
            total_lag += lag
            row: Dict[str, object] = {
                "shard": shipper.slot,
                "position": position,
                "primary_position": primary_position,
                "lag": lag,
                "connected": shipper.connected,
            }
            # wall-clock staleness: the publish timestamp of the shard's
            # current view (views.py is the one sanctioned wall-clock
            # source), so watchdogs and routing clients don't have to
            # infer freshness from position deltas alone
            with self._lock:
                engine = self._engine
            target = engine if self.num_shards == 1 else engine.shards[shipper.slot]
            applied_at = target.view().published_at
            row["last_applied_at"] = applied_at
            if oldest_applied_at is None or applied_at < oldest_applied_at:
                oldest_applied_at = applied_at
            if shipper.last_error is not None:
                row["last_error"] = shipper.last_error
            shards.append(row)
        with self._lock:
            promoted = self._promoted
            seen_epoch = self._seen_epoch
            reseeds = self._reseeds
            reparents = self._reparents
        status: Dict[str, object] = {
            "role": "primary" if promoted else "standby",
            "promoted": promoted,
            "replica_of": self.replica_of,
            "epoch": self._engine.epoch,
            "primary_epoch": seen_epoch,
            "lag": total_lag,
            "reseeds": reseeds,
            "reparents": reparents,
            "shards": shards,
        }
        if oldest_applied_at is not None:
            status["last_applied_at"] = oldest_applied_at
        downstream = self.downstream_acks()
        if downstream:
            status["downstream_acks"] = {
                str(slot): position for slot, position in sorted(downstream.items())
            }
        return status
