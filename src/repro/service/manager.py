"""Multi-tenant engine hosting: many named engines in one server process.

:class:`EngineManager` is the tenancy layer between the HTTP front-end and
the single-tenant :class:`~repro.service.engine.ClusteringEngine`:

* every tenant owns one engine — its own maintainer, ingest queue, WAL
  directory and metrics — so tenants are isolated by construction: no
  update of tenant A can reach tenant B's graph, and a tenant saturating
  its queue sheds only its own load (the per-tenant ``queue_capacity`` is
  the tenant's ingest quota);
* tenants are created/deleted at runtime under a lock, engines start
  lazily on first use and are closed (final checkpoint included) when the
  tenant is deleted or the manager shuts down;
* with a ``data_root``, each durable tenant persists under
  ``data_root/<tenant>/`` and recovers independently on restart.

The ``default`` tenant is created eagerly (unless disabled) so the legacy
unversioned HTTP routes — kept for one release — have somewhere to land.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.api import SNAPSHOT_CAPABLE_BACKENDS, available_backends
from repro.core.config import StrCluParams
from repro.service.engine import ClusteringEngine, EngineConfig
from repro.service.metrics import ServiceMetrics
from repro.service.obs import get_tracer
from repro.service.replication import StandbyEngine
from repro.service.sharding import AnyEngine, ShardedEngine, make_engine
from repro.service.timetravel import DEFAULT_HISTORY_CACHE_SIZE, HistoricalViewStore

#: Tenant names are path segments: one release of URL-safety by construction.
_TENANT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: The tenant serving the legacy unversioned routes.
DEFAULT_TENANT = "default"


class _Reserved:
    """Placeholder registered while a tenant's engine is being built."""

    __slots__ = ()


_RESERVED = _Reserved()


class TenantError(RuntimeError):
    """Base class for tenancy failures."""


class UnknownTenantError(TenantError):
    """The named tenant does not exist (HTTP 404)."""


class TenantExistsError(TenantError):
    """A tenant with that name already exists (HTTP 409)."""


class TenantLimitError(TenantError):
    """Creating the tenant would exceed the manager's quota (HTTP 409)."""


class NotAStandbyError(TenantError):
    """Promotion was requested for a tenant that is not a standby (HTTP 409)."""


class TenantDeleteError(TenantError):
    """Deleting the tenant failed because its engine refused to close.

    The tenant stays fully registered (no half-deleted state): its engine,
    config and ownership records are all still in place and reads keep
    working against the published views.  A plain engine whose final
    checkpoint failed reopens its writer, so its ingestion continues too;
    a sharded engine whose close partially succeeded rejects new submits
    with ``EngineClosed`` (loudly — never a silent black hole) until a
    later :meth:`EngineManager.delete` retry completes the close (HTTP
    500, retryable).
    """


@dataclass(frozen=True)
class TenantConfig:
    """Everything that shapes one tenant's engine.

    Attributes
    ----------
    name:
        Tenant identifier; must match ``[A-Za-z0-9][A-Za-z0-9._-]{0,63}``
        (it becomes a URL path segment and a data sub-directory).
    params:
        Clustering parameters for the tenant's maintainer.
    backend:
        Backend-registry name (see :func:`repro.core.api.available_backends`).
    engine:
        Ingest tuning — ``queue_capacity`` doubles as the tenant's quota,
        and ``engine.shards`` selects the tenant's engine shape (1: a
        single :class:`ClusteringEngine`; N > 1: a
        :class:`~repro.service.sharding.ShardedEngine` over N hash
        partitions, exposed via the :attr:`shards` convenience property).
    durable:
        When true (and the manager has a ``data_root``) the tenant gets a
        WAL + snapshot directory; requires a snapshot-capable backend.
    connectivity_backend:
        Connectivity structure for backends that take one.
    replica_of:
        When set (``host:port`` of the primary server), the tenant is a
        warm **standby** replica of the same-named tenant there: its
        shape, backend and parameters are discovered from the primary, a
        WAL shipper replays the primary's stream continuously, and writes
        are rejected until the tenant is promoted.  Requires the manager
        to have a ``data_root`` (the replica keeps its own durable state).
    """

    name: str
    params: StrCluParams
    backend: str = "dynstrclu"
    engine: EngineConfig = field(default_factory=EngineConfig)
    durable: bool = True
    connectivity_backend: str = "hdt"
    replica_of: Optional[str] = None

    def __post_init__(self) -> None:
        validate_tenant_name(self.name)
        key = self.backend.strip().lower()
        if key not in available_backends():
            raise ValueError(
                f"unknown clustering backend {self.backend!r}; "
                f"registered: {', '.join(available_backends())}"
            )
        object.__setattr__(self, "backend", key)

    @property
    def shards(self) -> int:
        """Number of hash partitions of this tenant's engine (1: unsharded)."""
        return self.engine.shards


def validate_tenant_name(name: str) -> str:
    """Validate a tenant identifier; returns it unchanged."""
    if not isinstance(name, str) or not _TENANT_NAME.match(name):
        raise ValueError(
            f"invalid tenant name {name!r}: expected 1-64 characters from "
            "[A-Za-z0-9._-], starting with a letter or digit"
        )
    return name


class EngineManager:
    """Host many named clustering engines behind one service surface.

    Parameters
    ----------
    default_params:
        Parameters used for tenants created without their own (including
        the eagerly created ``default`` tenant).
    default_engine_config:
        Ingest tuning inherited by tenants that do not override it.
    default_backend:
        Backend-registry name inherited by tenants that do not override it.
    data_root:
        When set, durable tenants persist under ``data_root/<tenant>/``.
    max_tenants:
        Hard cap on concurrently hosted tenants (the server-wide quota).
    create_default:
        Create the ``default`` tenant eagerly so the legacy unversioned
        routes resolve.
    history_cache_size:
        Per-tenant bound on materialised historical (``as_of``) views —
        the LRU capacity of each tenant's
        :class:`~repro.service.timetravel.HistoricalViewStore`.
    """

    def __init__(
        self,
        default_params: StrCluParams,
        default_engine_config: Optional[EngineConfig] = None,
        default_backend: str = "dynstrclu",
        data_root: Optional[Union[str, Path]] = None,
        max_tenants: int = 64,
        create_default: bool = True,
        history_cache_size: int = DEFAULT_HISTORY_CACHE_SIZE,
    ) -> None:
        if max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        if history_cache_size < 1:
            raise ValueError("history_cache_size must be >= 1")
        self.default_params = default_params
        self.default_engine_config = (
            default_engine_config if default_engine_config is not None else EngineConfig()
        )
        self.default_backend = default_backend.strip().lower()
        self.data_root = Path(data_root) if data_root is not None else None
        self.max_tenants = max_tenants
        self.history_cache_size = history_cache_size
        self._lock = threading.Lock()
        # a slot holds either a live engine or the _RESERVED placeholder
        self._engines: Dict[str, Union[ClusteringEngine, _Reserved]] = {}  # guarded-by: _lock
        self._configs: Dict[str, TenantConfig] = {}  # guarded-by: _lock
        self._owned: Dict[str, bool] = {}  # guarded-by: _lock
        # per-tenant standby acks observed on the WAL-serving route:
        # {tenant: {shard: acked position}} — lag telemetry for primaries
        self._acks: Dict[str, Dict[int, int]] = {}  # guarded-by: _lock
        # per-tenant historical (as_of) view stores, created lazily
        self._stores: Dict[str, HistoricalViewStore] = {}  # guarded-by: _lock
        self._closed = False
        self._close_completed = False
        if create_default:
            self.create(DEFAULT_TENANT)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def adopt(cls, engine: AnyEngine, name: str = DEFAULT_TENANT) -> "EngineManager":
        """Wrap a caller-owned engine as the sole (default) tenant.

        The single-tenant compatibility path: ``BackgroundServer(engine)``
        and tests that construct an engine directly still work against the
        multi-tenant server.  Both engine shapes are adoptable — ``repro
        serve --shards N`` adopts a :class:`ShardedEngine` this way.  The
        adopted engine's lifecycle stays with the caller — deleting its
        tenant (or closing the manager) deregisters it without closing it.

        The adopted engine's shard count is *not* inherited as the default
        for dynamically created tenants: `repro serve --shards 4` shards
        the default tenant, while `POST /v1/tenants` keeps its documented
        default of a single engine unless the payload asks for shards.
        """
        manager = cls(
            default_params=engine.params,
            default_engine_config=replace(engine.config, shards=1),
            default_backend=engine.backend,
            create_default=False,
        )
        config = TenantConfig(
            name=name,
            params=engine.params,
            backend=engine.backend,
            engine=engine.config,
            durable=engine.data_dir is not None,
        )
        with manager._lock:
            manager._engines[name] = engine
            manager._configs[name] = config
            manager._owned[name] = False
        return manager

    # ------------------------------------------------------------------
    # tenant lifecycle
    # ------------------------------------------------------------------
    def create(
        self,
        name: str,
        params: Optional[StrCluParams] = None,
        backend: Optional[str] = None,
        engine_config: Optional[EngineConfig] = None,
        queue_capacity: Optional[int] = None,
        durable: bool = True,
        shards: Optional[int] = None,
        replica_of: Optional[str] = None,
    ) -> AnyEngine:
        """Create (and start) a tenant's engine; returns it.

        ``queue_capacity`` is the per-tenant ingest quota shortcut: it
        overrides just that field of the inherited engine config.
        ``shards`` likewise overrides the config's shard count — ``1``
        builds today's single engine, ``N > 1`` a hash-partitioned
        :class:`~repro.service.sharding.ShardedEngine` whose shards
        persist under ``data_root/<tenant>/shard-<i>/``.  ``replica_of``
        (``host:port`` of a primary server) instead builds a warm
        :class:`~repro.service.replication.StandbyEngine` of the
        same-named tenant there — shape and parameters are discovered
        from the primary, so ``params`` / ``backend`` / ``shards`` must
        not be combined with it.

        Raises :class:`TenantExistsError` / :class:`TenantLimitError`, or
        ``ValueError`` for a bad name, backend, shard count or parameter
        bundle.
        """
        with get_tracer().span(
            "manager.create_tenant",
            tenant=name,
            standby=replica_of is not None,
        ):
            return self._create(
                name,
                params=params,
                backend=backend,
                engine_config=engine_config,
                queue_capacity=queue_capacity,
                durable=durable,
                shards=shards,
                replica_of=replica_of,
            )

    def _create(
        self,
        name: str,
        params: Optional[StrCluParams] = None,
        backend: Optional[str] = None,
        engine_config: Optional[EngineConfig] = None,
        queue_capacity: Optional[int] = None,
        durable: bool = True,
        shards: Optional[int] = None,
        replica_of: Optional[str] = None,
    ) -> AnyEngine:
        config = engine_config if engine_config is not None else self.default_engine_config
        if queue_capacity is not None:
            config = replace(config, queue_capacity=queue_capacity)
        if shards is not None:
            config = replace(config, shards=shards)
        if replica_of is not None and (
            params is not None or backend is not None or shards is not None
        ):
            raise ValueError(
                "a standby tenant's params/backend/shards are discovered "
                "from its primary; do not combine them with replica_of"
            )
        tenant = TenantConfig(
            name=name,
            params=params if params is not None else self.default_params,
            backend=backend if backend is not None else self.default_backend,
            engine=config,
            durable=durable,
            replica_of=replica_of,
        )
        data_dir: Optional[Path] = None
        if tenant.replica_of is not None:
            if self.data_root is None:
                raise ValueError(
                    "standby tenants (replica_of) need a data_root: the "
                    "replica keeps its own durable snapshot + WAL"
                )
            data_dir = self.data_root / tenant.name
        elif (
            self.data_root is not None
            and tenant.durable
            and tenant.backend in SNAPSHOT_CAPABLE_BACKENDS
        ):
            data_dir = self.data_root / tenant.name
        # reserve the name under the lock, but build (and possibly crash-
        # recover) the engine outside it: recovery of a large snapshot+WAL
        # must not stall every other tenant's request path
        with self._lock:
            if self._closed:
                raise TenantError("engine manager is closed")
            if tenant.name in self._engines:
                raise TenantExistsError(f"tenant {tenant.name!r} already exists")
            if len(self._engines) >= self.max_tenants:
                raise TenantLimitError(
                    f"tenant limit reached ({self.max_tenants}); delete one first"
                )
            self._engines[tenant.name] = _RESERVED
            self._configs[tenant.name] = tenant
            self._owned[tenant.name] = True
        try:
            if tenant.replica_of is not None:
                engine: AnyEngine = StandbyEngine(
                    tenant.replica_of,
                    tenant.name,
                    data_dir=data_dir,
                    config=tenant.engine,
                    connectivity_backend=tenant.connectivity_backend,
                ).start()
                # record the discovered shape (the primary's, not ours)
                tenant = replace(
                    tenant, backend=engine.backend, engine=engine.config
                )
            else:
                engine = make_engine(
                    tenant.params,
                    config=tenant.engine,
                    data_dir=data_dir,
                    connectivity_backend=tenant.connectivity_backend,
                    backend=tenant.backend,
                ).start()
        except BaseException:
            with self._lock:
                self._engines.pop(tenant.name, None)
                self._configs.pop(tenant.name, None)
                self._owned.pop(tenant.name, None)
            raise
        with self._lock:
            if self._closed or self._engines.get(tenant.name) is not _RESERVED:
                # the manager shut down (or the reservation was deleted)
                # while we were building: don't leak a running engine
                engine_to_discard = engine
            else:
                self._engines[tenant.name] = engine
                self._configs[tenant.name] = tenant  # incl. discovered shape
                engine_to_discard = None
        if engine_to_discard is not None:
            engine_to_discard.close(checkpoint=False)
            raise TenantError(
                f"tenant {tenant.name!r} was removed while its engine was starting"
            )
        return engine

    def get(self, name: str) -> AnyEngine:
        """The named tenant's engine; raises :class:`UnknownTenantError`.

        A tenant whose engine is still being built (mid-``create``) is
        reported as unknown — it becomes visible atomically once ready.
        """
        with self._lock:
            engine = self._engines.get(name)
        if engine is None or isinstance(engine, _Reserved):
            raise UnknownTenantError(f"no tenant named {name!r}")
        return engine

    def config_of(self, name: str) -> TenantConfig:
        """The named tenant's configuration; raises :class:`UnknownTenantError`."""
        with self._lock:
            config = self._configs.get(name)
        if config is None:
            raise UnknownTenantError(f"no tenant named {name!r}")
        return config

    def timetravel(self, name: str) -> HistoricalViewStore:
        """The named tenant's historical (``as_of``) view store.

        Created lazily on first use with the manager-wide
        ``history_cache_size`` bound, then reused — the store holds the
        tenant's cached replayers and materialised-view LRU.  Raises
        :class:`UnknownTenantError` for unknown tenants.
        """
        engine = self.get(name)  # raises UnknownTenantError first
        with self._lock:
            store = self._stores.get(name)
            if store is None or store.engine is not engine:
                # no store yet, or the tenant was deleted and re-created
                # under the same name: bind a fresh store to the live engine
                store = HistoricalViewStore(engine, capacity=self.history_cache_size)
                self._stores[name] = store
        return store

    def delete(self, name: str, checkpoint: bool = True) -> None:
        """Delete a tenant: close its engine, *then* deregister it.

        The engine is closed with a final checkpoint (unless disabled), so
        a durable tenant can be re-created later from its ``data_root``
        directory.  Adopted engines are deregistered but left running —
        their lifecycle belongs to the caller.

        Close-before-deregister makes deletion fail *cleanly*: if the
        engine (or, for a sharded tenant, any inner shard engine) refuses
        to close, :class:`TenantDeleteError` is raised and the tenant stays
        fully registered — never a half-deleted ghost whose engine still
        runs.  A retry re-attempts the close (closing twice is a no-op).
        """
        with get_tracer().span("manager.delete_tenant", tenant=name):
            self._delete(name, checkpoint)

    def _delete(self, name: str, checkpoint: bool) -> None:
        with self._lock:
            engine = self._engines.get(name)
            if engine is None:
                raise UnknownTenantError(f"no tenant named {name!r}")
            owned = self._owned.get(name, False)
            if isinstance(engine, _Reserved):
                # mid-create: deregister the reservation; the builder
                # notices it vanished and discards its engine
                self._engines.pop(name, None)
                self._configs.pop(name, None)
                self._owned.pop(name, None)
                return
        if owned:
            try:
                engine.close(checkpoint=checkpoint)
            except BaseException as exc:
                raise TenantDeleteError(
                    f"tenant {name!r} was not deleted: its engine failed to "
                    f"close ({exc}); the tenant remains registered — retry "
                    "the delete"
                ) from exc
        store: Optional[HistoricalViewStore] = None
        with self._lock:
            # deregister only the engine we closed (a concurrent
            # delete+recreate must not have its fresh tenant removed)
            if self._engines.get(name) is engine:
                self._engines.pop(name, None)
                self._configs.pop(name, None)
                self._owned.pop(name, None)
                self._acks.pop(name, None)
                store = self._stores.pop(name, None)
        if store is not None:
            store.clear()

    def promote(self, name: str) -> Dict[str, object]:
        """Promote a standby tenant to primary; returns the promotion document.

        Fences the old primary (best effort), drains the standby's replay
        queue and flips it writable — see
        :meth:`repro.service.replication.StandbyEngine.promote`.
        Idempotent; raises :class:`NotAStandbyError` for regular tenants.
        """
        engine = self.get(name)
        if not isinstance(engine, StandbyEngine):
            raise NotAStandbyError(
                f"tenant {name!r} is not a standby; only replica_of tenants "
                "can be promoted"
            )
        with get_tracer().span("manager.promote_tenant", tenant=name):
            return engine.promote()

    def reparent(self, name: str, replica_of: str) -> Dict[str, object]:
        """Re-point a standby tenant at a new upstream primary.

        The orphan-rescue path after a promotion elsewhere in the fleet —
        see :meth:`repro.service.replication.StandbyEngine.reparent` for
        the divergence-vs-reseed rules.  Raises
        :class:`NotAStandbyError` for regular or already-promoted tenants.
        """
        engine = self.get(name)
        if not isinstance(engine, StandbyEngine) or engine.promoted:
            raise NotAStandbyError(
                f"tenant {name!r} is not an un-promoted standby; only "
                "replicating tenants can be re-parented"
            )
        with get_tracer().span(
            "manager.reparent_tenant", tenant=name, replica_of=replica_of
        ):
            return engine.reparent(replica_of)

    def topology(self, name: str) -> Dict[str, object]:
        """One tenant's replication-topology document.

        The ``GET /v1/tenants/{t}/topology`` body: the tenant's role, its
        upstream (for standbys), per-shard applied positions with
        wall-clock publish staleness, and the acked positions of any
        downstream replicas shipping from this node — enough for a
        watchdog or routing client to draw the whole tree by walking
        ``replica_of`` edges.
        """
        engine = self.get(name)
        document: Dict[str, object] = {
            "tenant": name,
            "shards": getattr(engine, "num_shards", 1),
            "applied": engine.applied,
            "epoch": engine.epoch,
        }
        if isinstance(engine, StandbyEngine):
            document["role"] = "primary" if engine.promoted else "standby"
            document["promoted"] = engine.promoted
            document["fenced"] = engine.fenced
            document["replica_of"] = engine.replica_of
            status = engine.replication_status()
            document["lag"] = status.get("lag", 0)
            document["reseeds"] = status.get("reseeds", 0)
            document["reparents"] = status.get("reparents", 0)
            if "last_applied_at" in status:
                document["last_applied_at"] = status["last_applied_at"]
            document["shard_positions"] = [
                {
                    "shard": row["shard"],
                    "position": row["position"],
                    "last_applied_at": row.get("last_applied_at"),
                }
                for row in status.get("shards", [])
            ]
        else:
            document["role"] = "primary"
            # a fenced primary is a zombie: routing clients must prefer
            # the promoted standby even when the epochs tie
            document["fenced"] = getattr(engine, "fenced", False)
            # per-shard applied positions without forcing a scatter-gather
            # merge: resolve the inner engines directly
            inner = getattr(engine, "shards", None)
            targets = inner if isinstance(inner, list) else [engine]
            document["shard_positions"] = [
                {
                    "shard": slot,
                    "position": target.applied,
                    "last_applied_at": target.view().published_at,
                }
                for slot, target in enumerate(targets)
            ]
        acks = self.acks(name)
        if acks:
            document["downstream_acks"] = {
                str(slot): position for slot, position in sorted(acks.items())
            }
        return document

    def record_ack(self, name: str, shard: int, position: int) -> None:
        """Record a standby's acked position (WAL-serving telemetry).

        Besides the lag-telemetry map, the ack is forwarded to the shard's
        engine as its standby-ack retention floor
        (:meth:`~repro.service.engine.ClusteringEngine.note_standby_ack`),
        so WAL pruning never outruns the slowest standby.  When this
        tenant is itself an un-promoted standby serving a chained replica,
        the ack is also recorded on the :class:`StandbyEngine` so its own
        upstream fetches forward ``min(local position, downstream ack)`` —
        per-hop ack forwarding up the replication tree.
        """
        engine: Optional[AnyEngine] = None
        with self._lock:
            if name in self._engines:
                self._acks.setdefault(name, {})[shard] = position
                candidate = self._engines[name]
                if not isinstance(candidate, _Reserved):
                    engine = candidate
        if engine is None:
            return
        # resolve the acked shard's inner engine; forwarding happens
        # outside the lock (note_standby_ack takes the engine's own lock)
        if isinstance(engine, StandbyEngine):
            if not engine.promoted:
                engine.note_downstream_ack(shard, position)
            engine = engine.engine
        target: Optional[ClusteringEngine]
        if isinstance(engine, ShardedEngine):
            target = engine.shards[shard] if 0 <= shard < engine.num_shards else None
        else:
            target = engine if shard == 0 else None
        if target is not None:
            target.note_standby_ack(position)

    def acks(self, name: str) -> Dict[int, int]:
        """Last acked position per shard for one (primary) tenant."""
        with self._lock:
            return dict(self._acks.get(name, {}))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._engines

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)

    def names(self) -> List[str]:
        """Sorted names of the ready tenants (mid-create ones excluded)."""
        with self._lock:
            return sorted(
                name
                for name, engine in self._engines.items()
                if not isinstance(engine, _Reserved)
            )

    def engines(self) -> List[AnyEngine]:
        """Snapshot list of the hosted engines (safe to use without the lock)."""
        with self._lock:
            return [
                engine
                for engine in self._engines.values()
                if not isinstance(engine, _Reserved)
            ]

    def items(self) -> List[tuple]:
        """Snapshot ``(name, engine)`` pairs of the ready tenants, sorted."""
        with self._lock:
            pairs = [
                (name, engine)
                for name, engine in self._engines.items()
                if not isinstance(engine, _Reserved)
            ]
        return sorted(pairs, key=lambda pair: pair[0])

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self, name: str) -> Dict[str, object]:
        """One tenant's headline document (the ``GET /v1/tenants`` row)."""
        engine = self.get(name)
        config = self.config_of(name)
        row: Dict[str, object] = {
            "tenant": name,
            "backend": config.backend,
            "running": engine.running,
            "applied": engine.applied,
            # O(1) on both engine shapes: the listing and describe must
            # never force a sharded tenant's scatter-gather merge
            "view_version": engine.view_version,
            "queue_depth": engine.queue_depth,
            "queue_capacity": engine.total_queue_capacity,
            "durable": engine.data_dir is not None,
            "shards": getattr(engine, "num_shards", 1),
        }
        if isinstance(engine, StandbyEngine):
            row["replica_of"] = engine.replica_of
            row["promoted"] = engine.promoted
        return row

    def list_tenants(self) -> List[Dict[str, object]]:
        """Headline documents for every tenant, sorted by name."""
        return [self.describe(name) for name in self.names()]

    def aggregate(self) -> Dict[str, object]:
        """Totals across tenants (for ``/v1/healthz`` and capacity planning).

        The ``shards`` sub-document surfaces the partitioned tenants:
        total inner engines hosted and the per-shard queue depths of every
        sharded tenant (a hot shard is visible from the health endpoint
        without a per-tenant stats round-trip).
        """
        total_applied = 0
        total_depth = 0
        total_capacity = 0
        running = 0
        total_engines = 0
        standbys = 0
        max_lag = 0
        lag_by_tenant: Dict[str, int] = {}
        applied_at_by_tenant: Dict[str, float] = {}
        topology_by_tenant: Dict[str, Dict[str, object]] = {}
        shard_depths: Dict[str, List[int]] = {}
        total_segments = 0
        total_bytes = 0
        horizon_by_tenant: Dict[str, Dict[str, object]] = {}
        pairs = self.items()
        all_metrics: List[ServiceMetrics] = []
        for name, engine in pairs:
            horizon = engine.wal_horizon()
            if horizon.get("durable"):
                total_segments += int(horizon.get("segments", 0))
                total_bytes += int(horizon.get("bytes", 0))
                horizon_by_tenant[name] = {
                    "oldest_retained_base": horizon.get("oldest_retained_base"),
                    "oldest_replayable": horizon.get("oldest_replayable"),
                    "snapshot_position": horizon.get("snapshot_position"),
                }
            total_applied += engine.applied
            total_depth += engine.queue_depth
            total_capacity += engine.total_queue_capacity
            if engine.running:
                running += 1
            all_metrics.append(engine.metrics)
            shape = engine
            if isinstance(engine, StandbyEngine):
                shape = engine.engine
                topology_by_tenant[name] = {
                    "role": "primary" if engine.promoted else "standby",
                    "replica_of": engine.replica_of,
                    "promoted": engine.promoted,
                }
                if not engine.promoted:
                    standbys += 1
                    status = engine.replication_status()
                    lag = int(status.get("lag", 0))
                    lag_by_tenant[name] = lag
                    max_lag = max(max_lag, lag)
                    if "last_applied_at" in status:
                        applied_at_by_tenant[name] = float(
                            status["last_applied_at"]  # type: ignore[arg-type]
                        )
            else:
                topology_by_tenant[name] = {"role": "primary"}
            inner = getattr(shape, "shards", None)
            if isinstance(inner, list):  # a ShardedEngine's inner engines
                total_engines += len(inner)
                shard_depths[name] = [shard.queue_depth for shard in inner]
                all_metrics.extend(shard.metrics for shard in inner)
            else:
                total_engines += 1
        merged = ServiceMetrics.merged(all_metrics)
        return {
            "tenants": len(pairs),
            "running": running,
            "applied": total_applied,
            "queue_depth": total_depth,
            "queue_capacity": total_capacity,
            "shards": {
                "engines": total_engines,
                "queue_depths": shard_depths,
            },
            "replication": {
                "standbys": standbys,
                "max_lag": max_lag,
                "lag": lag_by_tenant,
                "last_applied_at": applied_at_by_tenant,
                "topology": topology_by_tenant,
            },
            "wal": {
                "segments": total_segments,
                "bytes": total_bytes,
                "horizon": horizon_by_tenant,
            },
            "ingest": merged.ingest.summary(),
            "query": merged.query.summary(),
            "view_capture": merged.view_capture_summary(),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, checkpoint: bool = True) -> None:
        """Close every owned engine (final checkpoints included).  Idempotent.

        Every engine gets its close attempt even when an earlier one fails;
        the first failure is re-raised afterwards.  The registry is only
        cleared once *every* close succeeded — a failed final checkpoint
        (which reopens its engine) leaves the engine reachable through the
        manager and a ``close()`` retry re-attempts it, mirroring
        :meth:`delete`'s close-before-deregister discipline.
        """
        with self._lock:
            if self._close_completed:
                return
            self._closed = True  # no new tenants from here on
            engines = [
                (engine, self._owned.get(name, False))
                for name, engine in self._engines.items()
            ]
        failures: List[BaseException] = []
        for engine, owned in engines:
            if owned and not isinstance(engine, _Reserved):
                try:
                    engine.close(checkpoint=checkpoint)
                except BaseException as exc:
                    failures.append(exc)
        if failures:
            raise failures[0]
        with self._lock:
            self._engines.clear()
            self._configs.clear()
            self._owned.clear()
            self._stores.clear()
            self._close_completed = True

    def __enter__(self) -> "EngineManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
