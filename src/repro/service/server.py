"""Stdlib-only asyncio JSON-over-HTTP front-end for a clustering engine.

The server is deliberately minimal — ``asyncio.start_server`` plus a small
HTTP/1.1 request parser — because the container targets environments with
no third-party web stack.  It exposes five routes:

========  =================  ==================================================
Method    Path               Semantics
========  =================  ==================================================
POST      ``/updates``       Enqueue a batch of edge updates (non-blocking;
                             503 + partial-accept count under backpressure)
POST      ``/group-by``      Snapshot-consistent cluster-group-by over a
                             vertex list
GET       ``/cluster/{v}``   Cluster indices of one vertex in the current view
GET       ``/stats``         View statistics + engine metrics
GET       ``/healthz``       Liveness: engine running, view version, library
                             version
========  =================  ==================================================

Request/response bodies are JSON.  Updates use the compact wire form
``[op, u, v]`` with ``op`` in ``{"+", "-"}``, mirroring the WAL text format.
All reads are served from the engine's published immutable view, so a slow
or bursty ingest never blocks a reader and every response is internally
consistent (it reflects exactly one prefix of the update stream, reported
as ``view_version``).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Dict, List, Optional, Tuple

import repro
from repro.core.dynelm import Update, UpdateKind
from repro.graph.dynamic_graph import Vertex
from repro.service.engine import ClusteringEngine, EngineError

#: Largest accepted request body (1 MiB keeps parsing trivially safe).
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(ValueError):
    """Raised by request decoding; mapped to a 400 response."""


class _ProtocolError(Exception):
    """A malformed HTTP request; answered with ``status`` and closed."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def _decode_vertex(value: object) -> Vertex:
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise BadRequest(f"vertex identifiers must be ints or strings, got {value!r}")
    if isinstance(value, str):
        # numeric strings collapse to ints on every route (and in the
        # engine's WAL), so "123" and 123 always name the same vertex
        try:
            return int(value)
        except ValueError:
            return value
    return value


def decode_updates(payload: object) -> List[Update]:
    """Parse the ``/updates`` body: ``{"updates": [["+", u, v], ...]}``."""
    if not isinstance(payload, dict) or "updates" not in payload:
        raise BadRequest('body must be {"updates": [[op, u, v], ...]}')
    entries = payload["updates"]
    if not isinstance(entries, list):
        raise BadRequest('"updates" must be a list')
    updates: List[Update] = []
    for entry in entries:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise BadRequest(f"malformed update entry {entry!r}")
        op, u, v = entry
        if op == "+":
            updates.append(Update.insert(_decode_vertex(u), _decode_vertex(v)))
        elif op == "-":
            updates.append(Update.delete(_decode_vertex(u), _decode_vertex(v)))
        else:
            raise BadRequest(f"unknown update op {op!r} (expected '+' or '-')")
    return updates


def encode_update(update: Update) -> List[object]:
    """The wire form of one update."""
    return ["+" if update.kind is UpdateKind.INSERT else "-", update.u, update.v]


class ClusteringServiceServer:
    """Serve a :class:`ClusteringEngine` over JSON/HTTP on asyncio."""

    def __init__(
        self, engine: ClusteringEngine, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.engine = engine
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ClusteringServiceServer":
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self._requested_port
        )
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 to the kernel-assigned one)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _ProtocolError as exc:
                    payload = json.dumps({"error": exc.message}).encode("utf-8")
                    writer.write(_response_bytes(exc.status, payload, keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                status, document = self._dispatch(method, path, body)
                payload = json.dumps(document).encode("utf-8")
                keep_alive = headers.get("connection", "keep-alive") != "close"
                writer.write(_response_bytes(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # CancelledError lands here when the loop shuts down while a
                # keep-alive connection is parked in readline; the writer is
                # already closed, so ending the handler quietly is correct
                pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        try:
            if path == "/healthz" and method == "GET":
                return 200, self._healthz()
            if path == "/stats" and method == "GET":
                return 200, self.engine.stats()
            if path.startswith("/cluster/") and method == "GET":
                return 200, self._cluster_of(path[len("/cluster/"):])
            if path == "/updates" and method == "POST":
                return self._post_updates(_parse_json(body))
            if path == "/group-by" and method == "POST":
                return 200, self._group_by(_parse_json(body))
            if path in ("/healthz", "/stats", "/updates", "/group-by") or path.startswith(
                "/cluster/"
            ):
                return 405, {"error": f"method {method} not allowed for {path}"}
            return 404, {"error": f"no route for {path}"}
        except BadRequest as exc:
            return 400, {"error": str(exc)}
        except EngineError as exc:
            # engine closed or its writer died: the service is unavailable,
            # but the connection (and the error) must still reach the client
            return 503, {"error": f"engine unavailable: {exc}"}
        except Exception as exc:  # a handler bug must not abort the connection
            return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}

    def _healthz(self) -> Dict[str, object]:
        return {
            "status": "ok" if self.engine.running else "idle",
            "version": repro.__version__,
            "view_version": self.engine.view().version,
            "applied": self.engine.applied,
        }

    def _cluster_of(self, raw: str) -> Dict[str, object]:
        if not raw:
            raise BadRequest("missing vertex identifier")
        vertex: Vertex
        try:
            vertex = int(raw)
        except ValueError:
            vertex = raw
        view = self.engine.view()
        start = _now()
        clusters = view.cluster_of(vertex)
        self.engine.metrics.observe_query(_now() - start)
        return {
            "vertex": vertex,
            "clusters": list(clusters),
            "view_version": view.version,
        }

    def _post_updates(self, payload: object) -> Tuple[int, Dict[str, object]]:
        updates = decode_updates(payload)
        accepted = self.engine.submit_many(updates, block=False)
        document: Dict[str, object] = {
            "accepted": accepted,
            "submitted": len(updates),
        }
        if accepted < len(updates):
            document["error"] = "backpressure"
            return 503, document
        return 200, document

    def _group_by(self, payload: object) -> Dict[str, object]:
        if not isinstance(payload, dict) or "vertices" not in payload:
            raise BadRequest('body must be {"vertices": [...]}')
        vertices = payload["vertices"]
        if not isinstance(vertices, list):
            raise BadRequest('"vertices" must be a list')
        query = [_decode_vertex(v) for v in vertices]
        view = self.engine.view()
        start = _now()
        result = view.group_by(query)
        self.engine.metrics.observe_query(_now() - start)
        return {
            "view_version": view.version,
            "groups": {str(gid): sorted(members, key=repr) for gid, members in result.groups.items()},
        }


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one HTTP/1.1 request; None on a cleanly closed connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split(None, 2)
    except ValueError:
        return None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise _ProtocolError(400, f"malformed Content-Length {raw_length!r}") from None
    if length < 0:
        raise _ProtocolError(400, f"malformed Content-Length {raw_length!r}")
    if length > MAX_BODY_BYTES:
        raise _ProtocolError(
            413, f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
        )
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method.upper(), path, headers, body


def _response_bytes(status: int, payload: bytes, keep_alive: bool) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {connection}\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + payload


def _parse_json(body: bytes) -> object:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"request body is not valid JSON: {exc}") from exc


def _now() -> float:
    return time.perf_counter()


# ----------------------------------------------------------------------
# background runner (tests, examples, the load generator's HTTP mode)
# ----------------------------------------------------------------------
class BackgroundServer:
    """Run a :class:`ClusteringServiceServer` on a dedicated event-loop thread.

    Usage::

        with BackgroundServer(engine) as server:
            client = ServiceClient("127.0.0.1", server.port)
            ...
    """

    def __init__(
        self, engine: ClusteringEngine, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.server = ClusteringServiceServer(engine, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="clustering-service-http", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 10 s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # pragma: no cover - bind failures
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop = None
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
