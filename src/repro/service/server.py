"""Stdlib-only asyncio JSON-over-HTTP front-end for multi-tenant clustering.

The server is deliberately minimal — ``asyncio.start_server`` plus a small
HTTP/1.1 request parser — because the container targets environments with
no third-party web stack.  Since v1 it hosts an
:class:`~repro.service.manager.EngineManager` (many named engines) and
routes by tenant:

========  ====================================  ============================
Method    Path                                  Semantics
========  ====================================  ============================
GET       ``/v1/healthz``                       Liveness + tenant aggregate
GET       ``/v1/tenants``                       List tenants
POST      ``/v1/tenants``                       Create a tenant
DELETE    ``/v1/tenants/{t}``                   Delete a tenant
POST      ``/v1/tenants/{t}/updates``           Enqueue edge updates
                                                (429 + ``Retry-After`` under
                                                backpressure)
POST      ``/v1/tenants/{t}/group-by``          Snapshot-consistent group-by
GET       ``/v1/tenants/{t}/cluster/{v}``       Clusters of one vertex
GET       ``/v1/tenants/{t}/stats``             View statistics + metrics
GET       ``/metrics``                          Prometheus text exposition
GET       ``/v1/debug/traces``                  Recent spans (``?trace_id=``)
GET       ``/v1/debug/decisions``               Fleet decision-log events
GET       ``/v1/debug/profile``                 Sampling profiler (collapsed
                                                stacks; ``?seconds=N``)
========  ====================================  ============================

Every request is traced: the server mints a ``trace_id`` (or adopts a
client-supplied ``X-Repro-Trace`` header, which additionally samples the
request's updates for end-to-end propagation) and echoes it back as an
``X-Repro-Trace`` response header; see ``docs/OBSERVABILITY.md``.

The five pre-v1 routes (``/updates``, ``/group-by``, ``/cluster/{v}``,
``/stats``, ``/healthz``) are still served for one release, mapped to the
``default`` tenant with their original response shapes (flat errors,
503 backpressure).  New clients should use ``/v1/...`` only.

Every v1 error body is the structured envelope::

    {"error": {"code": "...", "message": "...", "retryable": true|false}}

optionally with route-specific siblings (the 429 adds ``accepted``,
``queue_depth`` and ``retry_after_ms`` next to the envelope).

Request/response bodies are JSON.  Updates use the compact wire form
``[op, u, v]`` with ``op`` in ``{"+", "-"}``.  Vertex identifiers are
**lossless**: a JSON int stays an int, a JSON string stays a string (the
int ``123`` and the string ``"123"`` are distinct vertices), and path
segments use the WAL's token escaping (``/cluster/123`` is the int,
``/cluster/~123`` the string).  All reads are served from each engine's
published immutable view, so a slow or bursty ingest never blocks a reader
and every response is internally consistent (it reflects exactly one
prefix of that tenant's update stream, reported as ``view_version``).
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from typing import Dict, List, Optional, Tuple, Union

from urllib.parse import parse_qs, unquote

import repro
from repro.core.dynelm import Update, UpdateKind
from repro.graph.dynamic_graph import Vertex
from repro.persistence.updatelog import format_vertex_token, parse_vertex_token
from repro.service.engine import (
    ClusteringEngine,
    EngineBackpressure,
    EngineError,
    EngineFenced,
    ReadOnlyEngineError,
    canonicalise_vertex,
)
from repro.service.manager import (
    EngineManager,
    NotAStandbyError,
    TenantDeleteError,
    TenantExistsError,
    TenantLimitError,
    UnknownTenantError,
)
from repro.service.obs import (
    decision_events,
    get_tracer,
    new_trace_id,
    render_metrics,
    sample_stacks,
)
from repro.service.replication import (
    DEFAULT_FETCH_RECORDS,
    MAX_FETCH_RECORDS,
    ReplicationError,
    StandbyEngine,
    WalGapError,
    parse_primary_url,
    read_wal_range,
)
from repro.service.sharding import ShardedEngine
from repro.service.timetravel import AsOfUnavailableError

#: Largest accepted request body (1 MiB keeps parsing trivially safe).
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Allowed query parameters per v1 read route — anything else is a 400.
#: (Silently ignoring a mistyped ``?asof=`` would serve the *latest* view
#: while the caller believes they asked for history.)
_AS_OF_QUERY_PARAMS = frozenset({"as_of"})
_WAL_QUERY_PARAMS = frozenset({"from", "shard", "max", "ack"})
_SNAPSHOT_QUERY_PARAMS = frozenset({"shard"})
_DEBUG_TRACES_PARAMS = frozenset({"trace_id", "limit"})
_DEBUG_DECISIONS_PARAMS = frozenset({"limit"})
_DEBUG_PROFILE_PARAMS = frozenset({"seconds", "interval"})

#: Accepted shape of a client-supplied ``X-Repro-Trace`` header value.
#: Anything else is ignored (treated as absent) rather than echoed back.
_TRACE_ID_CHARS = frozenset("0123456789abcdefABCDEF-_.")
_TRACE_ID_MAX_LEN = 64

#: Extra headers attached to a response (name → value).
Headers = Dict[str, str]


class RawBody:
    """A non-JSON response body (the ``/metrics`` text exposition)."""

    def __init__(self, payload: bytes, content_type: str) -> None:
        self.payload = payload
        self.content_type = content_type


#: What a route handler produces.
Response = Tuple[int, Union[Dict[str, object], RawBody], Headers]


class BadRequest(ValueError):
    """Raised by request decoding; mapped to a 400 response."""


class _ProtocolError(Exception):
    """A malformed HTTP request; answered with ``status`` and closed."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def error_envelope(
    code: str, message: str, retryable: bool = False
) -> Dict[str, object]:
    """The v1 structured error body."""
    return {"error": {"code": code, "message": message, "retryable": retryable}}


def retry_after_header(retry_after_ms: int) -> str:
    """The ``Retry-After`` header value for a 429, from the body's ms hint.

    ``Retry-After`` only speaks integer seconds, so the header is the
    *ceiling* of the millisecond hint — a header-only client never retries
    before the suggested moment — and ``0`` is allowed (retry immediately)
    rather than being rounded up to a fabricated 1 s stall.  Clients that
    parse the JSON body should honour the smaller, precise
    ``retry_after_ms`` (see
    :attr:`repro.service.client.BackpressureError.retry_after_s`).
    """
    return str(max(0, math.ceil(retry_after_ms / 1000.0)))


def _decode_vertex(value: object) -> Vertex:
    """JSON value → vertex identifier, losslessly.

    Ints stay ints, strings stay strings — ``123`` and ``"123"`` are
    different vertices.  The canonical identifier space is defined once, by
    :func:`repro.service.engine.canonicalise_vertex`; anything outside it
    (bools, floats, empty or whitespace-bearing strings) maps to a 400.
    """
    if not isinstance(value, (int, str)):
        raise BadRequest(f"vertex identifiers must be ints or strings, got {value!r}")
    try:
        return canonicalise_vertex(value)
    except ValueError as exc:
        raise BadRequest(str(exc)) from exc


def decode_updates(payload: object) -> List[Update]:
    """Parse the ``/updates`` body: ``{"updates": [["+", u, v], ...]}``."""
    if not isinstance(payload, dict) or "updates" not in payload:
        raise BadRequest('body must be {"updates": [[op, u, v], ...]}')
    entries = payload["updates"]
    if not isinstance(entries, list):
        raise BadRequest('"updates" must be a list')
    updates: List[Update] = []
    for entry in entries:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise BadRequest(f"malformed update entry {entry!r}")
        op, u, v = entry
        if op == "+":
            updates.append(Update.insert(_decode_vertex(u), _decode_vertex(v)))
        elif op == "-":
            updates.append(Update.delete(_decode_vertex(u), _decode_vertex(v)))
        else:
            raise BadRequest(f"unknown update op {op!r} (expected '+' or '-')")
    return updates


def encode_update(update: Update) -> List[object]:
    """The wire form of one update."""
    return ["+" if update.kind is UpdateKind.INSERT else "-", update.u, update.v]


class ClusteringServiceServer:
    """Serve an :class:`EngineManager` over JSON/HTTP on asyncio.

    Accepts either a manager (the multi-tenant path) or a bare
    :class:`ClusteringEngine`, which is adopted as the ``default`` tenant —
    the single-tenant compatibility path used by tests and examples.
    """

    def __init__(
        self,
        manager: Union[EngineManager, ClusteringEngine, ShardedEngine],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if isinstance(manager, (ClusteringEngine, ShardedEngine)):
            manager = EngineManager.adopt(manager)
        self.manager = manager
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def engine(self) -> ClusteringEngine:
        """The ``default`` tenant's engine (legacy single-tenant accessor)."""
        return self.manager.get("default")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ClusteringServiceServer":
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self._requested_port
        )
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 to the kernel-assigned one)."""
        if self._server is None or not self._server.sockets:
            # repro: allow[REPRO501] lifecycle error for the embedding
            # process (server not started), never surfaced to a client
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _ProtocolError as exc:
                    payload = json.dumps(
                        error_envelope("protocol_error", exc.message)
                    ).encode("utf-8")
                    writer.write(
                        _response_bytes(exc.status, payload, keep_alive=False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, query, headers, body = request
                supplied = _valid_trace_id(headers.get("x-repro-trace"))
                # a client-supplied id marks the request *sampled*: its
                # updates are tagged and traced end-to-end; server-minted
                # ids still name the request span but stay off the ingest
                # hot path (see repro.service.obs.SpanContext)
                trace_id = supplied if supplied is not None else new_trace_id()
                sampled = supplied is not None
                if self._is_blocking_route(method, path, query):
                    # tenant lifecycle can block for seconds (standby
                    # seeding over HTTP, fence attempts against a dead
                    # primary, final checkpoints): run it in a worker
                    # thread so every other tenant's requests keep flowing
                    status, document, extra_headers = (
                        await asyncio.get_running_loop().run_in_executor(
                            None,
                            self._dispatch,
                            method,
                            path,
                            body,
                            query,
                            trace_id,
                            sampled,
                        )
                    )
                else:
                    # repro: allow[REPRO401] fast path: _is_blocking_route
                    # just ruled this a non-blocking read; the executor hop
                    # would cost more than the dispatch itself
                    status, document, extra_headers = self._dispatch(
                        method, path, body, query, trace_id, sampled
                    )
                if isinstance(document, RawBody):
                    payload = document.payload
                    content_type = document.content_type
                else:
                    payload = json.dumps(document).encode("utf-8")
                    content_type = "application/json"
                extra_headers = dict(extra_headers)
                extra_headers.setdefault("X-Repro-Trace", trace_id)
                keep_alive = headers.get("connection", "keep-alive") != "close"
                writer.write(
                    _response_bytes(
                        status, payload, keep_alive, extra_headers, content_type
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # CancelledError lands here when the loop shuts down while a
                # keep-alive connection is parked in readline; the writer is
                # already closed, so ending the handler quietly is correct
                pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    @staticmethod
    def _is_blocking_route(method: str, path: str, query: str = "") -> bool:
        """Routes whose handlers may block for seconds, not microseconds.

        Tenant creation can crash-recover a large snapshot+WAL or seed a
        standby over HTTP from its primary (one snapshot download per
        shard), deletion cuts a final checkpoint, promotion retries a
        fence against a possibly-dead primary with full network timeouts,
        and the WAL/snapshot serving routes read segment/checkpoint files
        from disk on every replica poll — none of which may stall the
        event loop every tenant shares.  Likewise any tenant read carrying
        ``as_of``: a cold historical query restores a snapshot anchor and
        replays retained WAL from disk.
        """
        segments = [segment for segment in path.split("/") if segment]
        if segments == ["metrics"] or segments == ["v1", "debug", "profile"]:
            # /metrics walks every tenant's engines (locks, WAL horizons);
            # the profiler deliberately blocks for the sampled window
            return True
        if (
            segments[:2] == ["v1", "tenants"]
            and "as_of" in _parse_query(query)
        ):
            return True
        if method == "POST":
            # fence belongs here too: it fsyncs a manifest per shard, and
            # reparent probes the new primary with full network timeouts
            return segments == ["v1", "tenants"] or (
                len(segments) == 4
                and segments[:2] == ["v1", "tenants"]
                and segments[3] in ("promote", "fence", "reparent")
            )
        if method == "DELETE":
            return len(segments) == 3 and segments[:2] == ["v1", "tenants"]
        return (
            method == "GET"
            and len(segments) == 4
            and segments[:2] == ["v1", "tenants"]
            and segments[3] in ("wal", "snapshot")
        )

    def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        query: str = "",
        trace_id: Optional[str] = None,
        sampled: bool = False,
    ) -> Response:
        """Route one request under its ``http.request`` span.

        The span is opened *here* — in whichever thread actually runs the
        handler — because the active-span contextvar must be visible to
        the handler code (``run_in_executor`` does not copy the caller's
        context), and ``sampled`` governs whether submitted updates are
        tagged for end-to-end tracing (see
        :func:`repro.service.obs.tag_update`).
        """
        if trace_id is None:
            trace_id = new_trace_id()
        with get_tracer().span(
            "http.request",
            trace_id=trace_id,
            sampled=sampled,
            method=method,
            path=path,
        ):
            return self._dispatch_routes(method, path, body, query)

    def _dispatch_routes(
        self, method: str, path: str, body: bytes, query: str = ""
    ) -> Response:
        try:
            if path == "/metrics":
                if method != "GET":
                    return self._method_not_allowed(method, path)
                text = render_metrics(self.manager, version=repro.__version__)
                raw = RawBody(
                    text.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                return 200, raw, {}
            if path.startswith("/v1/"):
                return self._dispatch_v1(method, path, body, query)
            return self._dispatch_legacy(method, path, body)
        except BadRequest as exc:
            return 400, error_envelope("bad_request", str(exc)), {}
        except UnknownTenantError as exc:
            return 404, error_envelope("unknown_tenant", str(exc)), {}
        except TenantExistsError as exc:
            return 409, error_envelope("tenant_exists", str(exc)), {}
        except TenantLimitError as exc:
            return 409, error_envelope("tenant_limit", str(exc)), {}
        except NotAStandbyError as exc:
            return 409, error_envelope("not_a_standby", str(exc)), {}
        except ReadOnlyEngineError as exc:
            # a standby tenant sheds *writes* only; not retryable against
            # this server — the client must target the primary or promote
            return 409, error_envelope("tenant_read_only", str(exc)), {}
        except EngineFenced as exc:
            document = {
                **error_envelope("tenant_fenced", str(exc)),
                "epoch": exc.epoch,
            }
            return 409, document, {}
        except WalGapError as exc:
            # the replica asked for a position below the retained WAL
            # horizon: re-seed from /snapshot (min_position says where
            # the log picks up again)
            document = {
                **error_envelope("wal_gap", str(exc)),
                "min_position": exc.min_position,
            }
            return 409, document, {}
        except ReplicationError as exc:
            return 409, error_envelope("replication_error", str(exc)), {}
        except AsOfUnavailableError as exc:
            # the requested history was pruned past the retention horizon:
            # permanent for this position (410, not retryable) — the body
            # says where replayable history starts
            document = {
                **error_envelope("as_of_unavailable", str(exc)),
                "requested_position": exc.requested,
                "oldest_position": exc.oldest,
            }
            if exc.shard is not None:
                document["shard"] = exc.shard
            return 410, document, {}
        except TenantDeleteError as exc:
            # the engine refused to close: the tenant is still fully
            # registered (no half-deleted state) and the delete is safe to
            # retry — a structured, retryable server-side failure
            return 500, error_envelope("tenant_delete_failed", str(exc), True), {}
        except EngineError as exc:
            # engine closed or its writer died: the service is unavailable,
            # but the connection (and the error) must still reach the client
            return (
                503,
                error_envelope("engine_unavailable", f"engine unavailable: {exc}", True),
                {},
            )
        except Exception as exc:  # a handler bug must not abort the connection
            return (
                500,
                error_envelope("internal", f"internal error: {type(exc).__name__}: {exc}"),
                {},
            )

    def _dispatch_v1(
        self, method: str, path: str, body: bytes, query: str = ""
    ) -> Response:
        segments = path[len("/v1/"):].split("/")
        if segments == ["healthz"]:
            if method != "GET":
                return self._method_not_allowed(method, path)
            return 200, self._healthz_v1(), {}
        if segments[0] == "debug":
            return self._dispatch_debug(method, segments[1:], query, path)
        if segments == ["tenants"]:
            if method == "GET":
                return 200, {"tenants": self.manager.list_tenants()}, {}
            if method == "POST":
                return self._create_tenant(_parse_json(body))
            return self._method_not_allowed(method, path)
        if segments[0] == "tenants" and len(segments) >= 2:
            tenant = segments[1]
            rest = segments[2:]
            if not rest:
                if method == "GET":
                    return 200, self.manager.describe(tenant), {}
                if method == "DELETE":
                    self.manager.delete(tenant)
                    return 200, {"deleted": tenant}, {}
                return self._method_not_allowed(method, path)
            engine = self.manager.get(tenant)
            if rest == ["updates"] and method == "POST":
                return self._post_updates_v1(engine, _parse_json(body))
            if rest == ["group-by"] and method == "POST":
                params = _checked_query(query, _AS_OF_QUERY_PARAMS, path)
                view, as_of = self._resolve_view(tenant, engine, params)
                return 200, self._group_by(engine, _parse_json(body), view, as_of), {}
            if rest[0] == "cluster" and len(rest) >= 2 and method == "GET":
                params = _checked_query(query, _AS_OF_QUERY_PARAMS, path)
                view, as_of = self._resolve_view(tenant, engine, params)
                # rejoin (a string vertex id may legally contain '/'), then
                # percent-decode: the v1 segment is defined as URL-encoded
                raw = unquote("/".join(rest[1:]))
                return 200, self._cluster_of(engine, raw, view=view, as_of=as_of), {}
            if rest == ["stats"] and method == "GET":
                params = _checked_query(query, _AS_OF_QUERY_PARAMS, path)
                return 200, self._stats_v1(tenant, engine, params), {}
            if rest == ["wal"] and method == "GET":
                return self._get_wal(
                    tenant, engine, _checked_query(query, _WAL_QUERY_PARAMS, path)
                )
            if rest == ["snapshot"] and method == "GET":
                params = _checked_query(query, _SNAPSHOT_QUERY_PARAMS, path)
                return 200, self._get_snapshot(tenant, engine, params), {}
            if rest == ["fence"] and method == "POST":
                return self._post_fence(tenant, engine, _parse_json(body))
            if rest == ["promote"] and method == "POST":
                return 200, {"tenant": tenant, **self.manager.promote(tenant)}, {}
            if rest == ["topology"] and method == "GET":
                _checked_query(query, frozenset(), path)
                return 200, self.manager.topology(tenant), {}
            if rest == ["reparent"] and method == "POST":
                return self._post_reparent(tenant, _parse_json(body))
            if rest in (
                ["updates"],
                ["group-by"],
                ["stats"],
                ["wal"],
                ["snapshot"],
                ["fence"],
                ["promote"],
                ["topology"],
                ["reparent"],
            ) or (rest and rest[0] == "cluster"):
                return self._method_not_allowed(method, path)
        return 404, error_envelope("not_found", f"no route for {path}"), {}

    def _dispatch_legacy(self, method: str, path: str, body: bytes) -> Response:
        """The five pre-v1 routes, mapped to the ``default`` tenant.

        Deprecated — response shapes (flat ``{"error": "..."}`` strings,
        503 backpressure) are frozen for one release so existing clients
        keep working; the ``Deprecation`` header marks every answer.
        """
        deprecated = {"Deprecation": "true"}
        try:
            if path == "/healthz" and method == "GET":
                return 200, self._healthz_legacy(), deprecated
            if path == "/stats" and method == "GET":
                return 200, self.manager.get("default").stats(), deprecated
            if path.startswith("/cluster/") and method == "GET":
                engine = self.manager.get("default")
                # frozen pre-v1 semantics: the token is read verbatim (no
                # ~ unescaping, no percent-decoding), ints collapsed
                document = self._cluster_of(
                    engine, path[len("/cluster/"):], unescape=False
                )
                return 200, document, deprecated
            if path == "/updates" and method == "POST":
                engine = self.manager.get("default")
                updates = decode_updates(_parse_json(body))
                accepted = engine.submit_many(updates, block=False)
                document: Dict[str, object] = {
                    "accepted": accepted,
                    "submitted": len(updates),
                }
                if accepted < len(updates):
                    document["error"] = "backpressure"
                    return 503, document, deprecated
                return 200, document, deprecated
            if path == "/group-by" and method == "POST":
                engine = self.manager.get("default")
                return 200, self._group_by(engine, _parse_json(body)), deprecated
            if path in ("/healthz", "/stats", "/updates", "/group-by") or path.startswith(
                "/cluster/"
            ):
                return 405, {"error": f"method {method} not allowed for {path}"}, deprecated
            return 404, {"error": f"no route for {path}"}, deprecated
        except BadRequest as exc:
            return 400, {"error": str(exc)}, deprecated
        except UnknownTenantError as exc:
            return 404, {"error": f"legacy routes need the default tenant: {exc}"}, deprecated
        except EngineError as exc:
            return 503, {"error": f"engine unavailable: {exc}"}, deprecated

    def _method_not_allowed(self, method: str, path: str) -> Response:
        return (
            405,
            error_envelope("method_not_allowed", f"method {method} not allowed for {path}"),
            {},
        )

    # ------------------------------------------------------------------
    # debug routes (observability surface; see docs/OBSERVABILITY.md)
    # ------------------------------------------------------------------
    def _dispatch_debug(
        self, method: str, rest: List[str], query: str, path: str
    ) -> Response:
        if rest == ["traces"]:
            if method != "GET":
                return self._method_not_allowed(method, path)
            params = _checked_query(query, _DEBUG_TRACES_PARAMS, path)
            trace_id = params.get("trace_id")
            limit = _query_int(params, "limit", 1000)
            if limit < 0:
                raise BadRequest(f"limit must be >= 0, got {limit}")
            tracer = get_tracer()
            spans = tracer.spans(trace_id=trace_id, limit=limit)
            document: Dict[str, object] = {
                "spans": spans,
                "count": len(spans),
                "capacity": tracer.capacity,
                "dropped": tracer.dropped,
            }
            if trace_id is not None:
                document["trace_id"] = trace_id
            return 200, document, {}
        if rest == ["decisions"]:
            if method != "GET":
                return self._method_not_allowed(method, path)
            params = _checked_query(query, _DEBUG_DECISIONS_PARAMS, path)
            limit = _query_int(params, "limit", 256)
            if limit < 0:
                raise BadRequest(f"limit must be >= 0, got {limit}")
            events = decision_events(limit=limit)
            return 200, {"decisions": events, "count": len(events)}, {}
        if rest == ["profile"]:
            if method != "GET":
                return self._method_not_allowed(method, path)
            params = _checked_query(query, _DEBUG_PROFILE_PARAMS, path)
            seconds = _query_float(params, "seconds", 1.0)
            interval = _query_float(params, "interval", 0.01)
            return 200, sample_stacks(seconds=seconds, interval=interval), {}
        return 404, error_envelope("not_found", f"no route for {path}"), {}

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _healthz_v1(self) -> Dict[str, object]:
        return {
            "status": "ok",
            "version": repro.__version__,
            "api": "v1",
            **self.manager.aggregate(),
        }

    def _healthz_legacy(self) -> Dict[str, object]:
        engine = self.manager.get("default")
        return {
            "status": "ok" if engine.running else "idle",
            "version": repro.__version__,
            "view_version": engine.view().version,
            "applied": engine.applied,
        }

    def _points_at_self(self, replica_of: str) -> bool:
        """Best-effort check that ``replica_of`` names this very server.

        Self-replication is always a misconfiguration (the standby would
        try to discover its shape from the very tenant slot it is
        reserving).  Comparing addresses is inherently approximate — this
        catches the same host string and the loopback spellings, which is
        where the mistake actually happens.
        """
        try:
            host, port = parse_primary_url(replica_of)
        except ValueError:
            return False  # manager.create reports the malformed URL
        try:
            own_port = self.port
        except RuntimeError:
            return False  # not started yet: nothing is bound to compare
        if port != own_port:
            return False
        loopback = {"localhost", "127.0.0.1", "::1"}
        if host == self.host:
            return True
        return host in loopback and (
            self.host in loopback or self.host in ("0.0.0.0", "::")
        )

    def _create_tenant(self, payload: object) -> Response:
        if not isinstance(payload, dict) or "tenant" not in payload:
            raise BadRequest('body must be {"tenant": name, ...}')
        name = payload["tenant"]
        if not isinstance(name, str):
            raise BadRequest(f"tenant name must be a string, got {name!r}")
        backend = payload.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise BadRequest(f'"backend" must be a string, got {backend!r}')
        queue_capacity = payload.get("queue_capacity")
        if queue_capacity is not None and (
            isinstance(queue_capacity, bool) or not isinstance(queue_capacity, int)
        ):
            raise BadRequest(f'"queue_capacity" must be an int, got {queue_capacity!r}')
        shards = payload.get("shards")
        if shards is not None and (
            isinstance(shards, bool) or not isinstance(shards, int)
        ):
            raise BadRequest(f'"shards" must be an int, got {shards!r}')
        replica_of = payload.get("replica_of")
        if replica_of is not None and not isinstance(replica_of, str):
            raise BadRequest(f'"replica_of" must be a string, got {replica_of!r}')
        if replica_of is not None and self._points_at_self(replica_of):
            raise BadRequest(
                f"replica_of {replica_of!r} points at this server itself; "
                "a tenant cannot be a standby of its own server"
            )
        params = None
        if "params" in payload:
            params = _decode_params(payload["params"], self.manager.default_params)
        try:
            self.manager.create(
                name,
                params=params,
                backend=backend,
                queue_capacity=queue_capacity,
                shards=shards,
                replica_of=replica_of,
            )
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
        except OSError as exc:
            # the standby's primary is unreachable: a clean, retryable 409
            return (
                409,
                error_envelope(
                    "primary_unreachable",
                    f"cannot reach primary {replica_of!r}: {exc}",
                    retryable=True,
                ),
                {},
            )
        except Exception as exc:
            from repro.service.client import ServiceError

            if isinstance(exc, ReplicationError) and isinstance(
                exc.__cause__, OSError
            ):
                # an unreachable primary surfaces wrapped (first seed with
                # no local state): same clean, retryable 409 as a raw one
                return (
                    409,
                    error_envelope(
                        "primary_unreachable",
                        f"cannot reach primary {replica_of!r}: {exc}",
                        retryable=True,
                    ),
                    {},
                )
            if isinstance(exc, ServiceError):
                # the primary answered but refused (unknown tenant there,
                # not durable, ...): forward the context as a clean 409
                return (
                    409,
                    error_envelope(
                        "primary_rejected",
                        f"primary {replica_of!r} rejected replication: {exc}",
                        retryable=exc.retryable,
                    ),
                    {},
                )
            raise
        return 201, self.manager.describe(name), {}

    def _resolve_view(
        self, tenant: str, engine: ClusteringEngine, params: Dict[str, str]
    ) -> Tuple[Optional[object], Optional[object]]:
        """Resolve the ``as_of`` query parameter to the view to serve.

        Returns ``(view, as_of_echo)``: ``(None, None)`` without the
        parameter (the handler serves the live view as always),
        ``(live view, "latest")`` for ``as_of=latest``, and a
        historical view plus the position list for an explicit position
        tuple.  Malformed positions are a 400; pruned history propagates
        as :class:`AsOfUnavailableError` (410).
        """
        raw = params.get("as_of")
        if raw is None:
            return None, None
        if raw.strip().lower() == "latest":
            return engine.view(), "latest"
        try:
            positions = tuple(int(part) for part in raw.split(","))
        except ValueError:
            raise BadRequest(
                "as_of must be 'latest', an applied position, or a comma-"
                f"separated per-shard position tuple, got {raw!r}"
            ) from None
        store = self.manager.timetravel(tenant)
        try:
            view = store.view_at(positions)
        except AsOfUnavailableError:
            raise
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
        return view, list(positions)

    def _cluster_of(
        self,
        engine: ClusteringEngine,
        raw: str,
        unescape: bool = True,
        view: Optional[object] = None,
        as_of: Optional[object] = None,
    ) -> Dict[str, object]:
        if not raw:
            raise BadRequest("missing vertex identifier")
        vertex = parse_vertex_token(raw, unescape=unescape)
        if view is None:
            view = engine.view()
        start = _now()
        clusters = view.cluster_of(vertex)
        engine.metrics.observe_query(_now() - start)
        document: Dict[str, object] = {
            "vertex": vertex,
            "clusters": list(clusters),
            "view_version": view.version,
        }
        if as_of is not None:
            document["as_of"] = as_of
        return document

    def _post_updates_v1(
        self, engine: ClusteringEngine, payload: object
    ) -> Response:
        updates = decode_updates(payload)
        accepted = engine.submit_many(updates, block=False)
        if accepted < len(updates):
            signal = engine.backpressure_signal()
            document = {
                **error_envelope("backpressure", str(signal), retryable=True),
                "accepted": accepted,
                "submitted": len(updates),
                "queue_depth": signal.queue_depth,
                "queue_capacity": signal.queue_capacity,
                "retry_after_ms": signal.retry_after_ms,
            }
            headers = {"Retry-After": retry_after_header(signal.retry_after_ms)}
            return 429, document, headers
        return 200, {"accepted": accepted, "submitted": len(updates)}, {}

    def _stats_v1(
        self,
        tenant: str,
        engine: ClusteringEngine,
        params: Optional[Dict[str, str]] = None,
    ) -> Dict[str, object]:
        """Per-tenant stats plus the ``replication``/``wal``/``timetravel`` blocks.

        Standby tenants bring their own replication block (role, lag,
        per-shard positions); for regular tenants the server composes the
        primary view: epoch, fence state and the positions its standbys
        acked on the WAL-serving route.  ``wal`` is the tenant's
        replayable horizon, ``timetravel`` the historical-view cache
        counters and replay latency.  With ``?as_of=<positions>`` the
        view-statistics portion describes that historical view instead of
        the live one.
        """
        view, as_of = self._resolve_view(tenant, engine, params or {})
        if view is not None and as_of != "latest":
            # historical: the view's own statistics at that position
            document = {"tenant": tenant, "as_of": as_of, **view.stats()}
            document["timetravel"] = self.manager.timetravel(tenant).stats()
            return document
        document = {"tenant": tenant, **engine.stats()}
        if as_of is not None:
            document["as_of"] = as_of
        document["wal"] = engine.wal_horizon()
        document["timetravel"] = self.manager.timetravel(tenant).stats()
        if "replication" not in document:
            acked = self.manager.acks(tenant)
            document["replication"] = {
                "role": "primary",
                "epoch": getattr(engine, "epoch", 0),
                "fenced": getattr(engine, "fenced", False),
                "acked": {str(shard): position for shard, position in sorted(acked.items())},
            }
        return document

    def _wal_target(
        self, tenant: str, engine: ClusteringEngine, query: Dict[str, str]
    ) -> Tuple[int, ClusteringEngine, int]:
        """Resolve the ``shard`` query param to the engine serving that WAL.

        Returns ``(shard, inner engine, served epoch)``.  Any standby may
        serve its WAL — a *promoted* one because it IS the primary now,
        an *un-promoted* one to feed a chained replica
        (``primary -> A -> B``).  A chained hop advertises
        ``max(local epoch, upstream's seen epoch)`` so a promotion
        anywhere above propagates down the tree and fences stale leaves
        exactly as if they shipped from the root.
        """
        served_epoch: Optional[int] = None
        if isinstance(engine, StandbyEngine):
            if not engine.promoted:
                served_epoch = max(engine.engine.epoch, engine.seen_epoch)
            engine = engine.engine
        shard = _query_int(query, "shard", 0)
        if isinstance(engine, ShardedEngine):
            if not 0 <= shard < engine.num_shards:
                raise BadRequest(
                    f"shard must be in [0, {engine.num_shards}), got {shard}"
                )
            target = engine.shards[shard]
        else:
            if shard != 0:
                raise BadRequest(f"tenant {tenant!r} is unsharded; shard must be 0")
            target = engine
        if target.data_dir is None:
            raise BadRequest(
                f"tenant {tenant!r} is not durable; there is no WAL to ship"
            )
        if served_epoch is None:
            served_epoch = target.epoch
        return shard, target, served_epoch

    def _get_wal(
        self, tenant: str, engine: ClusteringEngine, query: Dict[str, str]
    ) -> Response:
        shard, target, served_epoch = self._wal_target(tenant, engine, query)
        start = _query_int(query, "from", 0)
        if start < 0:
            raise BadRequest(f"from must be >= 0, got {start}")
        max_records = min(
            max(1, _query_int(query, "max", DEFAULT_FETCH_RECORDS)),
            MAX_FETCH_RECORDS,
        )
        if "ack" in query:
            self.manager.record_ack(tenant, shard, _query_int(query, "ack", 0))
        chunk = read_wal_range(
            target.wal_segments(), start, max_records, target.wal_position
        )
        document = {
            "tenant": tenant,
            "shard": shard,
            "from": start,
            "records": [encode_update(update) for update in chunk.records],
            "position": start + len(chunk.records),
            "applied": target.wal_position,
            "epoch": served_epoch,
            "torn": chunk.torn,
        }
        traces = target.trace_ids(start, len(chunk.records))
        if traces:
            # positions whose updates carry a trace id: the shipper
            # re-attaches them so standby replay stays on the same trace
            document["traces"] = {
                str(position): trace_id for position, trace_id in traces.items()
            }
        return 200, document, {}

    def _get_snapshot(
        self, tenant: str, engine: ClusteringEngine, query: Dict[str, str]
    ) -> Dict[str, object]:
        shard, target, served_epoch = self._wal_target(tenant, engine, query)
        snapshot = target.read_snapshot_document()
        return {
            "tenant": tenant,
            "shard": shard,
            "position": int(snapshot.get("updates_processed", 0)),
            "epoch": served_epoch,
            "snapshot": snapshot,
        }

    def _post_fence(
        self, tenant: str, engine: ClusteringEngine, payload: object
    ) -> Response:
        if not isinstance(payload, dict) or "epoch" not in payload:
            raise BadRequest('body must be {"epoch": N}')
        epoch = payload["epoch"]
        if isinstance(epoch, bool) or not isinstance(epoch, int):
            raise BadRequest(f'"epoch" must be an int, got {epoch!r}')
        try:
            engine.fence(epoch)
        except ValueError as exc:
            return 409, error_envelope("stale_epoch", str(exc)), {}
        return 200, {"tenant": tenant, "epoch": epoch, "fenced": True}, {}

    def _post_reparent(self, tenant: str, payload: object) -> Response:
        if not isinstance(payload, dict) or "replica_of" not in payload:
            raise BadRequest('body must be {"replica_of": "host:port"}')
        replica_of = payload["replica_of"]
        if not isinstance(replica_of, str):
            raise BadRequest(f'"replica_of" must be a string, got {replica_of!r}')
        if self._points_at_self(replica_of):
            raise BadRequest(
                f"replica_of {replica_of!r} points at this server itself; "
                "a standby cannot replicate from its own server"
            )
        try:
            document = self.manager.reparent(tenant, replica_of)
        except (OSError, ReplicationError) as exc:
            if isinstance(exc, ReplicationError) and not isinstance(
                exc.__cause__, OSError
            ):
                raise  # refused probe / state change: 409 replication_error
            # the new primary is unreachable: clean, retryable 409 (same
            # contract as standby creation against a dead primary)
            return (
                409,
                error_envelope(
                    "primary_unreachable",
                    f"cannot reach primary {replica_of!r}: {exc}",
                    retryable=True,
                ),
                {},
            )
        return 200, document, {}

    def _group_by(
        self,
        engine: ClusteringEngine,
        payload: object,
        view: Optional[object] = None,
        as_of: Optional[object] = None,
    ) -> Dict[str, object]:
        if not isinstance(payload, dict) or "vertices" not in payload:
            raise BadRequest('body must be {"vertices": [...]}')
        vertices = payload["vertices"]
        if not isinstance(vertices, list):
            raise BadRequest('"vertices" must be a list')
        query = [_decode_vertex(v) for v in vertices]
        if view is None:
            view = engine.view()
        start = _now()
        result = view.group_by(query)
        engine.metrics.observe_query(_now() - start)
        document: Dict[str, object] = {
            "view_version": view.version,
            "groups": {
                str(gid): sorted(members, key=repr)
                for gid, members in result.groups.items()
            },
        }
        if as_of is not None:
            document["as_of"] = as_of
        return document


def _decode_params(payload: object, defaults) -> "repro.StrCluParams":
    """Build tenant params from a JSON object, inheriting missing fields."""
    from dataclasses import replace

    from repro.graph.similarity import SimilarityKind

    if not isinstance(payload, dict):
        raise BadRequest('"params" must be an object')
    allowed = {"epsilon", "mu", "rho", "delta_star", "similarity", "seed", "max_samples"}
    unknown = set(payload) - allowed
    if unknown:
        raise BadRequest(f"unknown params fields: {', '.join(sorted(unknown))}")
    fields = dict(payload)
    if "similarity" in fields:
        try:
            fields["similarity"] = SimilarityKind(fields["similarity"])
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
    try:
        return replace(defaults, **fields)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"invalid params: {exc}") from exc


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, str, Dict[str, str], bytes]]:
    """Parse one HTTP/1.1 request; None on a cleanly closed connection."""
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split(None, 2)
    except ValueError:
        return None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise _ProtocolError(400, f"malformed Content-Length {raw_length!r}") from None
    if length < 0:
        raise _ProtocolError(400, f"malformed Content-Length {raw_length!r}")
    if length > MAX_BODY_BYTES:
        raise _ProtocolError(
            413, f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit"
        )
    body = await reader.readexactly(length) if length else b""
    path, _, query = target.partition("?")
    return method.upper(), path, query, headers, body


def _response_bytes(
    status: int,
    payload: bytes,
    keep_alive: bool,
    extra_headers: Optional[Headers] = None,
    content_type: str = "application/json",
) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        f"Connection: {connection}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + payload


def _parse_json(body: bytes) -> object:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"request body is not valid JSON: {exc}") from exc


def _parse_query(query: str) -> Dict[str, str]:
    """Query string → {name: last value} (the replication routes' params)."""
    return {
        name: values[-1]
        for name, values in parse_qs(query, keep_blank_values=True).items()
    }


def _checked_query(
    query: str, allowed: frozenset, path: str
) -> Dict[str, str]:
    """Parse a v1 read route's query string, rejecting unknown parameters.

    A mistyped parameter (``?asof=120``) silently ignored would serve the
    *latest* view while the caller believes they asked for history — on
    these routes that is a correctness hazard, so unknown names are a
    structured 400 listing what the route accepts.
    """
    params = _parse_query(query)
    unknown = set(params) - allowed
    if unknown:
        accepted = (
            f" (accepted: {', '.join(sorted(allowed))})" if allowed else ""
        )
        raise BadRequest(
            f"unknown query parameter(s) for {path}: "
            f"{', '.join(sorted(unknown))}{accepted}"
        )
    return params


def _query_int(query: Dict[str, str], name: str, default: int) -> int:
    value = query.get(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        raise BadRequest(f"query parameter {name!r} must be an int, got {value!r}") from None


def _query_float(query: Dict[str, str], name: str, default: float) -> float:
    value = query.get(name)
    if value is None:
        return default
    try:
        parsed = float(value)
    except ValueError:
        raise BadRequest(
            f"query parameter {name!r} must be a number, got {value!r}"
        ) from None
    if not math.isfinite(parsed):
        raise BadRequest(f"query parameter {name!r} must be finite, got {value!r}")
    return parsed


def _valid_trace_id(raw: Optional[str]) -> Optional[str]:
    """A well-formed ``X-Repro-Trace`` value, or None to mint one.

    The id is echoed back as a response header and stored verbatim in
    span records, so anything outside a short hex-ish token is ignored
    rather than reflected.
    """
    if not raw:
        return None
    value = raw.strip()
    if not value or len(value) > _TRACE_ID_MAX_LEN:
        return None
    if not all(char in _TRACE_ID_CHARS for char in value):
        return None
    return value


def _now() -> float:
    return time.perf_counter()


# ----------------------------------------------------------------------
# background runner (tests, examples, the load generator's HTTP mode)
# ----------------------------------------------------------------------
class BackgroundServer:
    """Run a :class:`ClusteringServiceServer` on a dedicated event-loop thread.

    Usage::

        with BackgroundServer(engine_or_manager) as server:
            client = ServiceClient("127.0.0.1", server.port)
            ...
    """

    def __init__(
        self,
        manager: Union[EngineManager, ClusteringEngine, ShardedEngine],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = ClusteringServiceServer(manager, host=host, port=port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def manager(self) -> EngineManager:
        return self.server.manager

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="clustering-service-http", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        if not self._ready.is_set():
            raise RuntimeError("server did not start within 10 s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:  # pragma: no cover - bind failures
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
            self._loop = None
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
