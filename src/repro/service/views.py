"""Immutable, snapshot-consistent clustering views.

The maintainers in :mod:`repro.core` are single-writer data structures: a
reader that interleaves with an update observes torn state.  The service
layer solves this the way snapshot-isolated databases do — the writer
publishes an immutable :class:`ClusteringView` after each micro-batch, and
every read (``cluster_of``, ``group_by``, ``stats``) runs against whichever
view was current when the read started.  Publication is a single attribute
assignment (atomic under the GIL), so reads are lock-free and never block
the writer; a reader holding an old view simply sees a slightly stale but
fully self-consistent clustering — read-committed snapshot isolation at
micro-batch granularity.

A view is *self-contained*: it precomputes the vertex→cluster membership
map from the maintainer's :class:`~repro.core.result.Clustering`, so
answering queries never touches the live maintainer.  ``group_by`` over a
view partitions the query set exactly as
:meth:`repro.core.dynstrclu.DynStrClu.group_by` does — a core contributes
the cluster of its ``G_core`` component, a non-core vertex the clusters of
its sim-core neighbours — because cluster membership in the retrieved
``Clustering`` is defined by exactly that relation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from repro.core.result import Clustering, GroupByResult, group_by_membership
from repro.graph.dynamic_graph import Vertex


@dataclass(frozen=True)
class ClusteringView:
    """One published snapshot of the maintained clustering.

    Attributes
    ----------
    version:
        Number of updates the maintainer had applied when this view was
        captured.  Views from one engine are totally ordered by version,
        and a view's content is exactly the clustering after the first
        ``version`` updates of the stream — the invariant the snapshot-
        consistency tests assert.
    clustering:
        The full :class:`Clustering` at that point.
    num_vertices / num_edges:
        Graph size at capture time (for stats).
    published_at:
        Wall-clock publication time (``time.time()``).
    """

    version: int
    clustering: Clustering
    num_vertices: int = 0
    num_edges: int = 0
    published_at: float = field(default_factory=time.time)
    _membership: Mapping[Vertex, Tuple[int, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, maintainer, version: int) -> "ClusteringView":
        """Capture the current state of a maintainer (DynStrClu or DynELM).

        Runs inside the writer thread, between batches, so it sees a
        quiescent maintainer.  Cost is one O(n + m) clustering retrieval
        plus the membership index — amortised over the whole batch.
        """
        clustering = maintainer.clustering()
        membership = {
            v: tuple(indices) for v, indices in clustering.membership().items()
        }
        graph = maintainer.graph
        return cls(
            version=version,
            clustering=clustering,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            _membership=membership,
        )

    @classmethod
    def empty(cls) -> "ClusteringView":
        """The view an engine publishes before any update has been applied."""
        return cls(version=0, clustering=Clustering())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cluster_of(self, v: Vertex) -> Tuple[int, ...]:
        """Indices of every cluster containing ``v`` (empty for noise/unknown)."""
        return self._membership.get(v, ())

    def group_by(self, query: Iterable[Vertex]) -> GroupByResult:
        """Cluster-group-by (Definition 3.2) against this snapshot.

        Groups are keyed by cluster index within this view; identifiers are
        not stable across views (matching the opaque component identifiers
        of the live query path).
        """
        return group_by_membership(self._membership, query)

    def stats(self) -> Dict[str, object]:
        """Headline statistics of this snapshot (JSON-serialisable)."""
        summary = self.clustering.summary()
        return {
            "view_version": self.version,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "published_at": self.published_at,
            **summary,
        }
