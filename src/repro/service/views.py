"""Immutable, snapshot-consistent clustering views with incremental capture.

The maintainers in :mod:`repro.core` are single-writer data structures: a
reader that interleaves with an update observes torn state.  The service
layer solves this the way snapshot-isolated databases do — the writer
publishes an immutable :class:`ClusteringView` after each micro-batch, and
every read (``cluster_of``, ``group_by``, ``stats``) runs against whichever
view was current when the read started.  Publication is a single attribute
assignment (atomic under the GIL), so reads are lock-free and never block
the writer; a reader holding an old view simply sees a slightly stale but
fully self-consistent clustering — read-committed snapshot isolation at
micro-batch granularity.

A view is *self-contained*: it holds the vertex→cluster membership map (and
the role sets) independently of the live maintainer, so answering queries
never touches it.  Two capture strategies produce that state:

* :meth:`ClusteringView.capture` — the full O(n + m) retrieval used at
  startup, after recovery, and as the fallback;
* :meth:`ClusteringView.patched` — incremental capture: view N+1 is built
  from view N by re-deriving only the *dirty region* around the flip set
  ``F`` that the backend reported (:class:`~repro.core.result.ViewDelta`).
  The membership and role maps are :class:`PersistentMap` instances —
  hashed bucket arrays shared structurally between consecutive views, with
  only the buckets touched by the patch copied — so publication costs
  O(|F| log n)-ish instead of O(n + m).

``group_by`` over a view partitions the query set exactly as
:meth:`repro.core.dynstrclu.DynStrClu.group_by` does, because cluster
membership in the view is defined by exactly that relation.  Cluster
identifiers are opaque and not stable across views (matching the opaque
component identifiers of the live query path).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.result import (
    Clustering,
    GroupByResult,
    clustering_from_membership,
    group_by_membership,
)
from repro.graph.dynamic_graph import Vertex


class PersistentMap(Mapping):
    """An immutable hash map with copy-on-write buckets.

    Entries are spread over ``2^k`` dict buckets by key hash.
    :meth:`assign` produces a *new* map that shares every untouched bucket
    with its parent and copies only the buckets containing changed keys —
    so a patch of ``d`` entries costs ``O(d · load)`` instead of ``O(n)``,
    while lookups stay plain dict gets.

    The bucket count is fixed at construction (:meth:`build` sizes it for
    the expected population); when the population outgrows the geometry,
    :attr:`overloaded` turns true and the caller is expected to rebuild —
    the view layer folds that rebuild into its full-capture fallback, which
    amortises re-bucketing over geometric growth.
    """

    __slots__ = ("_buckets", "_mask", "_size")

    #: Average entries per bucket :meth:`build` aims for.
    TARGET_LOAD = 6
    #: Load factor beyond which :attr:`overloaded` asks for a rebuild.
    REBUILD_LOAD = 24

    def __init__(self, buckets: Tuple[Dict, ...], size: int) -> None:
        self._buckets = buckets
        self._mask = len(buckets) - 1
        self._size = size

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "PersistentMap":
        return cls(({},), 0)

    @classmethod
    def build(cls, items: Mapping, expect: Optional[int] = None) -> "PersistentMap":
        """Bulk-build a map sized for ``expect`` entries (default: len)."""
        population = max(len(items), expect or 0, 1)
        num_buckets = 1
        while num_buckets * cls.TARGET_LOAD < population:
            num_buckets <<= 1
        buckets: List[Dict] = [dict() for _ in range(num_buckets)]
        mask = num_buckets - 1
        for key, value in items.items():
            buckets[hash(key) & mask][key] = value
        return cls(tuple(buckets), len(items))

    def assign(self, changes: Mapping) -> "PersistentMap":
        """A new map with ``changes`` applied (value ``None`` deletes).

        Shares every bucket no changed key hashes into.
        """
        if not changes:
            return self
        touched: Dict[int, Dict] = {}
        size = self._size
        for key, value in changes.items():
            index = hash(key) & self._mask
            bucket = touched.get(index)
            if bucket is None:
                bucket = dict(self._buckets[index])
                touched[index] = bucket
            if value is None:
                if key in bucket:
                    del bucket[key]
                    size -= 1
            else:
                if key not in bucket:
                    size += 1
                bucket[key] = value
        buckets = list(self._buckets)
        for index, bucket in touched.items():
            buckets[index] = bucket
        return PersistentMap(tuple(buckets), size)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def get(self, key, default=None):
        return self._buckets[hash(key) & self._mask].get(key, default)

    def __getitem__(self, key):
        return self._buckets[hash(key) & self._mask][key]

    def __contains__(self, key) -> bool:
        return key in self._buckets[hash(key) & self._mask]

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator:
        for bucket in self._buckets:
            yield from bucket

    def items(self):
        for bucket in self._buckets:
            yield from bucket.items()

    def values(self):
        for bucket in self._buckets:
            yield from bucket.values()

    @property
    def overloaded(self) -> bool:
        """True when the population has outgrown the bucket geometry."""
        return self._size > self.REBUILD_LOAD * len(self._buckets)


@dataclass(frozen=True)
class ClusteringView:
    """One published snapshot of the maintained clustering.

    Attributes
    ----------
    version:
        Number of updates the maintainer had applied when this view was
        captured.  Views from one engine are totally ordered by version,
        and a view's content is exactly the clustering after the first
        ``version`` updates of the stream — the invariant the snapshot-
        consistency tests assert.
    num_vertices / num_edges:
        Graph size at capture time (for stats).
    published_at:
        Wall-clock publication time (``time.time()``) — an *event
        timestamp* for display and log correlation, never used in duration
        arithmetic (elapsed times in the service layer come from the
        monotonic clocks; see ``tests/service/test_time_sources.py``).
    """

    version: int
    num_vertices: int = 0
    num_edges: int = 0
    published_at: float = field(default_factory=time.time)
    #: vertex → ascending tuple of opaque cluster keys
    _membership: PersistentMap = field(default_factory=PersistentMap.empty, repr=False)
    #: cluster key → frozenset of member vertices
    _clusters: PersistentMap = field(default_factory=PersistentMap.empty, repr=False)
    #: role sets, stored as key-presence maps (value is always True)
    _cores: PersistentMap = field(default_factory=PersistentMap.empty, repr=False)
    _hubs: PersistentMap = field(default_factory=PersistentMap.empty, repr=False)
    _noise: PersistentMap = field(default_factory=PersistentMap.empty, repr=False)
    #: next cluster key to allocate (keys are engine-lifetime unique)
    _next_key: int = 0
    #: the exact retrieval this view was full-captured from, when it was
    _exact_clustering: Optional[Clustering] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, maintainer, version: int) -> "ClusteringView":
        """Full capture of a maintainer's state (any backend).

        Runs inside the writer thread, between batches, so it sees a
        quiescent maintainer.  Cost is one O(n + m) clustering retrieval
        plus the membership index — the fallback when no
        :class:`~repro.core.result.ViewDelta` is available, and the path
        that (re)sizes the persistent buckets for the current graph.
        """
        clustering = maintainer.clustering()
        graph = maintainer.graph
        n = graph.num_vertices
        membership = PersistentMap.build(
            {v: tuple(indices) for v, indices in clustering.membership().items()},
            expect=n,
        )
        clusters = PersistentMap.build(
            {index: frozenset(c) for index, c in enumerate(clustering.clusters)}
        )
        return cls(
            version=version,
            num_vertices=n,
            num_edges=graph.num_edges,
            _membership=membership,
            _clusters=clusters,
            _cores=PersistentMap.build(dict.fromkeys(clustering.cores, True)),
            _hubs=PersistentMap.build(dict.fromkeys(clustering.hubs, True)),
            _noise=PersistentMap.build(dict.fromkeys(clustering.noise, True), expect=n),
            _next_key=clustering.num_clusters,
            _exact_clustering=clustering,
        )

    @classmethod
    def empty(cls) -> "ClusteringView":
        """The view an engine publishes before any update has been applied."""
        return cls(version=0)

    def patched(
        self,
        maintainer,
        flips: Iterable[Vertex],
        version: int,
        max_dirty: Optional[int] = None,
    ) -> Optional["ClusteringView"]:
        """Incremental capture: derive view N+1 from this view and ``F``.

        ``maintainer`` must be a delta-capable backend (``is_core`` /
        ``core_component`` / ``core_attachments`` probes — see
        :meth:`repro.core.api.Clusterer.drain_view_delta`); ``flips`` is
        the drained flip set.  Returns ``None`` when the caller should
        fall back to :meth:`capture` instead:

        * the dirty region exceeded ``max_dirty`` (a full retrieval is
          cheaper), or
        * the persistent buckets outgrew their geometry (the full capture
          re-sizes them), or
        * the flip set failed the closure invariant (a newly derived
          cluster reached outside the dirty region — over-cautious
          protection against an under-reporting backend).

        The patch is *sound* because the flip set is closed under cluster
        contamination once expanded one level: every old cluster touching a
        flipped vertex is entirely dirty, and any new cluster containing a
        dirty vertex lies entirely inside the dirty region (each path in
        the new ``G_core`` from a dirty core to another core crosses either
        an old-cluster co-membership or a freshly flipped edge endpoint).
        Untouched clusters keep their keys, members and roles verbatim.
        """
        membership = self._membership
        clusters = self._clusters
        graph = maintainer.graph

        # --- expand the flip set into the dirty region --------------------
        dirty: Set[Vertex] = set(flips)
        dirty_keys: Set[int] = set()
        for v in flips:
            dirty_keys.update(membership.get(v, ()))
        for key in dirty_keys:
            dirty.update(clusters.get(key, ()))
        if max_dirty is not None and len(dirty) > max_dirty:
            return None

        # --- re-derive the dirty region from the live structures ----------
        components: Dict[int, List[Vertex]] = {}
        for d in dirty:
            if maintainer.is_core(d):
                components.setdefault(maintainer.core_component(d), []).append(d)

        next_key = self._next_key
        cluster_changes: Dict[int, Optional[FrozenSet[Vertex]]] = {
            key: None for key in dirty_keys
        }
        gained: Dict[Vertex, List[int]] = {}
        for comp_id in sorted(components):
            comp_cores = components[comp_id]
            members: Set[Vertex] = set(comp_cores)
            for core in comp_cores:
                members.update(maintainer.core_attachments(core))
            if not members.issubset(dirty):
                return None  # closure invariant violated: refuse to patch
            key = next_key
            next_key += 1
            cluster_changes[key] = frozenset(members)
            for member in members:
                gained.setdefault(member, []).append(key)

        # --- per-vertex membership and role updates ------------------------
        membership_changes: Dict[Vertex, Optional[Tuple[int, ...]]] = {}
        core_changes: Dict[Vertex, Optional[bool]] = {}
        hub_changes: Dict[Vertex, Optional[bool]] = {}
        noise_changes: Dict[Vertex, Optional[bool]] = {}
        for d in dirty:
            kept = [k for k in membership.get(d, ()) if k not in dirty_keys]
            keys = tuple(sorted(kept + gained.get(d, [])))
            membership_changes[d] = keys if keys else None
            is_core = bool(maintainer.is_core(d))
            in_graph = graph.has_vertex(d)
            core_changes[d] = True if is_core else None
            hub_changes[d] = (
                True if (in_graph and not is_core and len(keys) >= 2) else None
            )
            noise_changes[d] = (
                True if (in_graph and not is_core and not keys) else None
            )

        new_maps = (
            membership.assign(membership_changes),
            clusters.assign(cluster_changes),
            self._cores.assign(core_changes),
            self._hubs.assign(hub_changes),
            self._noise.assign(noise_changes),
        )
        if any(pm.overloaded for pm in new_maps):
            return None  # let the full capture re-bucket for the new size
        return ClusteringView(
            version=version,
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            _membership=new_maps[0],
            _clusters=new_maps[1],
            _cores=new_maps[2],
            _hubs=new_maps[3],
            _noise=new_maps[4],
            _next_key=next_key,
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cluster_of(self, v: Vertex) -> Tuple[int, ...]:
        """Keys of every cluster containing ``v`` (empty for noise/unknown)."""
        return self._membership.get(v, ())

    def group_by(self, query: Iterable[Vertex]) -> GroupByResult:
        """Cluster-group-by (Definition 3.2) against this snapshot.

        Groups are keyed by the view's opaque cluster keys; identifiers are
        not stable across views (matching the opaque component identifiers
        of the live query path).
        """
        return group_by_membership(self._membership, query)

    @property
    def clustering(self) -> Clustering:
        """The full :class:`Clustering` of this snapshot.

        Full-captured views return the retrieval they were built from;
        incrementally patched views materialise it lazily (O(n), memoised)
        from the persistent maps — reads that only need ``cluster_of`` /
        ``group_by`` / ``stats`` never pay for it.
        """
        if self._exact_clustering is not None:
            return self._exact_clustering
        cached = self.__dict__.get("_lazy_clustering")
        if cached is None:
            cached = clustering_from_membership(
                dict(self._membership.items()),
                set(self._cores),
                set(self._hubs),
                set(self._noise),
            )
            object.__setattr__(self, "_lazy_clustering", cached)
        return cached

    def stats(self) -> Dict[str, object]:
        """Headline statistics of this snapshot (JSON-serialisable)."""
        return {
            "view_version": self.version,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "published_at": self.published_at,
            "clusters": len(self._clusters),
            "cores": len(self._cores),
            "hubs": len(self._hubs),
            "noise": len(self._noise),
            "largest_cluster": self._largest_cluster(),
        }

    def _largest_cluster(self) -> int:
        cached = self.__dict__.get("_lazy_largest")
        if cached is None:
            cached = max((len(members) for members in self._clusters.values()), default=0)
            object.__setattr__(self, "_lazy_largest", cached)
        return cached
