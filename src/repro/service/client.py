"""Stdlib HTTP client for the v1 multi-tenant clustering service.

:class:`ServiceClient` wraps ``http.client`` (no third-party dependencies)
and mirrors the server's v1 surface with typed helpers: tenant
administration (:meth:`list_tenants` / :meth:`create_tenant` /
:meth:`delete_tenant`) plus the four per-tenant routes, bound to the
client's ``tenant`` (``"default"`` unless overridden).  One persistent
keep-alive connection is maintained per client; the client is protected by
a lock so it can be shared between load-generator threads, and transparently
reconnects once if the server closed the idle connection.

Errors carry the server's structured envelope: :class:`ServiceError` exposes
``code`` / ``retryable``, and the 429 backpressure path raises
:class:`BackpressureError` with the accepted count, the queue depth and the
server's suggested ``retry_after_ms``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union
from urllib.parse import quote

from repro.core.dynelm import Update
from repro.core.result import GroupByResult
from repro.graph.dynamic_graph import Vertex
from repro.persistence.updatelog import format_vertex_token
from repro.service.server import encode_update
from repro.service.replication import parse_primary_url

#: An ``as_of`` argument: one applied position (unsharded tenants), a
#: per-shard position sequence (sharded tenants), or the string
#: ``"latest"`` (the live view — useful to echo which view was served).
AsOf = Union[int, str, Sequence[int]]

#: Error codes that mean "this endpoint is the wrong place to ask, the
#: topology moved" — a replica-set client re-resolves and retries on
#: these (plus raw connection failures), never on ordinary errors.
_REROUTE_CODES = frozenset(
    {"tenant_fenced", "tenant_read_only", "unknown_tenant", "engine_unavailable"}
)


def format_as_of(as_of: AsOf) -> str:
    """The wire form of an ``as_of`` argument (see :data:`AsOf`)."""
    if isinstance(as_of, str):
        return as_of
    if isinstance(as_of, bool):
        raise ValueError(f"as_of must be a position, tuple or 'latest', got {as_of!r}")
    if isinstance(as_of, int):
        return str(as_of)
    try:
        return ",".join(str(int(position)) for position in as_of)
    except (TypeError, ValueError):
        raise ValueError(
            f"as_of must be a position, a per-shard position sequence or "
            f"'latest', got {as_of!r}"
        ) from None


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    ``code`` and ``retryable`` are parsed from the v1 error envelope
    (``{"error": {"code", "message", "retryable"}}``); for legacy flat
    errors they fall back to ``"error"`` / ``False``.
    """

    def __init__(
        self,
        status: int,
        document: object,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(f"service returned {status}: {document!r}")
        self.status = status
        self.document = document
        self.headers = headers if headers is not None else {}

    @property
    def _envelope(self) -> Dict[str, object]:
        if isinstance(self.document, dict):
            error = self.document.get("error")
            if isinstance(error, dict):
                return error
        return {}

    @property
    def code(self) -> str:
        return str(self._envelope.get("code", "error"))

    @property
    def retryable(self) -> bool:
        return bool(self._envelope.get("retryable", False))


class BackpressureError(ServiceError):
    """The ingest queue was full (the v1 429 path).

    Exposes everything the server knows about the shed load: how much of
    the batch got in (``accepted``), how far behind the writer is
    (``queue_depth`` of ``queue_capacity``) and when to try again
    (``retry_after_ms``).

    ``total_accepted`` equals ``accepted`` for a single attempt; when
    :meth:`ServiceClient.submit_updates` retried, it is the sum over every
    attempt — what actually reached the server before giving up.
    """

    @property
    def total_accepted(self) -> int:
        """Updates accepted across all attempts (see class docstring)."""
        return getattr(self, "_total_accepted", self.accepted)

    def _int_field(self, name: str) -> int:
        if isinstance(self.document, dict):
            value = self.document.get(name, 0)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return int(value)
        return 0

    @property
    def accepted(self) -> int:
        return self._int_field("accepted")

    @property
    def queue_depth(self) -> int:
        return self._int_field("queue_depth")

    @property
    def queue_capacity(self) -> int:
        return self._int_field("queue_capacity")

    @property
    def retry_after_ms(self) -> int:
        return self._int_field("retry_after_ms")

    @property
    def retry_after_s(self) -> float:
        """When to retry, in seconds: the *smaller* of body and header.

        The JSON body's ``retry_after_ms`` is the precise hint; the
        ``Retry-After`` header is its integer-second ceiling (coarser,
        never earlier).  A well-behaved client therefore honours whichever
        is smaller, and retries immediately when neither is present.
        """
        candidates = []
        if isinstance(self.document, dict) and "retry_after_ms" in self.document:
            candidates.append(self.retry_after_ms / 1000.0)
        header = self.headers.get("retry-after")
        if header is not None:
            try:
                candidates.append(float(header))
            except ValueError:
                pass
        return max(0.0, min(candidates)) if candidates else 0.0


class ServiceClient:
    """Synchronous JSON/HTTP client matching :class:`ClusteringServiceServer`.

    Example
    -------
    ::

        client = ServiceClient("127.0.0.1", 8321, tenant="acme")
        client.create_tenant("acme", exist_ok=True)
        client.submit_updates([Update.insert(1, 2), Update.insert(2, 3)])
        result = client.group_by([1, 2, 3])

    Replica-set mode
    ----------------
    ``ServiceClient(endpoints=["h1:p1", "h2:p2", ...], tenant=...)``
    turns the client into a fleet router: reads (``group_by`` /
    ``cluster_of`` / ``stats``) go to the least-lagged standby, writes to
    the primary, and the topology is re-resolved transparently on
    ``tenant_fenced`` / ``tenant_read_only`` / connection failure — so a
    watchdog-driven failover behind the client needs no caller changes.
    ``min_position=`` on the read methods is a read-your-writes barrier
    (pair with :meth:`primary_position`).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        timeout: float = 10.0,
        tenant: str = "default",
        endpoints: Optional[Sequence[str]] = None,
        topology_max_age: float = 2.0,
    ) -> None:
        if endpoints is not None:
            fleet = [str(endpoint) for endpoint in endpoints]
            if not fleet:
                raise ValueError("endpoints must be a non-empty list of host:port")
            # the first endpoint doubles as the default server for the
            # un-routed surface (healthz, tenant admin, wal/snapshot)
            host, port = parse_primary_url(fleet[0])
            endpoints = fleet
        self.host = host
        self.port = port
        self.timeout = timeout
        self.tenant = tenant
        self.endpoints: Optional[List[str]] = (
            list(endpoints) if endpoints is not None else None
        )
        self.topology_max_age = topology_max_age
        self._lock = threading.Lock()
        self._connection: Optional[http.client.HTTPConnection] = None  # guarded-by: _lock
        # replica-set state: lazily-built per-endpoint sub-clients plus a
        # cached fleet topology (who is primary, how far along each
        # standby is) refreshed at most every topology_max_age seconds
        self._topology_lock = threading.Lock()
        self._peers: Dict[str, "ServiceClient"] = {}  # guarded-by: _topology_lock
        self._fleet: Dict[str, Dict[str, object]] = {}  # guarded-by: _topology_lock
        self._primary_endpoint: Optional[str] = None  # guarded-by: _topology_lock
        self._topology_at: Optional[float] = None  # guarded-by: _topology_lock

    @classmethod
    def wait_until_healthy(
        cls,
        host: str,
        port: int,
        timeout: float = 15.0,
        interval: float = 0.2,
    ) -> None:
        """Block until ``GET /v1/healthz`` answers on ``host:port``.

        The shared boot-wait of every harness that spawns a real server
        (the CI smokes, the capacity-bench runner).  Raises
        :class:`RuntimeError` carrying the last failure when the server
        never comes up within ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        last: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                with cls(host, port, timeout=2.0) as probe:
                    probe.healthz()
                    return
            except (OSError, ServiceError) as exc:
                last = exc
                time.sleep(interval)
        raise RuntimeError(
            f"server on {host}:{port} never became healthy "
            f"within {timeout:.0f}s: {last}"
        )

    def for_tenant(self, tenant: str) -> "ServiceClient":
        """A new client for another tenant on the same server(s)."""
        if self.endpoints is not None:
            return ServiceClient(
                timeout=self.timeout,
                tenant=tenant,
                endpoints=self.endpoints,
                topology_max_age=self.topology_max_age,
            )
        return ServiceClient(self.host, self.port, timeout=self.timeout, tenant=tenant)

    def _tenant_path(self, suffix: str, as_of: Optional[AsOf] = None) -> str:
        path = f"/v1/tenants/{self.tenant}{suffix}"
        if as_of is not None:
            path += f"?as_of={quote(format_as_of(as_of), safe=',')}"
        return path

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, object, Dict[str, str]]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body is not None else {}
        if extra_headers:
            headers.update(extra_headers)
        with self._lock:
            for attempt in (0, 1):
                if self._connection is None:
                    self._connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                try:
                    self._connection.request(method, path, body=body, headers=headers)
                    response = self._connection.getresponse()
                    raw = response.read()
                    break
                except (ConnectionError, http.client.HTTPException, OSError):
                    # stale keep-alive connection: reconnect once
                    self._connection.close()
                    self._connection = None
                    if attempt:
                        raise
        try:
            document = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            document = raw.decode("utf-8", errors="replace")
        response_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        return response.status, document, response_headers

    def _expect_ok(
        self,
        method: str,
        path: str,
        payload: Optional[object] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> object:
        status, document, headers = self._request(method, path, payload, extra_headers)
        if status == 429:
            # on the v1 surface 429 is the only backpressure status; a 503
            # means the engine itself is unavailable and must surface as a
            # plain (retryable) ServiceError, not as load shedding
            raise BackpressureError(status, document, headers)
        if not 200 <= status < 300:
            raise ServiceError(status, document, headers)
        return document

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None
        with self._topology_lock:
            peers = list(self._peers.values())
            self._peers.clear()
        for peer in peers:
            peer.close()

    # ------------------------------------------------------------------
    # replica-set routing (endpoints= mode)
    # ------------------------------------------------------------------
    def _peer(self, endpoint: str) -> "ServiceClient":
        with self._topology_lock:
            peer = self._peers.get(endpoint)
            if peer is None:
                host, port = parse_primary_url(endpoint)
                peer = ServiceClient(
                    host, port, timeout=self.timeout, tenant=self.tenant
                )
                self._peers[endpoint] = peer
        return peer

    def _refresh_topology(self, force: bool = False) -> None:
        """Re-learn who is primary and how far along each standby is.

        Probes every endpoint's ``topology`` route; unreachable members
        are simply absent from the cache this round.  When several
        members claim ``primary`` (a just-promoted standby racing a
        zombie), the highest epoch wins — the fenced zombie answers
        writes with ``tenant_fenced`` anyway, so a wrong pick here only
        costs one reroute.
        """
        now = time.monotonic()
        with self._topology_lock:
            fresh = (
                self._topology_at is not None
                and now - self._topology_at < self.topology_max_age
            )
            if fresh and not force:
                return
        fleet: Dict[str, Dict[str, object]] = {}
        for endpoint in self.endpoints or []:
            peer = self._peer(endpoint)
            try:
                document = peer._expect_ok(
                    "GET", f"/v1/tenants/{peer.tenant}/topology"
                )
            except (OSError, ServiceError):
                continue
            if isinstance(document, dict):
                fleet[endpoint] = document
        primary: Optional[str] = None
        best_epoch = -1
        for endpoint, document in fleet.items():
            if document.get("role") == "primary" and not document.get("fenced"):
                epoch = int(document.get("epoch", 0))  # type: ignore[arg-type]
                if epoch > best_epoch:
                    best_epoch = epoch
                    primary = endpoint
        with self._topology_lock:
            self._fleet = fleet
            self._primary_endpoint = primary
            self._topology_at = time.monotonic()

    def _select_reader(
        self, min_position: Optional[int] = None, force: bool = False
    ) -> "ServiceClient":
        """The least-lagged standby (ties: most applied), else the primary.

        With ``min_position``, only standbys whose *cached* applied
        position already covers it qualify — positions are monotone, so
        the cache is a safe lower bound — and the primary (which always
        satisfies any barrier it acked) is the fallback.
        """
        self._refresh_topology(force=force)
        with self._topology_lock:
            fleet = dict(self._fleet)
            primary = self._primary_endpoint
        floor = 0 if min_position is None else int(min_position)
        candidates: List[Tuple[int, int, str]] = []
        for endpoint, document in fleet.items():
            if document.get("role") != "standby":
                continue
            applied = int(document.get("applied", 0))  # type: ignore[arg-type]
            if applied < floor:
                continue
            lag = int(document.get("lag", 0))  # type: ignore[arg-type]
            candidates.append((lag, -applied, endpoint))
        if candidates:
            candidates.sort()
            return self._peer(candidates[0][2])
        if primary is not None:
            return self._peer(primary)
        # nothing answered the topology probe: try the configured head
        # and let the per-request error drive the next refresh
        return self._peer((self.endpoints or [f"{self.host}:{self.port}"])[0])

    def _select_writer(self) -> "ServiceClient":
        with self._topology_lock:
            primary = self._primary_endpoint
        if primary is not None:
            return self._peer(primary)
        return self._peer((self.endpoints or [f"{self.host}:{self.port}"])[0])

    def _routed_read(
        self,
        method: str,
        suffix: str,
        payload: Optional[object] = None,
        as_of: Optional[AsOf] = None,
        min_position: Optional[int] = None,
    ) -> object:
        if self.endpoints is None:
            return self._expect_ok(method, self._tenant_path(suffix, as_of=as_of), payload)
        last_error: Optional[Exception] = None
        for attempt in range(3):
            peer = self._select_reader(min_position, force=attempt > 0)
            try:
                return peer._expect_ok(
                    method, peer._tenant_path(suffix, as_of=as_of), payload
                )
            except BackpressureError:
                raise
            except ServiceError as exc:
                if exc.code not in _REROUTE_CODES:
                    raise
                last_error = exc
            except OSError as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    def _routed_write(
        self,
        method: str,
        suffix: str,
        payload: Optional[object] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> object:
        if self.endpoints is None:
            return self._expect_ok(
                method, self._tenant_path(suffix), payload, extra_headers
            )
        last_error: Optional[Exception] = None
        for attempt in range(4):
            if attempt:
                # a mid-failover fleet needs a beat for the watchdog to
                # promote; burning all attempts in microseconds helps no one
                time.sleep(0.05 * attempt)
            self._refresh_topology(force=attempt > 0)
            peer = self._select_writer()
            try:
                return peer._expect_ok(
                    method, peer._tenant_path(suffix), payload, extra_headers
                )
            except BackpressureError:
                raise
            except ServiceError as exc:
                if exc.code not in _REROUTE_CODES:
                    raise
                last_error = exc
            except OSError as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # service-level routes
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """Liveness document: status, library version, tenant aggregate."""
        return self._expect_ok("GET", "/v1/healthz")  # type: ignore[return-value]

    def metrics_text(self) -> str:
        """The raw ``/metrics`` Prometheus text exposition (version 0.0.4)."""
        status, document, headers = self._request("GET", "/metrics")
        if not 200 <= status < 300:
            raise ServiceError(status, document, headers)
        if not isinstance(document, str):
            raise ServiceError(
                status, {"error": "non-text /metrics payload"}, headers
            )
        return document

    def debug_traces(
        self, trace_id: Optional[str] = None, limit: Optional[int] = None
    ) -> Dict[str, object]:
        """Recent completed spans (optionally one trace's, last ``limit``)."""
        params = []
        if trace_id is not None:
            params.append(f"trace_id={quote(trace_id, safe='')}")
        if limit is not None:
            params.append(f"limit={int(limit)}")
        path = "/v1/debug/traces"
        if params:
            path += "?" + "&".join(params)
        return self._expect_ok("GET", path)  # type: ignore[return-value]

    def debug_decisions(self, limit: Optional[int] = None) -> Dict[str, object]:
        """The fleet decision log's most recent events over HTTP."""
        path = "/v1/debug/decisions"
        if limit is not None:
            path += f"?limit={int(limit)}"
        return self._expect_ok("GET", path)  # type: ignore[return-value]

    def debug_profile(
        self, seconds: float = 1.0, interval: Optional[float] = None
    ) -> Dict[str, object]:
        """Sample the server's thread stacks for ``seconds``.

        Returns flamegraph-ready collapsed stacks (``"frame;frame 12"``
        lines under ``"stacks"``).  The server clamps the window, but the
        client timeout must out-wait it — pass a generous ``timeout`` to
        the constructor for long profiles.
        """
        path = f"/v1/debug/profile?seconds={float(seconds)}"
        if interval is not None:
            path += f"&interval={float(interval)}"
        return self._expect_ok("GET", path)  # type: ignore[return-value]

    def list_tenants(self) -> List[Dict[str, object]]:
        """Headline documents for every hosted tenant."""
        document = self._expect_ok("GET", "/v1/tenants")
        return list(document["tenants"])  # type: ignore[index]

    def create_tenant(
        self,
        name: Optional[str] = None,
        backend: Optional[str] = None,
        queue_capacity: Optional[int] = None,
        params: Optional[Dict[str, object]] = None,
        exist_ok: bool = False,
        shards: Optional[int] = None,
        replica_of: Optional[str] = None,
    ) -> Dict[str, object]:
        """Create a tenant (the client's own tenant when ``name`` is None).

        ``params`` is a partial override of the server's default parameter
        bundle (e.g. ``{"epsilon": 0.4, "mu": 3}``).  ``shards`` selects
        the tenant's engine shape: ``1`` (or ``None``, the server default)
        is a single engine, ``N > 1`` a hash-partitioned sharded engine.
        ``replica_of`` (``host:port`` of the primary server) creates the
        tenant as a warm *standby* replica of the same-named tenant there:
        shape and state are discovered from the primary, reads are served
        locally, writes are rejected until ``promote_tenant``.  With
        ``exist_ok`` a 409 from an already-existing tenant is swallowed
        and the existing tenant's description returned.
        """
        tenant = name if name is not None else self.tenant
        payload: Dict[str, object] = {"tenant": tenant}
        if backend is not None:
            payload["backend"] = backend
        if queue_capacity is not None:
            payload["queue_capacity"] = queue_capacity
        if params is not None:
            payload["params"] = params
        if shards is not None:
            payload["shards"] = shards
        if replica_of is not None:
            payload["replica_of"] = replica_of
        try:
            return self._expect_ok("POST", "/v1/tenants", payload)  # type: ignore[return-value]
        except ServiceError as exc:
            if exist_ok and exc.status == 409 and exc.code == "tenant_exists":
                return self.describe_tenant(tenant)
            raise

    def describe_tenant(self, name: Optional[str] = None) -> Dict[str, object]:
        """One tenant's headline document."""
        tenant = name if name is not None else self.tenant
        return self._expect_ok("GET", f"/v1/tenants/{tenant}")  # type: ignore[return-value]

    def delete_tenant(self, name: Optional[str] = None) -> None:
        """Delete a tenant (the client's own tenant when ``name`` is None)."""
        tenant = name if name is not None else self.tenant
        self._expect_ok("DELETE", f"/v1/tenants/{tenant}")

    # ------------------------------------------------------------------
    # replication routes
    # ------------------------------------------------------------------
    def promote_tenant(self, name: Optional[str] = None) -> Dict[str, object]:
        """Promote a standby tenant to primary; returns the promotion document.

        The server fences the old primary (best effort — an unreachable
        one is presumed dead), drains the standby's replay queue and flips
        it writable; the response carries the new ``epoch`` and the
        ``applied`` position at promotion.
        """
        tenant = name if name is not None else self.tenant
        return self._expect_ok(  # type: ignore[return-value]
            "POST", f"/v1/tenants/{tenant}/promote"
        )

    def fence_tenant(self, epoch: int, name: Optional[str] = None) -> Dict[str, object]:
        """Fence a (primary) tenant at ``epoch``: it rejects writes from now on."""
        tenant = name if name is not None else self.tenant
        return self._expect_ok(  # type: ignore[return-value]
            "POST", f"/v1/tenants/{tenant}/fence", {"epoch": epoch}
        )

    def topology(self, name: Optional[str] = None) -> Dict[str, object]:
        """The replication-topology document of a tenant.

        Single-endpoint mode returns the server's
        ``GET /v1/tenants/{t}/topology`` body (role, upstream, per-shard
        positions with wall-clock staleness, downstream acks).  In
        replica-set mode it instead returns the *fleet* view the router
        uses: ``{"primary": endpoint|None, "endpoints": {endpoint:
        topology document}}`` after a forced refresh.
        """
        if self.endpoints is not None and name is None:
            self._refresh_topology(force=True)
            with self._topology_lock:
                return {
                    "tenant": self.tenant,
                    "primary": self._primary_endpoint,
                    "endpoints": dict(self._fleet),
                }
        tenant = name if name is not None else self.tenant
        return self._expect_ok(  # type: ignore[return-value]
            "GET", f"/v1/tenants/{tenant}/topology"
        )

    def reparent_tenant(
        self, replica_of: str, name: Optional[str] = None
    ) -> Dict[str, object]:
        """Re-point a standby tenant at a new upstream primary.

        The orphan-rescue call after a promotion elsewhere in the fleet;
        the response says whether the standby could resume in place or
        had to re-seed (``{"reseeded": bool}``).
        """
        tenant = name if name is not None else self.tenant
        return self._expect_ok(  # type: ignore[return-value]
            "POST", f"/v1/tenants/{tenant}/reparent", {"replica_of": replica_of}
        )

    def primary_position(self) -> int:
        """The primary's current applied position (a read-your-writes barrier).

        Capture it after a write, then pass it as ``min_position=`` to a
        read: the read is then guaranteed to be served from a view that
        includes everything the primary had applied at capture time.
        """
        if self.endpoints is None:
            document = self.topology()
            return int(document.get("applied", 0))  # type: ignore[arg-type]
        self._refresh_topology(force=True)
        with self._topology_lock:
            primary = self._primary_endpoint
            fleet = dict(self._fleet)
        if primary is None:
            raise ServiceError(
                503,
                {
                    "error": {
                        "code": "no_primary",
                        "message": "no reachable endpoint claims primary",
                        "retryable": True,
                    }
                },
            )
        return int(fleet[primary].get("applied", 0))  # type: ignore[arg-type]

    def fetch_wal(
        self,
        from_position: int,
        shard: Optional[int] = None,
        max_records: Optional[int] = None,
        ack: Optional[int] = None,
    ) -> Dict[str, object]:
        """Fetch a WAL range of this client's tenant (the shipping protocol).

        Returns the raw document: ``records`` (wire-form updates starting
        at ``from``), the primary's ``applied`` position and ``epoch``,
        and ``torn`` when the served segment chain is damaged.  A request
        below the retained horizon raises a ``wal_gap``
        :class:`ServiceError` carrying ``min_position`` in its document.
        """
        query = [f"from={int(from_position)}"]
        if shard is not None:
            query.append(f"shard={int(shard)}")
        if max_records is not None:
            query.append(f"max={int(max_records)}")
        if ack is not None:
            query.append(f"ack={int(ack)}")
        path = self._tenant_path("/wal") + "?" + "&".join(query)
        return self._expect_ok("GET", path)  # type: ignore[return-value]

    def fetch_snapshot(self, shard: Optional[int] = None) -> Dict[str, object]:
        """Fetch the last checkpointed snapshot document (the re-seed payload)."""
        path = self._tenant_path("/snapshot")
        if shard is not None:
            path += f"?shard={int(shard)}"
        return self._expect_ok("GET", path)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # per-tenant routes
    # ------------------------------------------------------------------
    def stats(
        self,
        as_of: Optional[AsOf] = None,
        min_position: Optional[int] = None,
    ) -> Dict[str, object]:
        """View statistics plus engine metrics for this client's tenant.

        With ``as_of`` (an applied position, a per-shard position sequence
        for sharded tenants, or ``"latest"``), the view-statistics portion
        describes the tenant's *historical* view at that position instead
        of the live one; pruned history raises a 410
        ``as_of_unavailable`` :class:`ServiceError` whose document carries
        ``oldest_position``.  ``min_position`` is the replica-set read
        barrier (see :meth:`primary_position`); single-endpoint clients
        ignore it.
        """
        return self._routed_read(  # type: ignore[return-value]
            "GET", "/stats", as_of=as_of, min_position=min_position
        )

    def submit_updates(
        self,
        updates: Sequence[Update],
        max_retries: int = 0,
        trace_id: Optional[str] = None,
    ) -> int:
        """Submit a batch of updates; returns the total accepted count.

        With ``max_retries == 0`` (the default) a shed batch raises
        :class:`BackpressureError` immediately (inspect ``.accepted`` /
        ``.retry_after_ms``).  With retries, the client waits the server's
        suggestion — :attr:`BackpressureError.retry_after_s`, the smaller
        of the precise JSON ``retry_after_ms`` and the coarse
        ``Retry-After`` header — then resubmits the unaccepted suffix, up
        to ``max_retries`` times; the final :class:`BackpressureError` (if
        any) carries the last attempt's context plus ``total_accepted``,
        the cumulative count the server applied across every attempt.

        ``trace_id`` is sent as the ``X-Repro-Trace`` header: the server
        samples the request, tags every accepted update with the id, and
        the trace is queryable end-to-end (router → shard apply → standby
        replay) via :meth:`debug_traces`.
        """
        headers = {"X-Repro-Trace": trace_id} if trace_id is not None else None
        remaining = list(updates)
        total_accepted = 0
        retries = 0
        while True:
            payload = {"updates": [encode_update(u) for u in remaining]}
            try:
                document = self._routed_write(
                    "POST", "/updates", payload, extra_headers=headers
                )
                return total_accepted + int(document["accepted"])  # type: ignore[index]
            except BackpressureError as exc:
                total_accepted += exc.accepted
                remaining = remaining[exc.accepted :]
                if retries >= max_retries:
                    exc._total_accepted = total_accepted
                    raise
                retries += 1
                if exc.retry_after_s > 0.0:
                    time.sleep(exc.retry_after_s)

    def group_by(
        self,
        vertices: Iterable[Vertex],
        as_of: Optional[AsOf] = None,
        min_position: Optional[int] = None,
    ) -> GroupByResult:
        """Snapshot-consistent cluster-group-by over ``vertices``.

        With ``as_of``, the group-by is answered from the tenant's
        historical view at that position (see :meth:`stats` for the
        argument forms and failure modes) — a time-travel read.
        ``min_position`` is the replica-set read barrier.
        """
        document = self.group_by_raw(vertices, as_of=as_of, min_position=min_position)
        groups = {
            int(gid): set(members)
            for gid, members in document["groups"].items()  # type: ignore[index]
        }
        return GroupByResult(groups=groups)

    def group_by_raw(
        self,
        vertices: Iterable[Vertex],
        as_of: Optional[AsOf] = None,
        min_position: Optional[int] = None,
    ) -> Dict[str, object]:
        """Like :meth:`group_by` but returns the raw document (with version)."""
        return self._routed_read(  # type: ignore[return-value]
            "POST",
            "/group-by",
            {"vertices": list(vertices)},
            as_of=as_of,
            min_position=min_position,
        )

    def cluster_of(
        self,
        vertex: Vertex,
        as_of: Optional[AsOf] = None,
        min_position: Optional[int] = None,
    ) -> List[int]:
        """Cluster indices of one vertex in the current view.

        The vertex is encoded with the lossless token convention — the int
        ``123`` travels as ``/cluster/123``, the string ``"123"`` as
        ``/cluster/~123`` — then percent-encoded so non-ASCII identifiers
        survive the URL path (the v1 server percent-decodes the segment).
        With ``as_of``, answered from the historical view at that position
        (see :meth:`stats`).
        """
        token = quote(format_vertex_token(vertex), safe="")
        document = self._routed_read(
            "GET", f"/cluster/{token}", as_of=as_of, min_position=min_position
        )
        return list(document["clusters"])  # type: ignore[index]
