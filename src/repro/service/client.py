"""Stdlib HTTP client for the clustering service.

:class:`ServiceClient` wraps ``http.client`` (no third-party dependencies)
and mirrors the server's five routes with typed helpers.  One persistent
keep-alive connection is maintained per client; the client is protected by
a lock so it can be shared between load-generator threads, and transparently
reconnects once if the server closed the idle connection.
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.dynelm import Update
from repro.core.result import GroupByResult
from repro.graph.dynamic_graph import Vertex
from repro.service.server import encode_update


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, document: object) -> None:
        super().__init__(f"service returned {status}: {document!r}")
        self.status = status
        self.document = document


class BackpressureError(ServiceError):
    """The 503 path: the ingest queue was full; carries the accepted count."""

    @property
    def accepted(self) -> int:
        if isinstance(self.document, dict):
            return int(self.document.get("accepted", 0))
        return 0


class ServiceClient:
    """Synchronous JSON/HTTP client matching :class:`ClusteringServiceServer`.

    Example
    -------
    ::

        client = ServiceClient("127.0.0.1", 8321)
        client.submit_updates([Update.insert(1, 2), Update.insert(2, 3)])
        result = client.group_by([1, 2, 3])
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8321, timeout: float = 10.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._lock = threading.Lock()
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Optional[object] = None
    ) -> Tuple[int, object]:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body is not None else {}
        with self._lock:
            for attempt in (0, 1):
                if self._connection is None:
                    self._connection = http.client.HTTPConnection(
                        self.host, self.port, timeout=self.timeout
                    )
                try:
                    self._connection.request(method, path, body=body, headers=headers)
                    response = self._connection.getresponse()
                    raw = response.read()
                    break
                except (ConnectionError, http.client.HTTPException, OSError):
                    # stale keep-alive connection: reconnect once
                    self._connection.close()
                    self._connection = None
                    if attempt:
                        raise
        try:
            document = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            document = raw.decode("utf-8", errors="replace")
        return response.status, document

    def _expect_ok(self, method: str, path: str, payload: Optional[object] = None) -> object:
        status, document = self._request(method, path, payload)
        if status == 503:
            raise BackpressureError(status, document)
        if not 200 <= status < 300:
            raise ServiceError(status, document)
        return document

    def close(self) -> None:
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, object]:
        """Liveness document: status, library version, view version."""
        return self._expect_ok("GET", "/healthz")  # type: ignore[return-value]

    def stats(self) -> Dict[str, object]:
        """View statistics plus engine metrics."""
        return self._expect_ok("GET", "/stats")  # type: ignore[return-value]

    def submit_updates(self, updates: Sequence[Update]) -> int:
        """Submit a batch of updates; returns the accepted count.

        Raises :class:`BackpressureError` when the server accepted only a
        prefix (inspect ``.accepted`` for how much got in).
        """
        payload = {"updates": [encode_update(u) for u in updates]}
        document = self._expect_ok("POST", "/updates", payload)
        return int(document["accepted"])  # type: ignore[index]

    def group_by(self, vertices: Iterable[Vertex]) -> GroupByResult:
        """Snapshot-consistent cluster-group-by over ``vertices``."""
        document = self._expect_ok("POST", "/group-by", {"vertices": list(vertices)})
        groups = {
            int(gid): set(members)
            for gid, members in document["groups"].items()  # type: ignore[index]
        }
        return GroupByResult(groups=groups)

    def group_by_raw(self, vertices: Iterable[Vertex]) -> Dict[str, object]:
        """Like :meth:`group_by` but returns the raw document (with version)."""
        return self._expect_ok(  # type: ignore[return-value]
            "POST", "/group-by", {"vertices": list(vertices)}
        )

    def cluster_of(self, vertex: Vertex) -> List[int]:
        """Cluster indices of one vertex in the current view."""
        document = self._expect_ok("GET", f"/cluster/{vertex}")
        return list(document["clusters"])  # type: ignore[index]
