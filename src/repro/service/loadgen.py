"""Open-loop load generator mixing ingest and query traffic.

Drives a clustering service — either an in-process
:class:`~repro.service.engine.ClusteringEngine` or a remote server through
:class:`~repro.service.client.ServiceClient` — with the update streams from
:mod:`repro.workloads.updates` plus a configurable fraction of group-by
queries.

The generator is *open loop*: request start times are fixed on a schedule
derived from the target rate before the run begins, and a slow service does
not slow the schedule down — the generator records how far behind schedule
it fell (``max_lag_s``) and, through the engine's bounded queue, how often
ingest was shed (``rejected``).  This is the methodology that exposes
coordinated omission, which a closed loop (wait-for-response) would hide.

The schedule and every recorded duration run on the monotonic clocks
(``time.monotonic`` for the open-loop ticks, ``time.perf_counter`` for
request latencies) so a wall-clock step cannot bend the offered rate or
the histograms — an invariant pinned by ``tests/service/test_time_sources.py``.
Shed updates are *not* retried here (that would close the loop); clients
that want retry-with-backoff use ``ServiceClient.submit_updates(...,
max_retries=N)``, which honours the server's 429 hints.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Protocol, Sequence

from repro.core.dynelm import Update
from repro.graph.dynamic_graph import Vertex
from repro.service.client import BackpressureError, ServiceClient
from repro.service.engine import ClusteringEngine, EngineBackpressure
from repro.service.metrics import ServiceMetrics
from repro.service.obs import new_trace_id
from repro.service.sharding import AnyEngine


class LoadTarget(Protocol):
    """What the generator needs from a service: batched ingest + group-by."""

    def submit_updates(self, updates: Sequence[Update]) -> int:
        """Returns how many updates were accepted."""
        ...

    def group_by(self, vertices: Sequence[Vertex]) -> object:
        ...


@dataclass
class EngineTarget:
    """Drive an in-process engine (either shape) directly, no HTTP."""

    engine: AnyEngine

    def submit_updates(self, updates: Sequence[Update]) -> int:
        try:
            return self.engine.submit_many(updates, block=False)
        except EngineBackpressure:  # pragma: no cover - submit_many absorbs it
            return 0

    def group_by(self, vertices: Sequence[Vertex]) -> object:
        return self.engine.group_by(vertices)


@dataclass
class ClientTarget:
    """Drive a remote server through :class:`ServiceClient`.

    With ``trace=True`` every ingest batch carries a fresh
    ``X-Repro-Trace`` id, so the server records its full pipeline
    (router → shard apply → standby replay) for later inspection via
    ``/v1/debug/traces`` — the loadgen doubles as a trace generator.
    """

    client: ServiceClient
    trace: bool = False

    def submit_updates(self, updates: Sequence[Update]) -> int:
        trace_id = new_trace_id() if self.trace else None
        try:
            return self.client.submit_updates(updates, trace_id=trace_id)
        except BackpressureError as exc:
            return exc.accepted

    def group_by(self, vertices: Sequence[Vertex]) -> object:
        return self.client.group_by(vertices)


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of the generated traffic.

    Attributes
    ----------
    rate:
        Target request rate in requests/second (each ingest request carries
        ``ingest_batch`` updates).  0 means "as fast as possible".
    ingest_batch:
        Updates per ingest request.
    query_ratio:
        Fraction of requests that are group-by queries (in [0, 1]).
    query_size:
        Vertices per group-by query.
    seed:
        RNG seed for the insert/query mixture and query-set sampling.
    vertex_prefix:
        When non-empty, every vertex identifier in the generated traffic is
        rewritten to the *string* ``f"{prefix}{v}"``.  Two generators with
        different prefixes produce disjoint vertex spaces — the isolation
        probe of the multi-tenant smoke gate (and an exercise of the
        service's lossless string-ID path).
    max_seconds:
        When > 0 the run stops after this many (monotonic) seconds even if
        updates remain — the fixed-duration probe mode of the capacity
        bench's saturation search.  0 (the default) runs the whole stream.
    loop:
        When true the update stream wraps around instead of ending, so a
        fixed-duration run at a high rate never starves; requires
        ``max_seconds > 0`` (a looped unbounded run would never finish).
    """

    rate: float = 0.0
    ingest_batch: int = 16
    query_ratio: float = 0.2
    query_size: int = 32
    seed: int = 0
    vertex_prefix: str = ""
    max_seconds: float = 0.0
    loop: bool = False

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be >= 0")
        if self.ingest_batch < 1:
            raise ValueError("ingest_batch must be >= 1")
        if not 0.0 <= self.query_ratio <= 1.0:
            raise ValueError("query_ratio must be in [0, 1]")
        if self.query_size < 1:
            raise ValueError("query_size must be >= 1")
        if any(ch.isspace() for ch in self.vertex_prefix):
            raise ValueError("vertex_prefix must be whitespace-free")
        if self.max_seconds < 0:
            raise ValueError("max_seconds must be >= 0")
        if self.loop and not self.max_seconds:
            raise ValueError("loop requires max_seconds > 0")


@dataclass
class LoadReport:
    """Outcome of one load-generation run (JSON-serialisable via as_dict)."""

    requests: int = 0
    ingest_requests: int = 0
    query_requests: int = 0
    updates_sent: int = 0
    updates_accepted: int = 0
    updates_rejected: int = 0
    wall_seconds: float = 0.0
    max_lag_s: float = 0.0
    metrics: Optional[ServiceMetrics] = None
    errors: List[str] = field(default_factory=list)

    @property
    def offered_updates_per_second(self) -> float:
        return self.updates_sent / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def accepted_updates_per_second(self) -> float:
        return self.updates_accepted / self.wall_seconds if self.wall_seconds else 0.0

    def as_dict(self) -> Dict[str, object]:
        document: Dict[str, object] = {
            "requests": self.requests,
            "ingest_requests": self.ingest_requests,
            "query_requests": self.query_requests,
            "updates_sent": self.updates_sent,
            "updates_accepted": self.updates_accepted,
            "updates_rejected": self.updates_rejected,
            "wall_seconds": self.wall_seconds,
            "max_lag_s": self.max_lag_s,
            "offered_updates_per_second": self.offered_updates_per_second,
            "accepted_updates_per_second": self.accepted_updates_per_second,
            "errors": list(self.errors),
        }
        if self.metrics is not None:
            document["client_metrics"] = self.metrics.snapshot()
        return document


class LoadGenerator:
    """Replay an update stream against a target with mixed-in queries.

    Parameters
    ----------
    target:
        An :class:`EngineTarget`, :class:`ClientTarget` or anything
        satisfying :class:`LoadTarget`.
    updates:
        The update stream to ingest (e.g. from
        :func:`repro.workloads.updates.generate_update_sequence`); consumed
        in order, ``ingest_batch`` at a time.
    vertex_pool:
        Vertices to sample group-by query sets from; defaults to the
        endpoints seen in ``updates``.
    config:
        Traffic shape.
    """

    def __init__(
        self,
        target: LoadTarget,
        updates: Sequence[Update],
        vertex_pool: Optional[Sequence[Vertex]] = None,
        config: Optional[LoadGenConfig] = None,
    ) -> None:
        self.target = target
        self.config = config if config is not None else LoadGenConfig()
        self.updates = [
            prefix_update(u, self.config.vertex_prefix) for u in updates
        ]
        if vertex_pool is None:
            seen = {u.u for u in self.updates} | {u.v for u in self.updates}
            vertex_pool = sorted(seen, key=repr)
        else:
            vertex_pool = [
                prefix_vertex(v, self.config.vertex_prefix) for v in vertex_pool
            ]
        self.vertex_pool = list(vertex_pool)
        self.metrics = ServiceMetrics()

    def run(self) -> LoadReport:
        """Execute the run: ingest every update, interleaving queries."""
        config = self.config
        rng = random.Random(config.seed)
        report = LoadReport(metrics=self.metrics)
        self.metrics.start_clock()
        interval = 1.0 / config.rate if config.rate > 0 else 0.0
        started = time.monotonic()
        cursor = 0
        tick = 0
        while config.loop or cursor < len(self.updates):
            if config.max_seconds and time.monotonic() - started >= config.max_seconds:
                break
            if not self.updates:
                break
            if interval:
                scheduled = started + tick * interval
                now = time.monotonic()
                if now < scheduled:
                    time.sleep(scheduled - now)
                else:
                    report.max_lag_s = max(report.max_lag_s, now - scheduled)
            tick += 1
            is_query = (
                bool(self.vertex_pool) and rng.random() < config.query_ratio
            )
            try:
                if is_query:
                    self._one_query(rng)
                    report.query_requests += 1
                else:
                    cursor = self._one_ingest(cursor, report)
                    report.ingest_requests += 1
            except Exception as exc:  # keep the run alive; record the failure
                report.errors.append(f"{type(exc).__name__}: {exc}")
                if not is_query:
                    cursor += config.ingest_batch  # skip the poisoned batch
            report.requests += 1
        report.wall_seconds = time.monotonic() - started
        return report

    # ------------------------------------------------------------------
    def _one_ingest(self, cursor: int, report: LoadReport) -> int:
        if self.config.loop:
            # wrap the stream: the cursor counts sent updates, the index
            # into the stream is taken modulo its length
            start = cursor % len(self.updates)
            batch = self.updates[start : start + self.config.ingest_batch]
            if len(batch) < self.config.ingest_batch:
                batch = batch + self.updates[: self.config.ingest_batch - len(batch)]
        else:
            batch = self.updates[cursor : cursor + self.config.ingest_batch]
        start = time.perf_counter()
        accepted = self.target.submit_updates(batch)
        self.metrics.observe_batch(accepted, time.perf_counter() - start)
        report.updates_sent += len(batch)
        report.updates_accepted += accepted
        report.updates_rejected += len(batch) - accepted
        # rejected updates are shed, not retried: open-loop semantics
        return cursor + len(batch)

    def _one_query(self, rng: random.Random) -> None:
        size = min(self.config.query_size, len(self.vertex_pool))
        query = rng.sample(self.vertex_pool, size)
        start = time.perf_counter()
        self.target.group_by(query)
        self.metrics.observe_query(time.perf_counter() - start)


# ----------------------------------------------------------------------
# vertex prefixing + multi-tenant mixes
# ----------------------------------------------------------------------
def prefix_vertex(v: Vertex, prefix: str) -> Vertex:
    """Rewrite a vertex into the prefixed (string) identifier space."""
    if not prefix:
        return v
    return f"{prefix}{v}"


def prefix_update(update: Update, prefix: str) -> Update:
    """Rewrite both endpoints of an update (no-op for an empty prefix)."""
    if not prefix:
        return update
    return Update(
        update.kind, prefix_vertex(update.u, prefix), prefix_vertex(update.v, prefix)
    )


class MultiTenantLoadGenerator:
    """Drive several tenants concurrently, one open-loop generator each.

    The update stream is partitioned round-robin across tenants; every
    tenant's traffic is rewritten into its own vertex space
    (``"{tenant}:"`` prefix by default) so the workloads are disjoint by
    construction and cross-tenant leakage is detectable from the outside.

    Parameters
    ----------
    targets:
        ``tenant name → LoadTarget`` (typically :class:`ClientTarget`
        instances bound to per-tenant clients).
    updates:
        The combined stream; tenant ``i`` of ``k`` receives updates
        ``i, i+k, i+2k, ...``.
    config:
        Shared traffic shape; each tenant runs with ``seed + its index``
        and its own ``vertex_prefix`` (an explicit ``vertex_prefix`` in
        the shared config is prepended to the per-tenant one).
    """

    def __init__(
        self,
        targets: Dict[str, LoadTarget],
        updates: Sequence[Update],
        config: Optional[LoadGenConfig] = None,
    ) -> None:
        if not targets:
            raise ValueError("at least one tenant target is required")
        base = config if config is not None else LoadGenConfig()
        stream = list(updates)
        names = list(targets)
        self.generators: Dict[str, LoadGenerator] = {}
        for index, name in enumerate(names):
            tenant_config = replace(
                base,
                seed=base.seed + index,
                vertex_prefix=f"{base.vertex_prefix}{name}:",
            )
            slice_ = stream[index::len(names)]
            self.generators[name] = LoadGenerator(
                targets[name], slice_, config=tenant_config
            )

    def run(self) -> Dict[str, LoadReport]:
        """Run every tenant's generator concurrently; reports by tenant."""
        reports: Dict[str, LoadReport] = {}
        errors: List[BaseException] = []

        def _run_one(name: str, generator: LoadGenerator) -> None:
            try:
                reports[name] = generator.run()
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(
                target=_run_one, args=(name, generator), name=f"loadgen-{name}"
            )
            for name, generator in self.generators.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return reports
