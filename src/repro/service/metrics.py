"""Service metrics: latency histograms and throughput counters.

Built on :mod:`repro.instrumentation`: counts go through an
:class:`~repro.instrumentation.OpCounter`, wall-clock phases through a
:class:`~repro.instrumentation.Stopwatch`.  On top of those this module adds
the one primitive a serving layer needs that the benchmark harness does
not — a fixed-memory latency *histogram* with percentile estimation, so the
service can report p50/p90/p99 without retaining every sample.

The histogram uses exponentially growing buckets (factor 2) from 1 µs to
~137 s; percentile estimates interpolate linearly inside the winning bucket,
giving a relative error bounded by the bucket width (≤ 2×) — the standard
Prometheus-style trade-off.  All mutators take an internal lock: the
histogram is shared between the writer thread, server tasks and the load
generator.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.instrumentation import OpCounter

#: Histogram bucket upper bounds in seconds: 1 µs · 2^k, k = 0..27 (~137 s).
_BUCKET_BOUNDS: Sequence[float] = tuple(1e-6 * (2.0 ** k) for k in range(28))

#: Where non-finite / absurd samples are clamped: safely inside the overflow
#: bucket, and finite — so no inf can propagate into percentiles or JSON.
_OVERFLOW_CLAMP: float = 2.0 * _BUCKET_BOUNDS[-1]

#: The ingest pipeline stages, in data-path order: time spent queued
#: before the writer picked the batch up, appending to the WAL, applying
#: to the clustering backend, and publishing the refreshed view.  Each
#: stage gets its own histogram in :class:`ServiceMetrics` (observed once
#: per batch), decomposing the single ``ingest`` batch latency.
INGEST_STAGES: Tuple[str, ...] = (
    "queue_wait",
    "wal_append",
    "backend_apply",
    "view_publish",
)


class LatencyHistogram:
    """Fixed-bucket latency histogram with percentile estimation.

    Samples are sanitised on the way in so the exported ``/stats`` JSON is
    always strictly valid (no ``NaN`` / ``Infinity`` literals): a ``NaN``
    sample is dropped, a negative one clamps to 0, and anything above the
    top bucket bound (including ``+inf``) clamps to a finite value inside
    the overflow bucket.
    """

    __slots__ = ("_lock", "_counts", "count", "total", "max_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: List[int] = [0] * (len(_BUCKET_BOUNDS) + 1)  # guarded-by: _lock
        self.count = 0  # guarded-by: _lock
        self.total = 0.0  # guarded-by: _lock
        self.max_value = 0.0  # guarded-by: _lock

    def observe(self, seconds: float) -> None:
        """Record one latency sample (in seconds); sanitises bad samples."""
        if seconds != seconds:  # NaN: no meaningful bucket exists — drop it
            return
        if seconds < 0.0:
            seconds = 0.0
        elif seconds > _OVERFLOW_CLAMP:  # also catches +inf
            seconds = _OVERFLOW_CLAMP
        idx = bisect_left(_BUCKET_BOUNDS, seconds)
        with self._lock:
            self._counts[idx] += 1
            self.count += 1
            self.total += seconds
            if seconds > self.max_value:
                self.max_value = seconds

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (``p`` in [0, 100]).

        Pinned edge semantics:

        * an **empty** histogram returns ``0.0`` for every ``p``;
        * ``p = 0`` returns the lower edge of the first non-empty bucket
          (a lower bound on the observed minimum);
        * ``p = 100`` returns exactly ``max_value``;
        * samples in the **overflow bucket** interpolate between the top
          bucket bound and ``max_value`` — never beyond it;
        * every estimate is clamped to ``[0, max_value]``, so the result
          is always finite and never exceeds an actually observed latency.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = p / 100.0 * self.count
            seen = 0.0
            for idx, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if seen + bucket_count >= rank:
                    lower = _BUCKET_BOUNDS[idx - 1] if idx > 0 else 0.0
                    upper = (
                        _BUCKET_BOUNDS[idx]
                        if idx < len(_BUCKET_BOUNDS)
                        else self.max_value
                    )
                    upper = min(upper, self.max_value)
                    lower = min(lower, upper)
                    fraction = (rank - seen) / bucket_count
                    return lower + (upper - lower) * max(0.0, min(1.0, fraction))
                seen += bucket_count
            return self.max_value

    def summary(self) -> Dict[str, float]:
        """JSON-serialisable digest: count, mean, p50/p90/p99, max.

        ``count`` / ``mean_s`` / ``max_s`` come from one locked snapshot,
        so a concurrent ``observe`` can never produce a torn pair (a
        count that includes a sample whose latency the mean excludes).
        The percentiles each take the lock again — a sample landing
        between reads shifts an estimate, which is inherent to serving
        live percentiles, but every individual figure is self-consistent.
        """
        with self._lock:
            count = self.count
            total = self.total
            max_value = self.max_value
        return {
            "count": count,
            "mean_s": total / count if count else 0.0,
            "p50_s": self.percentile(50.0),
            "p90_s": self.percentile(90.0),
            "p99_s": self.percentile(99.0),
            "max_s": max_value,
        }

    def bucket_snapshot(self) -> "Tuple[Sequence[float], List[int], int, float]":
        """One locked snapshot for exporters: bounds, counts, count, total.

        ``counts`` is the raw (non-cumulative) per-bucket tally including
        the trailing overflow bucket, so ``sum(counts) == count`` holds
        exactly — the invariant the Prometheus renderer's ``+Inf`` bucket
        relies on.
        """
        with self._lock:
            return _BUCKET_BOUNDS, list(self._counts), self.count, self.total

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one.

        Used by the multi-tenant aggregation path: per-tenant histograms
        stay independent, and a fleet-wide percentile view is produced by
        merging copies on demand (bucket counts are additive).
        """
        with other._lock:
            counts = list(other._counts)
            count = other.count
            total = other.total
            max_value = other.max_value
        with self._lock:
            for idx, bucket_count in enumerate(counts):
                self._counts[idx] += bucket_count
            self.count += count
            self.total += total
            if max_value > self.max_value:
                self.max_value = max_value


class ServiceMetrics:
    """Aggregated ingest/query metrics for one engine or load generator.

    * ``ingest`` — latency of one micro-batch application (WAL append +
      maintainer updates + view publication), observed by the writer thread;
    * ``query`` — latency of one read (group-by / cluster-of / stats);
    * ``view_capture`` — latency of one view publication (incremental patch
      or full capture), plus flip-set-size statistics and the
      ``view_capture_incremental`` / ``view_capture_full`` counters;
    * named counters — ``updates_applied``, ``updates_rejected``,
      ``batches``, ``queries``, ``checkpoints``, ``backpressure`` …

    All elapsed-time inputs come from the monotonic clocks
    (``time.monotonic`` / ``time.perf_counter``) — wall-clock time is never
    part of duration arithmetic anywhere in the service layer.
    """

    def __init__(self) -> None:
        self.ingest = LatencyHistogram()
        self.query = LatencyHistogram()
        self.view_capture = LatencyHistogram()
        self.ingest_stages: Dict[str, LatencyHistogram] = {
            stage: LatencyHistogram() for stage in INGEST_STAGES
        }
        self.counter = OpCounter()
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None  # guarded-by: _lock
        self._flip_count = 0  # guarded-by: _lock
        self._flip_total = 0  # guarded-by: _lock
        self._flip_max = 0  # guarded-by: _lock
        self._flip_last = 0  # guarded-by: _lock

    # ------------------------------------------------------------------
    def start_clock(self) -> None:
        """Mark the beginning of the serving window (for throughput rates)."""
        with self._lock:
            if self._started_at is None:
                self._started_at = time.monotonic()

    def elapsed(self) -> float:
        """Seconds since :meth:`start_clock` (0 when never started)."""
        with self._lock:
            if self._started_at is None:
                return 0.0
            return time.monotonic() - self._started_at

    def add(self, name: str, amount: int = 1) -> None:
        """Increment a named counter (thread-safe)."""
        with self._lock:
            self.counter.add(name, amount)

    def get(self, name: str) -> int:
        with self._lock:
            return self.counter.get(name)

    def counters(self) -> Dict[str, int]:
        """One locked snapshot of every named counter (for exporters)."""
        with self._lock:
            return dict(self.counter.snapshot())

    # ------------------------------------------------------------------
    def observe_batch(self, num_updates: int, seconds: float) -> None:
        """Record one applied micro-batch."""
        self.ingest.observe(seconds)
        self.add("batches")
        self.add("updates_applied", num_updates)

    def observe_stage(self, stage: str, seconds: float) -> None:
        """Record one batch's time inside one ingest pipeline stage."""
        self.ingest_stages[stage].observe(seconds)

    def observe_query(self, seconds: float) -> None:
        """Record one read-path request."""
        self.query.observe(seconds)
        self.add("queries")

    def observe_view_capture(
        self, seconds: float, mode: str, flip_set_size: Optional[int] = None
    ) -> None:
        """Record one view publication.

        ``mode`` is ``"incremental"`` (patched from the flip set) or
        ``"full"`` (complete re-capture); ``flip_set_size`` is ``|F|`` as
        drained from the backend, when the backend tracked one.
        """
        self.view_capture.observe(seconds)
        self.add(f"view_capture_{mode}")
        if flip_set_size is not None:
            with self._lock:
                self._flip_count += 1
                self._flip_total += flip_set_size
                self._flip_last = flip_set_size
                if flip_set_size > self._flip_max:
                    self._flip_max = flip_set_size

    def flip_set_stats(self) -> Dict[str, float]:
        """Aggregate statistics of the drained flip-set sizes.

        ``last`` is a per-engine notion (the most recent batch's ``|F|``);
        fleet-wide merges keep the additive fields and leave it at 0.
        """
        with self._lock:
            count = self._flip_count
            return {
                "count": count,
                "total": self._flip_total,
                "mean": (self._flip_total / count) if count else 0.0,
                "max": self._flip_max,
                "last": self._flip_last,
            }

    def view_capture_summary(self) -> Dict[str, object]:
        """The ``view_capture`` stats document: histogram + flip-set stats."""
        return {
            **self.view_capture.summary(),
            "flip_set_size": self.flip_set_stats(),
        }

    # ------------------------------------------------------------------
    def updates_per_second(self) -> float:
        """Ingest throughput over the serving window so far."""
        elapsed = self.elapsed()
        if elapsed <= 0.0:
            return 0.0
        return self.get("updates_applied") / elapsed

    def snapshot(self) -> Dict[str, object]:
        """One JSON-serialisable document with every metric."""
        with self._lock:
            counters = self.counter.snapshot()
        return {
            "elapsed_s": self.elapsed(),
            "updates_per_second": self.updates_per_second(),
            "counters": counters,
            "ingest": self.ingest.summary(),
            "ingest_stages": {
                stage: histogram.summary()
                for stage, histogram in self.ingest_stages.items()
            },
            "query": self.query.summary(),
            "view_capture": self.view_capture_summary(),
        }

    @classmethod
    def merged(cls, all_metrics: Iterable["ServiceMetrics"]) -> "ServiceMetrics":
        """Fleet-wide aggregate of several tenants' metrics (a fresh copy).

        Histogram buckets and counters are additive; the serving-window
        clock is left unset (rates are per-tenant concepts — callers read
        the merged histograms and counters, not ``updates_per_second``).
        """
        merged = cls()
        for metrics in all_metrics:
            merged.ingest.merge(metrics.ingest)
            merged.query.merge(metrics.query)
            merged.view_capture.merge(metrics.view_capture)
            for stage in INGEST_STAGES:
                merged.ingest_stages[stage].merge(metrics.ingest_stages[stage])
            flips = metrics.flip_set_stats()
            with metrics._lock:
                counters = metrics.counter.snapshot()
            with merged._lock:
                # additive fields only: "last" has no meaningful fleet-wide
                # aggregate (per-tenant recency is lost), so it stays 0
                merged._flip_count += int(flips["count"])
                merged._flip_total += int(flips["total"])
                merged._flip_max = max(merged._flip_max, int(flips["max"]))
            for name, amount in counters.items():
                merged.add(name, amount)
        return merged
