"""Sharded clustering engine: hash-partitioned ingest with merged views.

A single :class:`~repro.service.engine.ClusteringEngine` is single-writer,
so its ingest throughput is bounded by what one writer can label per
second.  :class:`ShardedEngine` removes that bound by hash-partitioning the
vertex space across ``N`` inner engines:

* **Ownership.**  Every vertex belongs to exactly one shard —
  ``shard_of(v) = crc32(canonical token of v) % N`` — a *stable* hash (the
  WAL token format), so the placement survives process restarts and is
  identical in every client, test and recovery path.
* **Boundary-edge replication.**  An update ``(u, v)`` is routed to
  ``shard_of(u)`` and ``shard_of(v)``.  A cross-shard edge therefore lives
  in *both* endpoint shards, which keeps the closed neighbourhood ``N[w]``
  of every vertex **complete at its owner** — each shard maintains its
  induced subgraph plus the replicated boundary.
* **Scoped labelling.**  A shard labels only the edges it owns on both
  ends (:class:`repro.core.dynelm.DynELM`'s ``scope`` predicate); boundary
  edges are *graph-only* replicas: they keep the neighbourhoods (and hence
  the similarities of owned edges) exact, but their own similarity is
  resolved lazily by the merge below.  That is where the throughput gain
  comes from on any core count: each similar-or-not decision is made by
  exactly one shard, and boundary decisions leave the ingest hot path
  entirely.
* **Scatter-gather merged reads.**  A read grabs one immutable
  ``(view, export)`` pair per shard — the *view tuple* — and merges them:
  boundary-edge similarities are computed exactly from the owners'
  exported closed neighbourhoods, global core status from the combined
  similar-neighbour counts, and clusters by a union-find pass over core
  vertices linked by similar edges (cross-shard clusters merge exactly
  where they share boundary core similarity).  The merge is memoised per
  view tuple, so repeated ``group_by`` / ``cluster_of`` / ``stats`` calls
  on an unchanged system cost a dictionary lookup.

**Consistency caveat** (documented in docs/API.md): the merge combines each
shard's *latest published* view — a consistent prefix of that shard's
sub-stream — but the cut across shards is not globally serialised.  After a
``flush()`` (or any quiescent moment) the merged result is exactly the
sequential single-engine clustering of the whole stream; the property suite
locks that equivalence in for every exact backend and ``shards ∈ {2,3,4}``.

**Durability** is per shard: with a ``data_dir`` every shard keeps its own
WAL + snapshot under ``data_dir/shard-<i>/`` and recovers independently; a
``sharding.json`` manifest pins the shard count (re-sharding an existing
directory is refused loudly).  Because the two replicas of a boundary edge
are logged by two different WALs, a crash *between* the two appends can
leave the replicas inconsistent; recovery reconciles by re-inserting the
missing replica (the union of the shard graphs is the graph of record), at
the cost of possibly resurrecting an edge whose delete was mid-replication.
"""

from __future__ import annotations

import json
import queue
import threading
import time
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, Union

from repro.connectivity.union_find import UnionFind
from repro.core.config import StrCluParams
from repro.core.dynelm import Update, UpdateKind
from repro.core.result import (
    Clustering,
    GroupByResult,
    clustering_from_membership,
    group_by_membership,
)
from repro.graph.dynamic_graph import Vertex, canonical_edge
from repro.graph.similarity import SimilarityKind, pair_similarity
from repro.persistence.snapshot import write_durable
from repro.persistence.updatelog import format_vertex_token
from repro.service.engine import (
    SNAPSHOT_FILE,
    WAL_FILE,
    ClusteringEngine,
    EngineBackpressure,
    EngineClosed,
    EngineConfig,
    EngineError,
    EngineFenced,
    _Flush,
    _Stop,
    await_flush_marker,
    canonicalise_update,
    put_control,
    retry_hint_ms,
)
from repro.service.metrics import ServiceMetrics
from repro.service.obs import (
    attach_context,
    get_tracer,
    stamp_enqueue,
    tag_update,
    update_context,
)
from repro.service.views import ClusteringView, PersistentMap

#: Sub-directory name of shard ``i`` under a sharded engine's data_dir.
SHARD_DIR_FORMAT = "shard-{index}"

#: Manifest file pinning the partitioning of a sharded data_dir.
MANIFEST_FILE = "sharding.json"
MANIFEST_FORMAT = "repro-sharding-manifest"
MANIFEST_VERSION = 1


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
def shard_of(v: Vertex, num_shards: int) -> int:
    """Owning shard of a vertex: a *stable* hash of its canonical token.

    Python's built-in ``hash`` is salted per process for strings, so the
    partition is derived from ``crc32`` of the WAL token instead — the same
    canonical, lossless representation the persistence layer uses (the int
    ``123`` and the string ``"123"`` own different tokens and may land on
    different shards, which is exactly right).
    """
    if num_shards == 1:
        return 0
    token = format_vertex_token(v).encode("utf-8")
    return zlib.crc32(token) % num_shards


class _OwnerMap:
    """Memoised :func:`shard_of`: each vertex hashes its token only once.

    The partition function sits on every hot path (the per-update scope
    predicate, routing, export capture, the merge), so the crc32 of the
    canonical token is computed once per distinct vertex and remembered.
    Safe to share across threads: plain dict get/set are atomic under the
    GIL and a lost race merely recomputes the same value.

    Memory is bounded two ways: the router evicts a vertex when its last
    edge is deleted (best effort — a shard may re-memoise it while
    applying that very delete), and the cache is cleared outright when it
    exceeds :attr:`MAX_ENTRIES`, so a churning vertex space (fresh IDs
    forever) cannot grow it without bound; a clear merely costs cheap
    recomputation.
    """

    __slots__ = ("num_shards", "_cache")

    #: Hard cap on memoised vertices; the cache resets beyond it.
    MAX_ENTRIES = 1 << 20

    def __init__(self, num_shards: int) -> None:
        self.num_shards = num_shards
        self._cache: Dict[Vertex, int] = {}

    def __call__(self, v: Vertex) -> int:
        index = self._cache.get(v)
        if index is None:
            index = shard_of(v, self.num_shards)
            if len(self._cache) >= self.MAX_ENTRIES:
                self._cache.clear()
            self._cache[v] = index
        return index

    def evict(self, v: Vertex) -> None:
        """Best-effort drop of a vertex's memo when it leaves the graph."""
        self._cache.pop(v, None)


def make_label_scope(
    index: int,
    num_shards: int,
    owner: Optional[_OwnerMap] = None,
) -> Callable[[Vertex, Vertex], bool]:
    """The labelling scope of shard ``index``: both endpoints owned by it."""
    owner_of = owner if owner is not None else _OwnerMap(num_shards)

    def scope(u: Vertex, v: Vertex) -> bool:
        return owner_of(u) == index == owner_of(v)

    return scope


# ----------------------------------------------------------------------
# per-shard exports
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardExport:
    """What one shard contributes to the scatter-gather merge.

    Captured atomically with the shard's published view (same writer
    thread, same batch boundary), covering only the shard's **owned**
    vertices:

    Attributes
    ----------
    shard:
        The shard index.
    version:
        The shard-local view version this export describes.
    adjacency:
        ``owned vertex → frozenset of all its neighbours`` — complete by
        the boundary-replication invariant, including neighbours owned by
        other shards.  A present-but-isolated vertex keeps an empty entry
        (it must still be counted as noise).
    similar:
        ``owned vertex → frozenset of its *same-shard* similar
        neighbours`` (entries omitted when empty).  Boundary similarities
        are deliberately absent — the merge derives them from the two
        owners' adjacencies.
    """

    shard: int
    version: int
    adjacency: PersistentMap
    similar: PersistentMap

    @classmethod
    def empty(cls, shard: int) -> "ShardExport":
        return cls(
            shard=shard,
            version=0,
            adjacency=PersistentMap.empty(),
            similar=PersistentMap.empty(),
        )


def _closed(v: Vertex, neighbours: Optional[FrozenSet[Vertex]]) -> Set[Vertex]:
    """Closed neighbourhood from an exported adjacency entry (``None``: unseen)."""
    out = set(neighbours) if neighbours is not None else set()
    out.add(v)
    return out


def capture_similar_neighbours(
    maintainer: object,
    v: Vertex,
    shard_index: int,
    owner_of: Callable[[Vertex], int],
) -> Set[Vertex]:
    """Same-shard similar neighbours of an owned vertex.

    Delta-capable backends answer from their maintained structures
    (DynStrClu's vAuxInfo, already scoped to owned edges); fallback
    backends re-derive the decision from the graph with the exact
    similarity — both endpoints are owned, so their neighbourhoods in the
    shard graph are complete and the answer is exact.

    The probe's answer is filtered to same-shard neighbours anyway: a
    plugin backend that ignores the ``scope`` hook labels boundary
    replicas too (on truncated neighbourhoods), and those decisions must
    never leak into the export — the merge owns every boundary edge.
    """
    probe = getattr(maintainer, "core_attachments", None)
    if callable(probe):
        return {w for w in probe(v) if owner_of(w) == shard_index}
    from repro.graph.similarity import structural_similarity

    graph = maintainer.graph
    params = maintainer.params
    out: Set[Vertex] = set()
    for w in graph.neighbours(v):
        if owner_of(w) != shard_index:
            continue
        if structural_similarity(graph, v, w, params.similarity) >= params.epsilon:
            out.add(w)
    return out


def capture_shard_export(
    maintainer: object,
    shard_index: int,
    num_shards: int,
    version: int,
    owner: Optional[_OwnerMap] = None,
) -> ShardExport:
    """Full export of one shard maintainer: owned adjacency + similar maps.

    Works on *any* maintainer holding shard ``shard_index``'s state — a
    live shard's (the :class:`_ShardEngine` publication path) or one
    rebuilt from a retained snapshot + WAL replay (the time-travel path),
    which is what makes historical sharded reads reuse
    :func:`merge_shard_views` unchanged.
    """
    owner_of = owner if owner is not None else _OwnerMap(num_shards)
    graph = maintainer.graph
    adjacency: Dict[Vertex, FrozenSet[Vertex]] = {}
    similar: Dict[Vertex, FrozenSet[Vertex]] = {}
    for v in graph.vertices():
        if owner_of(v) != shard_index:
            continue
        adjacency[v] = frozenset(graph.neighbours(v))
        sim = capture_similar_neighbours(maintainer, v, shard_index, owner_of)
        if sim:
            similar[v] = frozenset(sim)
    return ShardExport(
        shard=shard_index,
        version=version,
        adjacency=PersistentMap.build(adjacency),
        similar=PersistentMap.build(similar),
    )




# ----------------------------------------------------------------------
# the merged view
# ----------------------------------------------------------------------
class ShardedView:
    """One merged, immutable snapshot across all shards.

    Duck-types the read surface of
    :class:`~repro.service.views.ClusteringView` (``version``,
    ``cluster_of``, ``group_by``, ``clustering``, ``stats``) so the HTTP
    layer and the manager serve sharded tenants unchanged.

    ``version`` is a monotonic *merge ordinal*: the sum of the per-shard
    view versions.  Unlike an unsharded tenant's ``view_version`` it is
    **not** the logical update-prefix count — every cross-shard update is
    applied by two shards and therefore contributes twice.  At any
    quiescent moment ``version == applied + cross_shard_updates`` (the
    invariant the unit suite pins); the exact per-shard prefixes are in
    :attr:`shard_versions`.
    """

    __slots__ = (
        "version",
        "shard_versions",
        "num_vertices",
        "num_edges",
        "published_at",
        "_membership",
        "_clusters",
        "_cores",
        "_hubs",
        "_noise",
        "_clustering_cache",
    )

    def __init__(
        self,
        version: int,
        shard_versions: Tuple[int, ...],
        num_vertices: int,
        num_edges: int,
        membership: Dict[Vertex, Tuple[int, ...]],
        clusters: Dict[int, FrozenSet[Vertex]],
        cores: Set[Vertex],
        hubs: Set[Vertex],
        noise: Set[Vertex],
    ) -> None:
        self.version = version
        self.shard_versions = shard_versions
        self.num_vertices = num_vertices
        self.num_edges = num_edges
        self.published_at = time.time()
        self._membership = membership
        self._clusters = clusters
        self._cores = cores
        self._hubs = hubs
        self._noise = noise
        self._clustering_cache: Optional[Clustering] = None

    # -- queries (same semantics as ClusteringView) ---------------------
    def cluster_of(self, v: Vertex) -> Tuple[int, ...]:
        return self._membership.get(v, ())

    def group_by(self, query: Iterable[Vertex]) -> GroupByResult:
        return group_by_membership(self._membership, query)

    @property
    def clustering(self) -> Clustering:
        cached = self._clustering_cache
        if cached is None:
            cached = clustering_from_membership(
                self._membership, set(self._cores), set(self._hubs), set(self._noise)
            )
            self._clustering_cache = cached
        return cached

    def stats(self) -> Dict[str, object]:
        return {
            "view_version": self.version,
            "shard_versions": list(self.shard_versions),
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "published_at": self.published_at,
            "clusters": len(self._clusters),
            "cores": len(self._cores),
            "hubs": len(self._hubs),
            "noise": len(self._noise),
            "largest_cluster": max(
                (len(members) for members in self._clusters.values()), default=0
            ),
        }


def merge_shard_views(
    snapshots: Tuple[Tuple[ClusteringView, ShardExport], ...],
    params: StrCluParams,
    num_shards: int,
    owner: Optional[_OwnerMap] = None,
) -> ShardedView:
    """The scatter-gather merge: per-shard snapshots → one global clustering.

    1. Seed every owned vertex's similar-neighbour set with its shard's
       same-shard decisions (exported straight from the shard's labelling).
    2. Resolve every **boundary edge** — discovered from both owners'
       adjacencies, deduplicated — by computing its exact similarity from
       the two exported closed neighbourhoods.
    3. Core status from the combined counts (``SimCnt ≥ μ``), clusters by
       union-find over cores linked by similar edges, attachments / hubs /
       noise exactly as in Fact 1's retrieval.
    """
    epsilon = params.epsilon
    kind = params.similarity
    owner_of = owner if owner is not None else _OwnerMap(num_shards)
    exports = [export for _view, export in snapshots]

    # 1. same-shard similar neighbours
    sim: Dict[Vertex, Set[Vertex]] = {}
    for export in exports:
        for u, nbrs in export.similar.items():
            sim[u] = set(nbrs)

    # 2. boundary edges, each resolved once from both owners' exports
    resolved: Set[Tuple[Vertex, Vertex]] = set()
    closed_cache: Dict[Vertex, Set[Vertex]] = {}

    def closed_of(v: Vertex) -> Set[Vertex]:
        cached = closed_cache.get(v)
        if cached is None:
            cached = _closed(v, exports[owner_of(v)].adjacency.get(v))
            closed_cache[v] = cached
        return cached

    for export in exports:
        for u, nbrs in export.adjacency.items():
            for w in nbrs:
                if owner_of(w) == export.shard:
                    continue  # same-shard edge: already decided by the shard
                edge = canonical_edge(u, w)
                if edge in resolved:
                    continue
                resolved.add(edge)
                sigma = pair_similarity(closed_of(u), closed_of(w), kind)
                if sigma >= epsilon:
                    sim.setdefault(u, set()).add(w)
                    sim.setdefault(w, set()).add(u)

    # 3. cores, components, clusters, roles
    mu = params.mu
    cores = {u for u, neighbours in sim.items() if len(neighbours) >= mu}
    uf = UnionFind(cores)
    for u in cores:
        for v in sim[u]:
            if v in cores:
                uf.union(u, v)

    cluster_index: Dict[Vertex, int] = {}
    members: List[Set[Vertex]] = []
    for core in cores:
        root = uf.find(core)
        idx = cluster_index.get(root)
        if idx is None:
            idx = len(members)
            cluster_index[root] = idx
            members.append(set())
        members[idx].add(core)

    membership_sets: Dict[Vertex, Set[int]] = {}
    for core in cores:
        idx = cluster_index[uf.find(core)]
        membership_sets.setdefault(core, set()).add(idx)
        for v in sim[core]:
            members[idx].add(v)
            membership_sets.setdefault(v, set()).add(idx)

    membership = {
        v: tuple(sorted(indices)) for v, indices in membership_sets.items()
    }
    clusters = {idx: frozenset(cluster) for idx, cluster in enumerate(members)}

    hubs: Set[Vertex] = set()
    noise: Set[Vertex] = set()
    total_vertices = 0
    total_degree = 0
    for export in exports:
        for v, nbrs in export.adjacency.items():
            total_vertices += 1
            total_degree += len(nbrs)
            if v in cores:
                continue
            assigned = membership_sets.get(v, ())
            if len(assigned) >= 2:
                hubs.add(v)
            elif not assigned:
                noise.add(v)

    versions = tuple(export.version for export in exports)
    return ShardedView(
        version=sum(view.version for view, _export in snapshots),
        shard_versions=versions,
        num_vertices=total_vertices,
        num_edges=total_degree // 2,
        membership=membership,
        clusters=clusters,
        cores=cores,
        hubs=hubs,
        noise=noise,
    )


# ----------------------------------------------------------------------
# the shard-local engine (inner engine + export capture)
# ----------------------------------------------------------------------
class _ShardEngine(ClusteringEngine):
    """One shard: a :class:`ClusteringEngine` that also captures exports.

    The export is maintained incrementally from the backend's flip set
    (the same delta that patches the view): only vertices in ``F`` can
    have changed adjacency, similar neighbours or presence.  Backends that
    report full rebuilds — or export maps that outgrow their buckets —
    fall back to a full export rebuild, mirroring the view discipline.
    """

    _APPLY_SPAN_NAME = "shard.apply"

    def __init__(
        self,
        shard_index: int,
        num_shards: int,
        owner: Optional[_OwnerMap] = None,
        **kwargs: object,
    ) -> None:
        self.shard_index = shard_index
        self.num_shards = num_shards
        # shared with the owning ShardedEngine (one memo for the whole
        # engine, not N+1 copies); standalone construction gets its own
        self._owner = owner if owner is not None else _OwnerMap(num_shards)
        super().__init__(
            label_scope=make_label_scope(shard_index, num_shards, self._owner),
            **kwargs,
        )
        self._published: Tuple[ClusteringView, ShardExport] = (
            self._view,
            self._full_export(self._view.version),
        )

    def shard_snapshot(self) -> Tuple[ClusteringView, ShardExport]:
        """The latest (view, export) pair, atomic under the GIL."""
        return self._published

    # -- export capture (writer thread only) ----------------------------
    def _decorate_view(self, view: ClusteringView, delta, mode: str) -> None:
        export: Optional[ShardExport] = None
        if not delta.full_rebuild:
            export = self._patched_export(view.version, delta.flips)
        if export is None:
            export = self._full_export(view.version)
        self._published = (view, export)

    def _sim_neighbours(self, v: Vertex) -> Set[Vertex]:
        """Same-shard similar neighbours (see :func:`capture_similar_neighbours`)."""
        return capture_similar_neighbours(
            self.maintainer, v, self.shard_index, self._owner
        )

    def _full_export(self, version: int) -> ShardExport:
        return capture_shard_export(
            self.maintainer,
            self.shard_index,
            self.num_shards,
            version,
            owner=self._owner,
        )

    def _patched_export(
        self, version: int, flips: Iterable[Vertex]
    ) -> Optional[ShardExport]:
        previous = self._published[1]
        graph = self.maintainer.graph
        index, owner_of = self.shard_index, self._owner
        adjacency_changes: Dict[Vertex, Optional[FrozenSet[Vertex]]] = {}
        similar_changes: Dict[Vertex, Optional[FrozenSet[Vertex]]] = {}
        for v in flips:
            if owner_of(v) != index:
                continue
            if not graph.has_vertex(v):
                adjacency_changes[v] = None
                similar_changes[v] = None
                continue
            adjacency_changes[v] = frozenset(graph.neighbours(v))
            sim = self._sim_neighbours(v)
            similar_changes[v] = frozenset(sim) if sim else None
        adjacency = previous.adjacency.assign(adjacency_changes)
        similar = previous.similar.assign(similar_changes)
        if adjacency.overloaded or similar.overloaded:
            return None  # let the full rebuild re-bucket for the new size
        return ShardExport(
            shard=index, version=version, adjacency=adjacency, similar=similar
        )


# ----------------------------------------------------------------------
# the sharded engine
# ----------------------------------------------------------------------
class ShardedEngine:
    """``N`` hash-partitioned inner engines behind one engine surface.

    Mirrors the public surface of :class:`ClusteringEngine` — ``submit`` /
    ``submit_many`` / ``flush`` / ``view`` / ``group_by`` / ``cluster_of``
    / ``stats`` / ``close`` / ``kill`` plus the ``applied`` /
    ``queue_depth`` / ``running`` properties — so the tenant manager, the
    HTTP server and the load generator drive both shapes identically.

    Ingest is a two-stage pipeline: producers enqueue into the router's
    bounded queue (the single admission point, so backpressure reports an
    exact accepted prefix), and one router thread replicates each update to
    its endpoint shards' queues, blocking — never dropping — when a shard
    is momentarily full.  The router also filters no-op updates against a
    global edge set so every shard's WAL stays an exact record of applied
    updates.
    """

    def __init__(
        self,
        params: Optional[StrCluParams] = None,
        config: Optional[EngineConfig] = None,
        data_dir: Optional[Union[str, Path]] = None,
        connectivity_backend: str = "hdt",
        metrics: Optional[ServiceMetrics] = None,
        backend: str = "dynstrclu",
        reconcile: bool = True,
    ) -> None:
        self.config = config if config is not None else EngineConfig(shards=2)
        if self.config.shards < 2:
            raise ValueError(
                "ShardedEngine needs config.shards >= 2; use ClusteringEngine "
                "(or make_engine) for the single-shard shape"
            )
        self.num_shards = self.config.shards
        self._owner = _OwnerMap(self.num_shards)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.backend = backend.strip().lower()
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self._queue: "queue.Queue[object]" = queue.Queue(
            maxsize=self.config.queue_capacity
        )
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._close_completed = False  # guarded-by: _close_lock
        self._close_lock = threading.Lock()
        self._failure: Optional[BaseException] = None
        self._merged_cache: Optional[
            Tuple[Tuple[Tuple[ClusteringView, ShardExport], ...], ShardedView]
        ] = None

        manifest_applied = 0
        self._manifest_created = False
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
            manifest_applied = self._check_manifest()

        inner_config = replace(self.config, shards=1)
        self.shards: List[_ShardEngine] = []
        try:
            for index in range(self.num_shards):
                shard_dir = (
                    self.data_dir / SHARD_DIR_FORMAT.format(index=index)
                    if self.data_dir is not None
                    else None
                )
                self.shards.append(
                    _ShardEngine(
                        index,
                        self.num_shards,
                        owner=self._owner,
                        params=params,
                        config=inner_config,
                        data_dir=shard_dir,
                        connectivity_backend=connectivity_backend,
                        backend=self.backend,
                    )
                )
        except BaseException:
            for shard in self.shards:
                shard.close(checkpoint=False)
            if self._manifest_created:
                # don't poison an empty data_dir against other shard
                # counts: the manifest this constructor just wrote pins a
                # partitioning that never came to exist
                (self.data_dir / MANIFEST_FILE).unlink(missing_ok=True)
            raise

        self.recovered_updates = sum(s.recovered_updates for s in self.shards)
        # cached fence flag: the admission check runs per submitted update
        # and must not iterate the shards on the hot path
        self._fenced = any(shard.fenced for shard in self.shards)
        # the logical count is exact after a clean close (manifest); after a
        # crash the manifest is stale, so fall back to the tightest lower
        # bound the shards can back: no shard applies a logical update twice
        self.applied = max(
            [manifest_applied] + [s.applied for s in self.shards]
        )
        self._rebuild_router_state()
        # a standby replays each shard's WAL verbatim — reconciliation
        # would splice extra (locally-logged) records into the shard
        # streams and break the position arithmetic, so it is skippable
        self._repairs = self._reconcile() if reconcile else []

    def _rebuild_router_state(self) -> None:
        """Recompute the no-op filter and degree bookkeeping from the shards.

        The graph of record for no-op filtering is the union of the shard
        graphs (every edge lives in at least its owners' shards); live
        degrees drive ``_OwnerMap`` eviction — a vertex whose last edge is
        deleted drops out of the shared memo with it.  Called at
        construction and again when a promoted standby re-arms the router
        after bypassing it during replay.
        """
        self._edges: Set[Tuple[Vertex, Vertex]] = set()
        for shard in self.shards:
            for u, v in shard.maintainer.graph.edges():
                self._edges.add(canonical_edge(u, v))
        self._degrees: Dict[Vertex, int] = {}
        for u, v in self._edges:
            self._degrees[u] = self._degrees.get(u, 0) + 1
            self._degrees[v] = self._degrees.get(v, 0) + 1

    # ------------------------------------------------------------------
    # durability bookkeeping
    # ------------------------------------------------------------------
    def _check_manifest(self) -> int:
        """Validate (or create) the sharding manifest; returns stored applied."""
        path = self.data_dir / MANIFEST_FILE
        if path.exists():
            document = json.loads(path.read_text(encoding="utf-8"))
            if document.get("format") != MANIFEST_FORMAT:
                raise ValueError(f"{path} is not a sharding manifest")
            stored = int(document.get("num_shards", 0))
            if stored != self.num_shards:
                raise ValueError(
                    f"data_dir {self.data_dir} was written with {stored} shards; "
                    f"re-sharding to {self.num_shards} is not supported — "
                    "start a fresh data_dir (or match the stored shard count)"
                )
            return int(document.get("applied", 0))
        if (self.data_dir / SNAPSHOT_FILE).exists() or (
            self.data_dir / WAL_FILE
        ).exists():
            # an unsharded engine's layout: starting N empty shards here
            # would silently ignore every persisted update
            raise ValueError(
                f"data_dir {self.data_dir} holds an *unsharded* engine's "
                f"state ({SNAPSHOT_FILE}/{WAL_FILE}); open it with shards=1 "
                "or start a fresh data_dir for the sharded shape"
            )
        self._write_manifest(0)
        self._manifest_created = True
        return 0

    def _write_manifest(self, applied: int) -> None:
        """Atomically persist the manifest (tmp + fsync + rename).

        The manifest gates every future open of this data_dir, so a torn
        write (crash mid-rewrite) must never leave an unparseable file
        that bricks recovery while the shards' WAL+snapshots are intact —
        the same discipline as the engine's snapshot checkpoint.
        """
        document = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "num_shards": self.num_shards,
            "backend": self.backend,
            "applied": applied,
        }
        write_durable(self.data_dir / MANIFEST_FILE, json.dumps(document, indent=2))

    def _reconcile(self) -> List[Tuple[int, Update]]:
        """Repair replicas lost to a crash between the two WAL appends.

        The union of the recovered shard graphs is the graph of record;
        any edge missing from one of its owners' graphs is re-inserted
        there (submitted through the normal WAL-logged path in
        :meth:`start`).
        """
        repairs: List[Tuple[int, Update]] = []
        for u, v in self._edges:
            for index in {self._owner(u), self._owner(v)}:
                if not self.shards[index].maintainer.graph.has_edge(u, v):
                    repairs.append((index, Update.insert(u, v)))
        return repairs

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedEngine":
        """Start every shard's writer plus the router thread (idempotent)."""
        if self._closed:
            raise EngineClosed("engine is closed")
        if self._thread is None:
            self.metrics.start_clock()
            for shard in self.shards:
                shard.start()
            if self._repairs:
                for index, update in self._repairs:
                    self.shards[index].submit(update)
                for shard in self.shards:
                    shard.flush()
                self._repairs = []
            self._thread = threading.Thread(
                target=self._router_loop, name="sharded-engine-router", daemon=True
            )
            self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return (
            self._thread is not None
            and self._thread.is_alive()
            and all(shard.running for shard in self.shards)
        )

    @property
    def queue_depth(self) -> int:
        """Router backlog plus every shard's backlog (approximate)."""
        return self._queue.qsize() + sum(s.queue_depth for s in self.shards)

    @property
    def total_queue_capacity(self) -> int:
        """Upper bound of :attr:`queue_depth`: the router's admission queue
        plus every shard's queue — so reported depth/capacity utilisation
        stays <= 100% even with full shard backlogs."""
        return self.config.queue_capacity * (1 + self.num_shards)

    @property
    def params(self) -> StrCluParams:
        return self.shards[0].maintainer.params

    def close(self, checkpoint: bool = True) -> None:
        """Stop the router, close every shard, persist the manifest.

        Raises :class:`EngineError` when any shard refuses to close — after
        attempting them *all* — leaving the engine in a *cleanly* failed
        state: reads keep working (the published views are immutable), new
        submits are rejected with :class:`EngineClosed` (never silently
        black-holed into a stopped router), and a retry re-attempts the
        failed shards (a shard whose own close failed stayed fully open;
        closing an already-closed shard is a no-op).  The manifest is only
        rewritten after every shard closed, so a failed close never
        records a count the shards don't back.  Serialised like the plain
        engine's close: a concurrent call waits for the in-flight attempt
        instead of mistaking its partial progress for success.
        """
        with self._close_lock:
            self._close_locked(checkpoint)

    def _close_locked(self, checkpoint: bool) -> None:
        if self._close_completed:
            return
        self._closed = True  # reject new submits cleanly from here on
        if self._thread is not None:
            put_control(self._queue, _Stop(), self._thread)
            self._thread.join()
            self._thread = None
        failures: List[BaseException] = []
        for shard in self.shards:
            try:
                shard.close(checkpoint=checkpoint)
            except BaseException as exc:
                failures.append(exc)
        if failures:
            raise EngineError(
                f"{len(failures)} of {self.num_shards} shards failed to close "
                f"(first: {failures[0]})"
            ) from failures[0]
        if checkpoint and self.data_dir is not None and self._failure is None:
            self._write_manifest(self.applied)
        self._close_completed = True

    def kill(self) -> None:
        """Simulate a crash: stop the router, kill every shard un-checkpointed."""
        # repro: allow[REPRO201] crash simulation deliberately skips the
        # close serialisation: a kill racing a close is exactly the torn
        # shutdown the recovery tests exercise (both lines below)
        if self._close_completed:
            return
        self._closed = True
        self._close_completed = True  # repro: allow[REPRO201] see above
        if self._thread is not None:
            put_control(self._queue, _Stop(), self._thread)
            self._thread.join()
            self._thread = None
        for shard in self.shards:
            shard.kill()

    def __enter__(self) -> "ShardedEngine":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # replication surface (fencing per shard)
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The engine's fencing epoch: the maximum over the shards'."""
        return max(shard.epoch for shard in self.shards)

    @property
    def fenced(self) -> bool:
        """True once any shard was fenced (writes are all-or-nothing)."""
        return self._fenced

    def fence(self, epoch: int) -> None:
        """Fence every shard at ``epoch`` (manifest-pinned per shard).

        Validated against the engine-level epoch first so a stale request
        fails atomically instead of fencing a prefix of the shards.  An
        I/O failure persisting a later shard's manifest fails *closed*:
        with a prefix of the shards durably fenced, admitting more writes
        would poison the router the moment an update routes to a fenced
        shard — so the whole engine starts rejecting writes, matching the
        restart semantics (any fenced shard fences the engine).
        """
        if epoch <= self.epoch:
            raise ValueError(
                f"stale fence epoch {epoch}: engine is already at {self.epoch}"
            )
        for index, shard in enumerate(self.shards):
            try:
                shard.fence(epoch)
            except BaseException:
                if index:
                    self._fenced = True
                raise
        self._fenced = True

    def set_epoch(self, epoch: int) -> None:
        """Adopt ``epoch`` on every shard (promotion path, un-fenced)."""
        if epoch < self.epoch:
            raise ValueError(
                f"epoch must not move backwards: {epoch} < {self.epoch}"
            )
        for shard in self.shards:
            shard.set_epoch(epoch)
        self._fenced = False

    def wal_horizon(self) -> Dict[str, object]:
        """Aggregated ``as_of`` horizon: totals plus per-shard rows.

        ``oldest_replayable`` is the per-shard position vector (the same
        shape an ``as_of`` tuple for this tenant takes), or ``None`` when
        any shard has no replayable history.
        """
        rows = [shard.wal_horizon() for shard in self.shards]
        oldest_bases = [
            row["oldest_retained_base"]
            for row in rows
            if row["oldest_retained_base"] is not None
        ]
        replayable = [row["oldest_replayable"] for row in rows]
        return {
            "durable": all(row["durable"] for row in rows),
            "segments": sum(row["segments"] for row in rows),
            "bytes": sum(row["bytes"] for row in rows),
            "oldest_retained_base": min(oldest_bases) if oldest_bases else None,
            "snapshot_position": None,  # per-shard notion: see the rows
            "oldest_replayable": (
                None if any(position is None for position in replayable)
                else replayable
            ),
            "shards": rows,
        }

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    def submit(
        self, update: Update, block: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Enqueue one update for routing (same contract as the base engine)."""
        if self._closed:
            raise EngineClosed("engine is closed")
        if self.fenced:
            raise EngineFenced(
                f"engine is fenced at epoch {self.epoch}: a standby was "
                "promoted; writes must go to the new primary",
                epoch=self.epoch,
            )
        self._raise_router_failure()
        update = canonicalise_update(update)
        tag_update(update)
        stamp_enqueue(update)
        try:
            self._queue.put(update, block=block, timeout=timeout)
        except queue.Full:
            self.metrics.add("backpressure")
            raise self.backpressure_signal() from None

    def submit_many(
        self,
        updates: Iterable[Update],
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> int:
        """Enqueue a batch; returns the exactly-accepted prefix length.

        The router queue is the single admission point, so on backpressure
        the accepted count is the exact prefix that will reach the shards —
        no update is half-replicated.
        """
        accepted = 0
        for update in updates:
            try:
                self.submit(update, block=block, timeout=timeout)
            except EngineBackpressure:
                break
            accepted += 1
        return accepted

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until everything submitted before this call is applied
        by every shard it was routed to."""
        if self._thread is None:
            raise EngineError("engine is not running; call start() first")
        marker = _Flush()
        if not put_control(self._queue, marker, self._thread):
            self._raise_router_failure()
            raise EngineError("sharded router is not running")
        return await_flush_marker(marker, self._raise_router_failure, timeout)

    def backpressure_signal(self) -> EngineBackpressure:
        """Merged load-shedding signal: ``retry_after_ms`` is the **max**
        over the per-shard signals (and the router's own horizon) — the
        slowest shard gates when the pipeline can absorb a retry."""
        shard_signals = [shard.backpressure_signal() for shard in self.shards]
        config = self.config
        own_ms = retry_hint_ms(self._queue.qsize(), config)
        retry_after_ms = max([own_ms] + [s.retry_after_ms for s in shard_signals])
        return EngineBackpressure(
            f"sharded ingest queue full ({config.queue_capacity} updates)",
            queue_depth=self.queue_depth,
            queue_capacity=self.total_queue_capacity,
            retry_after_ms=retry_after_ms,
        )

    # ------------------------------------------------------------------
    # router thread
    # ------------------------------------------------------------------
    def _router_loop(self) -> None:
        stopping = False
        while True:
            if stopping:
                # drain the close/submit race window (see the writer loop's
                # _Stop handling): accepted updates enqueued just behind
                # the stop marker are still routed before the router exits
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
            else:
                item = self._queue.get()
            if isinstance(item, _Stop):
                stopping = True
                continue
            try:
                if isinstance(item, _Flush):
                    for shard in self.shards:
                        shard.flush()
                    item.event.set()
                else:
                    self._route(item)
            except BaseException as exc:  # surface on the next submit/flush
                self._failure = exc
                if isinstance(item, _Flush):
                    item.event.set()
                break

    def _route(self, update: Update) -> None:
        """Replicate one update to its endpoint shards (router thread only).

        No-ops are filtered against the global edge set *here* so the
        logical ``applied`` count and every shard's WAL stay exact; the
        inner engines' own pre-validation then never fires for routed
        updates, but remains as a safety net.
        """
        u, v = update.u, update.v
        if u == v:
            self.metrics.add("updates_rejected")
            return
        edge = canonical_edge(u, v)
        if (update.kind is UpdateKind.INSERT) == (edge in self._edges):
            self.metrics.add("updates_rejected")
            return
        targets = {self._owner(u), self._owner(v)}
        if len(targets) > 1:
            self.metrics.add("cross_shard_updates")
        context = update_context(update)
        if context is not None:
            # the routing hop gets its own span so per-shard applies nest
            # under it; the update is re-tagged with the hop's context so
            # the shard spans point at the router span as their parent
            with get_tracer().span(
                "router.route",
                trace_id=context.trace_id,
                parent_id=context.span_id,
                shards=sorted(targets),
                cross_shard=len(targets) > 1,
            ) as span_context:
                attach_context(update, span_context)
                self._deliver(update, targets)
        else:
            self._deliver(update, targets)
        if update.kind is UpdateKind.INSERT:
            self._edges.add(edge)
            for endpoint in edge:
                self._degrees[endpoint] = self._degrees.get(endpoint, 0) + 1
        else:
            self._edges.discard(edge)
            for endpoint in edge:
                remaining = self._degrees.get(endpoint, 1) - 1
                if remaining <= 0:
                    self._degrees.pop(endpoint, None)
                    self._owner.evict(endpoint)
                else:
                    self._degrees[endpoint] = remaining
        self.applied += 1

    def _deliver(self, update: Update, targets: Iterable[int]) -> None:
        """Feed one routed update to every endpoint shard (router thread).

        A momentarily full shard delays the router (and, through the
        router queue, the producers) instead of dropping one replica
        of a half-routed update — but the wait is sliced, so a shard
        whose *writer died* with a full queue surfaces as an
        EngineError instead of blocking the router, and with it
        close()/delete, forever.  The shard's queue is fed directly:
        the update is already canonicalised, and the client-facing
        submit path would count every timeout slice as a shed
        request in the "backpressure" metric, which this is not.
        """
        for index in targets:
            shard = self.shards[index]
            while True:
                shard._raise_writer_failure()
                try:
                    shard._queue.put(update, block=True, timeout=0.25)
                    break
                except queue.Full:
                    continue  # still full; the writer probe above re-runs

    def _raise_router_failure(self) -> None:
        if self._failure is not None:
            raise EngineError("sharded router failed") from self._failure

    # ------------------------------------------------------------------
    # read path (scatter-gather, memoised per view tuple)
    # ------------------------------------------------------------------
    @property
    def view_version(self) -> int:
        """The merge ordinal the next :meth:`view` call would carry — O(1).

        Derived straight from the shards' published snapshots so version
        polls (the tenant listing, ``describe``) never pay for a merge.
        """
        return sum(shard.shard_snapshot()[0].version for shard in self.shards)

    def view(self) -> ShardedView:
        """The merged view of the latest per-shard published snapshots."""
        snapshots = tuple(shard.shard_snapshot() for shard in self.shards)
        cached = self._merged_cache
        if cached is not None and all(
            old is new for old, new in zip(cached[0], snapshots)
        ):
            return cached[1]
        merged = merge_shard_views(
            snapshots, self.params, self.num_shards, owner=self._owner
        )
        self._merged_cache = (snapshots, merged)
        return merged

    def cluster_of(self, v: Vertex) -> Tuple[int, ...]:
        start = time.perf_counter()
        result = self.view().cluster_of(v)
        self.metrics.observe_query(time.perf_counter() - start)
        return result

    def group_by(self, vertices: Iterable[Vertex]) -> GroupByResult:
        start = time.perf_counter()
        result = self.view().group_by(vertices)
        self.metrics.observe_query(time.perf_counter() - start)
        return result

    def stats(self) -> Dict[str, object]:
        """Merged view statistics plus per-shard depth/metrics breakdown."""
        view = self.view()
        shard_rows: List[Dict[str, object]] = []
        for shard in self.shards:
            local_view, export = shard.shard_snapshot()
            shard_rows.append(
                {
                    "shard": shard.shard_index,
                    "queue_depth": shard.queue_depth,
                    "applied": shard.applied,
                    "view_version": local_view.version,
                    "num_vertices": local_view.num_vertices,
                    "num_edges": local_view.num_edges,
                    "owned_vertices": len(export.adjacency),
                    "running": shard.running,
                }
            )
        merged_metrics = ServiceMetrics.merged(
            [self.metrics] + [shard.metrics for shard in self.shards]
        )
        return {
            **view.stats(),
            "backend": self.backend,
            "num_shards": self.num_shards,
            "applied": self.applied,
            "queue_depth": self.queue_depth,
            "queue_capacity": self.total_queue_capacity,
            "recovered_updates": self.recovered_updates,
            "running": self.running,
            "epoch": self.epoch,
            "fenced": self.fenced,
            "cross_shard_updates": self.metrics.get("cross_shard_updates"),
            "shards": shard_rows,
            "metrics": merged_metrics.snapshot(),
        }


#: Either engine shape, for annotations in the layers above.
AnyEngine = Union[ClusteringEngine, ShardedEngine]


def make_engine(
    params: Optional[StrCluParams] = None,
    config: Optional[EngineConfig] = None,
    data_dir: Optional[Union[str, Path]] = None,
    connectivity_backend: str = "hdt",
    metrics: Optional[ServiceMetrics] = None,
    backend: str = "dynstrclu",
    reconcile: bool = True,
) -> AnyEngine:
    """Build the engine shape ``config.shards`` asks for.

    ``shards == 1`` (the default) returns a plain
    :class:`ClusteringEngine` — byte-for-byte the pre-sharding behaviour;
    ``shards > 1`` returns a :class:`ShardedEngine` over that many inner
    engines (with per-shard ``data_dir/shard-<i>/`` durability when a
    ``data_dir`` is given).
    """
    config = config if config is not None else EngineConfig()
    if config.shards == 1:
        if data_dir is not None and (Path(data_dir) / MANIFEST_FILE).exists():
            # the inverse shape mismatch: re-opening a sharded tenant's
            # directory unsharded would silently serve an empty graph
            raise ValueError(
                f"data_dir {data_dir} holds a *sharded* engine's state "
                f"({MANIFEST_FILE}); open it with the stored shard count, "
                "not shards=1"
            )
        return ClusteringEngine(
            params,
            config=config,
            data_dir=data_dir,
            connectivity_backend=connectivity_backend,
            metrics=metrics,
            backend=backend,
        )
    return ShardedEngine(
        params,
        config=config,
        data_dir=data_dir,
        connectivity_backend=connectivity_backend,
        metrics=metrics,
        backend=backend,
        reconcile=reconcile,
    )
