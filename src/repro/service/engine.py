"""The clustering engine: a single-writer, micro-batching ingest pipeline.

:class:`ClusteringEngine` turns any registered clustering backend (the
:class:`~repro.core.api.Clusterer` protocol — ``dynstrclu`` by default,
or ``dynelm`` / ``scan-exact`` / ``pscan`` / ``hscan`` by name) into a
concurrent service component:

* **Single writer.**  The maintainers are not thread-safe, and the paper's
  model is one update stream.  The engine preserves both: exactly one
  writer thread applies updates, in submission order.
* **Micro-batching with backpressure.**  Producers enqueue updates into a
  bounded queue (:meth:`submit`); when the queue is full the producer either
  blocks or gets :class:`EngineBackpressure` — the open-loop load shedding
  signal.  The writer drains the queue into batches of at most
  ``batch_size`` updates, or whatever arrived within ``flush_interval``
  seconds, whichever closes the batch first.
* **Snapshot-isolated reads.**  After each batch the writer captures an
  immutable :class:`~repro.service.views.ClusteringView` and publishes it
  with a single attribute store.  Readers never touch the maintainer and
  never block.
* **Incremental view publication.**  A backend that tracks the paper's
  flip set (``drain_view_delta`` reporting the vertices whose membership
  changed) gets its view *patched* from the previous one in O(|F| log n)
  instead of re-captured in O(n + m); the engine falls back to a full
  capture when the backend cannot track deltas, when the dirty region
  exceeds ``view_rebuild_fraction`` of the graph, or when the persistent
  membership buckets must be re-sized.
* **Durability and crash recovery.**  With a ``data_dir``, every accepted
  update is appended to a WAL *before* it is applied, and a checkpoint
  (atomic snapshot write + WAL rotation) is cut every ``checkpoint_every``
  updates and on clean shutdown.  On startup the engine restores the last
  snapshot and replays the WAL suffix, tolerating a torn final entry, so a
  restarted engine serves exactly the pre-crash clustering.

The WAL/snapshot handshake uses sequence arithmetic rather than a side
metadata file: the snapshot stores the number of updates applied (``S``),
the WAL records the stream position at which it was started (``B``), and
recovery replays the WAL entries after position ``S - B``.  Both crash
windows of a checkpoint — after the snapshot rename but before the WAL
rotation, and after both — resolve correctly under that arithmetic.
"""

from __future__ import annotations

import json
import logging
import os
import queue
import threading
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.api import (
    SNAPSHOT_CAPABLE_BACKENDS,
    Clusterer,
    drain_view_delta,
    make_clusterer,
)
from repro.core.config import StrCluParams
from repro.core.dynelm import Update, UpdateKind
from repro.core.dynstrclu import DynStrClu
from repro.persistence.snapshot import (
    list_retained_snapshots,
    load_snapshot,
    restore_dynstrclu,
    retained_snapshot_name,
    take_snapshot,
    write_durable,
)
from repro.persistence.updatelog import (
    UpdateLogReader,
    UpdateLogWriter,
    WalSegment,
    list_wal_segments,
    segment_file_name,
)
from repro.graph.dynamic_graph import Vertex
from repro.service.metrics import ServiceMetrics
from repro.service.obs import (
    SpanContext,
    enqueued_at,
    get_tracer,
    stamp_enqueue,
    tag_update,
    update_context,
)
from repro.service.views import ClusteringView

#: Slow-batch diagnostics (threshold-gated; see EngineConfig.slow_batch_seconds).
_LOG = logging.getLogger("repro.service.engine")

#: Recently applied traced positions retained per engine for WAL serving.
_TRACE_POSITIONS_CAPACITY = 4096

#: File names inside an engine's data directory.
SNAPSHOT_FILE = "snapshot.json"
WAL_FILE = "wal.log"

#: Per-engine replication manifest: the fencing epoch and whether this
#: engine has been fenced off by a promoted standby.  Sharded engines
#: keep one per shard directory (the epoch is manifest-pinned per shard).
REPLICATION_FILE = "replication.json"
REPLICATION_FORMAT = "repro-replication-manifest"

#: Upper bound on hash partitions per engine: every shard is a maintainer
#: plus a writer thread and queues, so an unbounded request-supplied value
#: would let one tenant-create exhaust the process (threads, memory).
MAX_SHARDS = 64


class EngineError(RuntimeError):
    """Base class for engine failures."""


class EngineBackpressure(EngineError):
    """Raised when the ingest queue is full and the caller asked not to wait.

    Carries the load-shedding context a client needs to retry sensibly:
    ``queue_depth`` / ``queue_capacity`` describe how far behind the writer
    is, ``retry_after_ms`` is the engine's estimate of when a slot frees up
    (the time the writer needs to drain the backlog at one batch per flush
    interval).  The HTTP layer forwards all three in its 429 body and the
    ``Retry-After`` header.
    """

    def __init__(
        self,
        message: str,
        queue_depth: int = 0,
        queue_capacity: int = 0,
        retry_after_ms: int = 0,
    ) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.queue_capacity = queue_capacity
        self.retry_after_ms = retry_after_ms


class EngineClosed(EngineError):
    """Raised when submitting to an engine that has been closed."""


class EngineFenced(EngineError):
    """Raised when submitting to an engine fenced off by a newer epoch.

    After a standby was promoted at epoch ``E`` it fences the old primary:
    the demoted engine persists ``E`` and rejects every subsequent write
    with this error (HTTP 409 ``tenant_fenced``), so a half-dead primary
    can never split-brain the stream.  Reads keep working.
    """

    def __init__(self, message: str, epoch: int = 0) -> None:
        super().__init__(message)
        self.epoch = epoch


class ReadOnlyEngineError(EngineError):
    """Raised when writing to a standby engine that was not promoted yet.

    Standby tenants replay their primary's WAL continuously and serve
    snapshot-isolated reads; direct client writes are rejected (HTTP 409
    ``tenant_read_only``) until an explicit ``promote()``.
    """


class _Flush:
    """Queue sentinel: wake the writer, apply the open batch, set the event."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class _Stop:
    """Queue sentinel: drain everything still queued, then exit the loop."""

    __slots__ = ()


def retry_hint_ms(queue_depth: int, config: "EngineConfig") -> int:
    """Backpressure retry suggestion shared by both engine shapes.

    The writer drains roughly one batch per flush interval, so the time
    until a backlog clears is ``depth / batch_size`` intervals; the
    suggestion is clamped to [1 ms, 30 s].
    """
    intervals = max(1.0, queue_depth / config.batch_size)
    hint = int(1000.0 * config.flush_interval * intervals)
    return max(1, min(hint, 30_000))


def put_control(
    q: "queue.Queue[object]",
    item: object,
    thread: Optional[threading.Thread],
) -> bool:
    """Enqueue a control sentinel without blocking on a dead consumer.

    A writer/router that died with its queue full would otherwise hang the
    closing thread forever on a blocking put.  Returns true when the item
    was enqueued; false when the consumer thread is (or became) not alive
    — the caller just joins it and moves on.
    """
    while True:
        if thread is None or not thread.is_alive():
            return False
        try:
            q.put(item, timeout=0.1)
            return True
        except queue.Full:
            continue


def await_flush_marker(
    marker: _Flush,
    raise_failure: Callable[[], None],
    timeout: Optional[float],
) -> bool:
    """Wait for a flush marker in short slices (shared by both shapes).

    Returns true when the marker was set within ``timeout``; re-checks the
    pipeline's failure probe every slice so a writer/router death after
    the marker was enqueued surfaces instead of deadlocking.
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        raise_failure()
        slice_timeout = 0.1
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            slice_timeout = min(slice_timeout, remaining)
        if marker.event.wait(slice_timeout):
            raise_failure()
            return True


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of the ingest pipeline.

    Attributes
    ----------
    batch_size:
        Maximum updates applied per micro-batch (and per view publication).
    flush_interval:
        Seconds the writer waits for more updates before closing a partial
        batch.  Bounds staleness of the published view under light load.
    queue_capacity:
        Bound of the ingest queue; the backpressure horizon.
    checkpoint_every:
        Cut a checkpoint after at least this many updates since the last
        one (0 disables periodic checkpoints; one is still cut on clean
        close when a ``data_dir`` is configured).
    fsync_each_batch:
        When true the WAL is fsynced after every batch (full durability);
        when false it is flushed per entry but fsynced only at checkpoints
        and close — the usual group-commit trade-off.
    incremental_views:
        When true (the default) views are patched from the backend's flip
        set whenever the backend tracks one; when false every publication
        is a full O(n + m) capture (the pre-incremental behaviour, kept as
        an operational escape hatch and for benchmarking).
    view_rebuild_fraction:
        Fall back to a full capture when the dirty region of a patch
        exceeds this fraction of the graph's vertices — beyond that point
        the full retrieval is cheaper than patching.  (A small absolute
        floor keeps tiny graphs on the incremental path.)
    shards:
        How many hash partitions the vertex space is split into.  ``1``
        (the default) is the single-writer engine described above; ``> 1``
        selects the sharded composition
        (:class:`repro.service.sharding.ShardedEngine`) when the engine is
        built through :func:`repro.service.sharding.make_engine` or the
        tenant manager.  A :class:`ClusteringEngine` constructed directly
        ignores the field — it is a deployment-shape knob, not an inner
        engine tuning knob.
    wal_retain_segments:
        How many rotated-out WAL segments to keep on disk after a
        checkpoint (the replication horizon: a standby that lags by less
        than the retained suffix catches up by tailing; one that lags past
        it falls back to a snapshot re-seed).  ``0`` restores the
        pre-replication behaviour of discarding the outgoing segment.
    slow_batch_seconds:
        Log (WARNING) any micro-batch whose end-to-end application took at
        least this long, with the per-stage decomposition (queue wait, WAL
        append, backend apply, view publish) so the slow stage is named in
        the log line.  ``0`` disables the slow-batch log.
    """

    batch_size: int = 64
    flush_interval: float = 0.05
    queue_capacity: int = 4096
    checkpoint_every: int = 0
    fsync_each_batch: bool = False
    incremental_views: bool = True
    view_rebuild_fraction: float = 0.5
    shards: int = 1
    wal_retain_segments: int = 2
    slow_batch_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.flush_interval <= 0.0:
            raise ValueError("flush_interval must be positive")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if not 0.0 <= self.view_rebuild_fraction <= 1.0:
            raise ValueError("view_rebuild_fraction must be in [0, 1]")
        if not 1 <= self.shards <= MAX_SHARDS:
            raise ValueError(f"shards must be in [1, {MAX_SHARDS}]")
        if self.wal_retain_segments < 0:
            raise ValueError("wal_retain_segments must be >= 0")
        if self.slow_batch_seconds < 0.0:
            raise ValueError("slow_batch_seconds must be >= 0")


class ClusteringEngine:
    """Single-writer clustering service with snapshot-isolated reads.

    Example
    -------
    >>> from repro import StrCluParams, Update
    >>> with ClusteringEngine(StrCluParams(epsilon=0.5, mu=2, rho=0.0)) as engine:
    ...     for update in [Update.insert(1, 2), Update.insert(2, 3),
    ...                    Update.insert(1, 3)]:
    ...         engine.submit(update)
    ...     engine.flush()
    ...     sorted(map(sorted, engine.group_by([1, 2, 3]).as_sets()))
    [[1, 2, 3]]
    """

    def __init__(
        self,
        params: Optional[StrCluParams] = None,
        config: Optional[EngineConfig] = None,
        data_dir: Optional[Union[str, Path]] = None,
        connectivity_backend: str = "hdt",
        metrics: Optional[ServiceMetrics] = None,
        backend: str = "dynstrclu",
        label_scope: Optional[Callable[[Vertex, Vertex], bool]] = None,
    ) -> None:
        self.config = config if config is not None else EngineConfig()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.backend = backend.strip().lower()
        self.connectivity_backend = connectivity_backend
        self.label_scope = label_scope
        self._queue: "queue.Queue[object]" = queue.Queue(
            maxsize=self.config.queue_capacity
        )
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._close_lock = threading.Lock()
        self._failure: Optional[BaseException] = None
        self._wal: Optional[UpdateLogWriter] = None
        self._updates_at_checkpoint = 0
        self.epoch = 0
        self._fenced = False
        # retention floor inputs (see retention_floor): time-travel pins
        # keyed by token, plus the last standby ack observed on the
        # WAL-serving route — all read by the writer thread at prune time
        # and written by serving threads, hence the dedicated lock
        self._retention_lock = threading.Lock()
        self._pins: Dict[int, int] = {}  # guarded-by: _retention_lock
        self._pin_seq = 0  # guarded-by: _retention_lock
        self._standby_ack: Optional[int] = None  # guarded-by: _retention_lock
        # stream position → trace id of recently applied *traced* updates,
        # written by the writer thread and read by the WAL-serving route —
        # the map a standby uses to re-attach trace context on replay
        self._trace_lock = threading.Lock()
        self._trace_positions: "OrderedDict[int, str]" = OrderedDict()  # guarded-by: _trace_lock

        if self.data_dir is not None:
            if self.backend not in SNAPSHOT_CAPABLE_BACKENDS:
                raise ValueError(
                    f"backend {self.backend!r} does not support durability "
                    f"(data_dir); snapshot-capable backends: "
                    f"{', '.join(sorted(SNAPSHOT_CAPABLE_BACKENDS))}"
                )
            self.data_dir.mkdir(parents=True, exist_ok=True)
            self.epoch, self._fenced = _load_replication_manifest(self.data_dir)
            self.maintainer, recovered = _recover(
                self.data_dir, params, connectivity_backend, label_scope
            )
            self.recovered_updates = recovered
            if params is not None and self.maintainer.params != params:
                # the snapshot's params win (they determined the persisted
                # labelling); the caller must know theirs were ignored
                warnings.warn(
                    f"data_dir {self.data_dir} holds a snapshot with params "
                    f"{self.maintainer.params}, ignoring the requested {params}",
                    stacklevel=2,
                )
        else:
            if params is None:
                raise ValueError("either params or a data_dir with a snapshot is required")
            self.maintainer: Clusterer = make_clusterer(
                self.backend,
                params,
                connectivity_backend=connectivity_backend,
                scope=label_scope,
            )
            self.recovered_updates = 0

        self.applied = self.maintainer.updates_processed
        self._updates_at_checkpoint = self.applied
        if self.data_dir is not None:
            # start a fresh WAL segment anchored at the recovered position;
            # cutting a checkpoint here folds the replayed tail into the
            # snapshot so the old segment is no longer needed
            self._checkpoint()
        # a backend patches views only when it exposes the three probes the
        # patcher replays over the dirty region (is_core / core_component /
        # core_attachments); anything else always full-captures
        self._patch_probes = all(
            callable(getattr(self.maintainer, name, None))
            for name in ("is_core", "core_component", "core_attachments")
        )
        # discard deltas accumulated during construction/recovery: the
        # initial view below is a full capture of exactly that state
        drain_view_delta(self.maintainer)
        self._view: ClusteringView = (
            ClusteringView.capture(self.maintainer, self.applied)
            if self.applied
            else ClusteringView.empty()
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusteringEngine":
        """Start the writer thread (idempotent)."""
        if self._closed:
            raise EngineClosed("engine is closed")
        if self._thread is None:
            self.metrics.start_clock()
            self._thread = threading.Thread(
                target=self._writer_loop, name="clustering-engine-writer", daemon=True
            )
            self._thread.start()
        return self

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def params(self) -> StrCluParams:
        """The maintainer's parameter bundle (shared engine-shape surface)."""
        return self.maintainer.params

    @property
    def queue_depth(self) -> int:
        """Updates currently waiting in the ingest queue (approximate)."""
        return self._queue.qsize()

    @property
    def total_queue_capacity(self) -> int:
        """Upper bound of :attr:`queue_depth` (shared engine-shape surface)."""
        return self.config.queue_capacity

    def close(self, checkpoint: bool = True) -> None:
        """Stop the writer, optionally cut a final checkpoint, close the WAL.

        Idempotent: a second call is a no-op.  The engine only counts as
        closed once everything — final checkpoint included — succeeded: if
        the checkpoint raises (disk full, permissions), the writer thread
        is restarted and the engine stays fully open, so callers that
        promised a clean failure (``EngineManager.delete``) can really
        retry the close and ingestion keeps working in the meantime.

        Serialised: a concurrent ``close()`` waits for the in-flight one
        rather than observing its half-latched state as success — if the
        first attempt fails and reverts, the second runs its own full
        attempt (this is what makes concurrent tenant deletes sound).
        """
        with self._close_lock:
            self._close_locked(checkpoint)

    def _close_locked(self, checkpoint: bool) -> None:
        if self._closed:
            return
        # latch first so new submits are rejected loudly; a submit that
        # already passed the check and lands behind the stop marker is
        # still applied by the writer's final drain (see _next_batch) —
        # between the two, an accepted update is never silently lost.
        # The flag is reverted below if the final checkpoint fails.
        self._closed = True
        was_running = self._thread is not None
        if self._thread is not None:
            put_control(self._queue, _Stop(), self._thread)
            self._thread.join()
            self._thread = None
        if checkpoint and self.data_dir is not None and self._failure is None:
            try:
                self._checkpoint()
            except BaseException:
                # reopen for business: the close did not happen
                if was_running:
                    self._thread = threading.Thread(
                        target=self._writer_loop,
                        name="clustering-engine-writer",
                        daemon=True,
                    )
                    self._thread.start()
                self._closed = False
                raise
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def kill(self) -> None:
        """Simulate a crash: stop the writer without checkpoint or WAL close.

        Used by recovery tests and chaos drills — state on disk is left
        exactly as an OS-level process kill would leave it (modulo the
        page cache, which :class:`UpdateLogWriter`'s per-append flush has
        already drained to the file).
        """
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            put_control(self._queue, _Stop(), self._thread)
            self._thread.join()
            self._thread = None
        self._wal = None  # drop the handle without fsync/close bookkeeping

    def __enter__(self) -> "ClusteringEngine":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    def submit(
        self, update: Update, block: bool = True, timeout: Optional[float] = None
    ) -> None:
        """Enqueue one update for the writer thread.

        Vertex identifiers are canonicalised first via
        :func:`canonicalise_update` — an explicit *validation*, not a
        conversion: ints and strings pass through unchanged (``123`` and
        ``"123"`` are distinct vertices, preserved losslessly by the WAL's
        escaped token format), while identifiers the WAL cannot represent
        (booleans, non-int/str types, empty or whitespace-bearing strings)
        are rejected here instead of failing inside the writer thread.

        Raises :class:`EngineBackpressure` when the queue is full and
        ``block`` is false (or the timeout elapses), and
        :class:`EngineClosed` after :meth:`close`.
        """
        if self._closed:
            raise EngineClosed("engine is closed")
        if self._fenced:
            raise EngineFenced(
                f"engine is fenced at epoch {self.epoch}: a standby was "
                "promoted; writes must go to the new primary",
                epoch=self.epoch,
            )
        self._raise_writer_failure()
        update = canonicalise_update(update)
        # trace context rides with the update (ambient span, if sampled);
        # the admission stamp feeds the queue_wait stage histogram
        tag_update(update)
        stamp_enqueue(update)
        try:
            self._queue.put(update, block=block, timeout=timeout)
        except queue.Full:
            self.metrics.add("backpressure")
            raise self.backpressure_signal() from None

    def submit_many(
        self,
        updates: Iterable[Update],
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> int:
        """Enqueue a batch; returns how many were accepted.

        On backpressure with ``block=False`` the remainder is dropped and
        the accepted prefix count returned — the server's 503 path.
        """
        accepted = 0
        for update in updates:
            try:
                self.submit(update, block=block, timeout=timeout)
            except EngineBackpressure:
                break
            accepted += 1
        return accepted

    def flush(self, timeout: Optional[float] = None) -> bool:
        """Block until everything submitted before this call is applied.

        Returns true when the flush completed within ``timeout``.  Raises
        :class:`EngineError` if the writer thread has died — waiting in
        short slices rather than one long wait, so a writer failure after
        the marker was enqueued surfaces instead of deadlocking.
        """
        if self._thread is None:
            raise EngineError("engine is not running; call start() first")
        marker = _Flush()
        if not put_control(self._queue, marker, self._thread):
            self._raise_writer_failure()
            raise EngineError("engine writer is not running")
        return await_flush_marker(marker, self._raise_writer_failure, timeout)

    # ------------------------------------------------------------------
    # read path (lock-free: all reads go through the published view)
    # ------------------------------------------------------------------
    def view(self) -> ClusteringView:
        """The most recently published immutable view."""
        return self._view

    @property
    def view_version(self) -> int:
        """Version of the current view — O(1), shared engine-shape surface."""
        return self._view.version

    def cluster_of(self, v: Vertex) -> Tuple[int, ...]:
        """Cluster indices of ``v`` in the current view (timed)."""
        start = time.perf_counter()
        result = self._view.cluster_of(v)
        self.metrics.observe_query(time.perf_counter() - start)
        return result

    def group_by(self, vertices: Iterable[Vertex]):
        """Snapshot-consistent cluster-group-by over the current view."""
        start = time.perf_counter()
        view = self._view
        result = view.group_by(vertices)
        self.metrics.observe_query(time.perf_counter() - start)
        return result

    def stats(self) -> Dict[str, object]:
        """View statistics plus engine/queue/metrics counters."""
        view = self._view
        return {
            **view.stats(),
            "backend": self.backend,
            "applied": self.applied,
            "queue_depth": self.queue_depth,
            "queue_capacity": self.config.queue_capacity,
            "recovered_updates": self.recovered_updates,
            "running": self.running,
            "epoch": self.epoch,
            "fenced": self._fenced,
            "metrics": self.metrics.snapshot(),
        }

    def backpressure_signal(self) -> EngineBackpressure:
        """Build the load-shedding signal with retry guidance attached.

        The writer drains roughly one batch per flush interval, so the
        time until the backlog clears is ``depth / batch_size`` intervals;
        the suggestion is clamped to [1 ms, 30 s].
        """
        depth = self.queue_depth
        config = self.config
        return EngineBackpressure(
            f"ingest queue full ({config.queue_capacity} updates)",
            queue_depth=depth,
            queue_capacity=config.queue_capacity,
            retry_after_ms=retry_hint_ms(depth, config),
        )

    # ------------------------------------------------------------------
    # writer thread
    # ------------------------------------------------------------------
    def _writer_loop(self) -> None:
        stop = False
        while not stop:
            batch, flushes, stop = self._next_batch()
            try:
                if batch:
                    self._apply_batch(batch)
            except BaseException as exc:  # surface on the next submit/flush
                self._failure = exc
                for marker in flushes:
                    marker.event.set()
                break
            for marker in flushes:
                marker.event.set()

    def _next_batch(self) -> Tuple[List[Update], List[_Flush], bool]:
        """Collect one micro-batch: up to batch_size updates or one interval."""
        config = self.config
        batch: List[Update] = []
        flushes: List[_Flush] = []
        deadline: Optional[float] = None
        while len(batch) < config.batch_size:
            remaining = None if deadline is None else deadline - time.monotonic()
            if deadline is not None and remaining is not None and remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if isinstance(item, _Stop):
                # drain the close/submit race window: a submit that passed
                # the _closed check just before close() latched it may have
                # enqueued behind the stop marker — an accepted update (or
                # a waiting flush marker) must be honoured, not silently
                # dropped with the writer's exit
                while True:
                    try:
                        tail = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if isinstance(tail, _Flush):
                        flushes.append(tail)
                    elif not isinstance(tail, _Stop):
                        batch.append(tail)
                return batch, flushes, True
            if isinstance(item, _Flush):
                # everything submitted before the marker is already in
                # `batch` (FIFO queue); close the batch so the caller's
                # wait covers exactly its prefix
                flushes.append(item)
                break
            batch.append(item)
            if deadline is None:
                deadline = time.monotonic() + config.flush_interval
        return batch, flushes, False

    #: Span name of one traced update application; the sharded composition
    #: overrides this so router/shard hops are distinguishable in a trace.
    _APPLY_SPAN_NAME = "engine.apply"

    def _apply_batch(self, batch: List[Update]) -> None:
        start = time.perf_counter()
        applied = 0
        queued_at: Optional[float] = None
        # stage accumulators (mutated by _apply_one): wal_append, backend_apply
        stages = [0.0, 0.0]
        tracer = get_tracer()
        for update in batch:
            stamp = enqueued_at(update)
            if stamp is not None and (queued_at is None or stamp < queued_at):
                queued_at = stamp
            if not self._applicable(update):
                self.metrics.add("updates_rejected")
                continue
            context = update_context(update)
            if context is None:
                self._apply_one(update, stages)
            else:
                position = self.applied + applied
                with tracer.span(
                    self._APPLY_SPAN_NAME,
                    trace_id=context.trace_id,
                    parent_id=context.span_id,
                    shard=getattr(self, "shard_index", 0),
                    position=position,
                    op=update.kind.value,
                ):
                    self._apply_one(update, stages)
                self._note_trace(position, context)
            applied += 1
        if self._wal is not None and self.config.fsync_each_batch:
            sync_start = time.perf_counter()
            self._wal.sync()
            stages[0] += time.perf_counter() - sync_start
        self.applied += applied
        publish_elapsed = 0.0
        if applied:
            publish_start = time.perf_counter()
            self._publish_view()
            publish_elapsed = time.perf_counter() - publish_start
        elapsed = time.perf_counter() - start
        self.metrics.observe_batch(applied, elapsed)
        queue_wait = max(0.0, start - queued_at) if queued_at is not None else 0.0
        if queued_at is not None:
            self.metrics.observe_stage("queue_wait", queue_wait)
        self.metrics.observe_stage("wal_append", stages[0])
        self.metrics.observe_stage("backend_apply", stages[1])
        self.metrics.observe_stage("view_publish", publish_elapsed)
        threshold = self.config.slow_batch_seconds
        if threshold > 0.0 and elapsed >= threshold:
            self.metrics.add("slow_batches")
            _LOG.warning(
                "slow ingest batch: %d update(s) in %.3fs "
                "(queue_wait=%.3fs wal_append=%.3fs backend_apply=%.3fs "
                "view_publish=%.3fs, shard=%s)",
                applied,
                elapsed,
                queue_wait,
                stages[0],
                stages[1],
                publish_elapsed,
                getattr(self, "shard_index", 0),
            )
        if (
            self.config.checkpoint_every
            and self.data_dir is not None
            and self.applied - self._updates_at_checkpoint >= self.config.checkpoint_every
        ):
            self._checkpoint()
            self.metrics.add("checkpoints")

    def _apply_one(self, update: Update, stages: List[float]) -> None:
        """Append + apply one accepted update, accumulating stage time.

        ``stages`` is the batch's two mutable accumulators:
        ``[wal_append, backend_apply]`` elapsed seconds.
        """
        # WAL-before-apply: an accepted update is on disk before it
        # mutates the maintainer, so recovery can always finish it
        if self._wal is not None:
            wal_start = time.perf_counter()
            self._wal.append(update)
            stages[0] += time.perf_counter() - wal_start
        apply_start = time.perf_counter()
        self.maintainer.apply(update)
        stages[1] += time.perf_counter() - apply_start

    # ------------------------------------------------------------------
    # trace propagation (writer thread writes, WAL-serving threads read)
    # ------------------------------------------------------------------
    def _note_trace(self, position: int, context: SpanContext) -> None:
        with self._trace_lock:
            self._trace_positions[position] = context.trace_id
            while len(self._trace_positions) > _TRACE_POSITIONS_CAPACITY:
                self._trace_positions.popitem(last=False)

    def trace_ids(self, start: int, count: int) -> Dict[int, str]:
        """Trace ids of stream positions ``[start, start + count)``.

        Served next to the WAL records so a standby can re-attach trace
        context on replay; empty when nothing in the range was traced.
        """
        if count <= 0:
            return {}
        with self._trace_lock:
            return {
                position: trace_id
                for position, trace_id in self._trace_positions.items()
                if start <= position < start + count
            }

    def _publish_view(self) -> None:
        """Publish view N+1 (writer thread only): patch when possible.

        Drains the backend's :class:`~repro.core.result.ViewDelta` and
        patches the current view from the flip set; falls back to a full
        :meth:`ClusteringView.capture` when the backend cannot track
        deltas, incremental views are disabled, the dirty region exceeds
        the rebuild threshold, or the persistent buckets need re-sizing.
        """
        start = time.perf_counter()
        delta = drain_view_delta(self.maintainer)
        view = None
        flip_set_size: Optional[int] = None
        if not delta.full_rebuild:
            flip_set_size = len(delta.flips)
            if self.config.incremental_views and self._patch_probes:
                num_vertices = self.maintainer.graph.num_vertices
                max_dirty = max(
                    64, int(self.config.view_rebuild_fraction * num_vertices)
                )
                view = self._view.patched(
                    self.maintainer,
                    delta.flips,
                    version=self.applied,
                    max_dirty=max_dirty,
                )
        mode = "incremental"
        if view is None:
            mode = "full"
            view = ClusteringView.capture(self.maintainer, self.applied)
        self._decorate_view(view, delta, mode)
        self._view = view
        self.metrics.observe_view_capture(
            time.perf_counter() - start, mode, flip_set_size
        )

    def _decorate_view(self, view: ClusteringView, delta, mode: str) -> None:
        """Hook run (in the writer thread) just before a view is published.

        The base engine publishes views as-is; the sharded composition
        overrides this to capture the shard's export (owned adjacency and
        similar-neighbour maps) atomically with the view it describes.
        """

    def _applicable(self, update: Update) -> bool:
        """Pre-validate an update against the live graph.

        The WAL must contain exactly the updates that were applied (the
        recovery arithmetic counts them), so no-op updates — inserting an
        existing edge, deleting a missing one, self-loops — are rejected
        before logging instead of failing after.
        """
        if update.u == update.v:
            return False
        has_edge = self.maintainer.graph.has_edge(update.u, update.v)
        if update.kind is UpdateKind.INSERT:
            return not has_edge
        return has_edge

    def _raise_writer_failure(self) -> None:
        if self._failure is not None:
            raise EngineError("writer thread failed") from self._failure

    # ------------------------------------------------------------------
    # replication surface (fencing + WAL shipping)
    # ------------------------------------------------------------------
    @property
    def fenced(self) -> bool:
        """True once a promoted standby fenced this engine off."""
        return self._fenced

    def fence(self, epoch: int) -> None:
        """Fence this engine at ``epoch``: reject all writes from now on.

        Called (over HTTP) by a standby about to promote itself.  The
        epoch must be strictly newer than the engine's own — a stale fence
        request from an abandoned promotion attempt must not fence a
        primary that has since been legitimately re-promoted — and is
        persisted before taking effect, so the fence survives restarts.
        """
        if epoch <= self.epoch:
            raise ValueError(
                f"stale fence epoch {epoch}: engine is already at {self.epoch}"
            )
        if self.data_dir is not None:
            _store_replication_manifest(self.data_dir, epoch, True)
        self.epoch = epoch
        self._fenced = True

    def set_epoch(self, epoch: int) -> None:
        """Adopt ``epoch`` as this engine's own (promotion path, un-fenced)."""
        if epoch < self.epoch:
            raise ValueError(
                f"epoch must not move backwards: {epoch} < {self.epoch}"
            )
        if self.data_dir is not None:
            _store_replication_manifest(self.data_dir, epoch, False)
        self.epoch = epoch
        self._fenced = False

    @property
    def wal_position(self) -> int:
        """Logical stream position covered by the WAL (== ``applied``)."""
        return self.applied

    def wal_segments(self) -> List[WalSegment]:
        """Retained + active WAL segments, sorted by base stream position."""
        if self.data_dir is None:
            return []
        return list_wal_segments(self.data_dir, active_name=WAL_FILE)

    def read_snapshot_document(self) -> Dict[str, object]:
        """The last checkpointed snapshot document (the re-seed payload).

        Read from disk, not captured live: the maintainer belongs to the
        writer thread, while this is called from the serving thread.  A
        durable engine always has one — a checkpoint is cut at startup.
        """
        if self.data_dir is None:
            raise EngineError("engine has no data_dir; nothing to re-seed from")
        path = self.data_dir / SNAPSHOT_FILE
        return json.loads(path.read_text(encoding="utf-8"))

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _checkpoint(self) -> None:
        """Atomically persist the maintainer state and rotate the WAL."""
        assert self.data_dir is not None
        snapshot = take_snapshot(self.maintainer)
        text = snapshot.to_json(indent=2)
        write_durable(self.data_dir / SNAPSHOT_FILE, text)
        if self.config.wal_retain_segments >= 1:
            # the same document again, position-stamped: the time-travel
            # replay anchor for this checkpoint's stream position.  Every
            # retained WAL segment base thus has a matching anchor, and
            # both are pruned in lockstep (_prune_segments).
            write_durable(
                self.data_dir / retained_snapshot_name(snapshot.updates_processed),
                text,
            )
        if self._wal is not None:
            self._wal.close()  # fsyncs the outgoing segment
        self._rotate_wal_segment()
        self._wal = UpdateLogWriter(self.data_dir / WAL_FILE, base=self.applied)
        self._wal.sync()
        self._updates_at_checkpoint = self.applied

    def _rotate_wal_segment(self) -> None:
        """Retain the outgoing WAL as ``wal-<base>.log``; prune old ones.

        The retained suffix is what a lagging standby tails across a
        checkpoint without a snapshot re-seed.  A segment is only retained
        when it has entries (an empty segment covers no stream positions)
        and retention is enabled; pruning keeps the newest
        ``wal_retain_segments`` retained segments.
        """
        wal_path = self.data_dir / WAL_FILE
        if self.config.wal_retain_segments < 1 or not wal_path.exists():
            return
        if self._wal is not None:
            # the just-closed writer knows the outgoing segment's shape;
            # it wrote the file from scratch, so re-parsing it here would
            # double every checkpoint's cost for nothing
            base = self._wal.base
            entries = self._wal.entries_written
        else:
            # startup: the segment is a recovered WAL from a previous
            # process (torn tail possible) — count it from disk
            reader = UpdateLogReader(wal_path, tolerate_torn_tail=True)
            base = reader.base()
            entries = sum(1 for _update in reader)
        if entries < 1:
            return
        # repro: allow[REPRO301] rotating an already-fsynced WAL into its
        # retained segment name; the rename *is* the atomic commit here
        os.replace(wal_path, self.data_dir / segment_file_name(base))
        self._prune_segments()

    def _prune_segments(self) -> None:
        """Prune retained WAL segments (and their snapshot anchors).

        ``wal_retain_segments`` is a *ceiling*, not the only rule: a
        segment beyond the newest-N window survives while anything still
        needs it — a standby that acked a position inside it, or an
        in-flight time-travel read that pinned it
        (:meth:`retention_floor`).  Pruning goes oldest-first and stops at
        the first segment still needed, so the retained run stays
        contiguous (no gaps for :func:`read_wal_range` to trip over).

        Retained snapshot anchors are pruned in lockstep: every anchor at
        or above the oldest surviving segment base is kept, so the oldest
        replayable position is always anchored.
        """
        retained = [
            segment
            for segment in list_wal_segments(self.data_dir)
            if not segment.active
        ]
        floor = self.retention_floor()
        # a segment covers [base, next_base); it is prunable only when it
        # falls outside the newest-N count window AND nothing at or above
        # the retention floor still lives inside it
        for segment, successor in zip(
            retained[: -self.config.wal_retain_segments], retained[1:]
        ):
            if floor is not None and successor.base > floor:
                break
            segment.path.unlink(missing_ok=True)
        survivors = [
            segment
            for segment in list_wal_segments(self.data_dir)
            if not segment.active
        ]
        oldest_base = survivors[0].base if survivors else self.applied
        for anchor in list_retained_snapshots(self.data_dir):
            if anchor.position < oldest_base:
                anchor.path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # retention floor: time-travel pins + standby acks
    # ------------------------------------------------------------------
    def pin_wal(self, position: int) -> int:
        """Pin WAL retention at ``position``; returns a token for :meth:`unpin_wal`.

        While the pin is held, :meth:`_prune_segments` never discards the
        segments (or the snapshot anchor) an in-flight replay from
        ``position`` needs.  Callers must release the token in a
        ``finally`` block — a leaked pin holds segments forever.
        """
        if position < 0:
            raise ValueError(f"pin position must be >= 0, got {position}")
        with self._retention_lock:
            self._pin_seq += 1
            token = self._pin_seq
            self._pins[token] = position
        return token

    def unpin_wal(self, token: int) -> None:
        """Release a retention pin (unknown tokens are ignored)."""
        with self._retention_lock:
            self._pins.pop(token, None)

    def note_standby_ack(self, position: int) -> None:
        """Record the standby ack observed on the WAL-serving route.

        A single last-wins slot, mirroring the manager's per-shard ack
        telemetry: the shipper re-acks on every fetch, so the slot tracks
        the live standby's replay frontier.
        """
        with self._retention_lock:
            self._standby_ack = position

    def retention_floor(self) -> Optional[int]:
        """Oldest stream position WAL pruning must keep replayable.

        ``min`` over the active time-travel pins and the last standby ack;
        ``None`` (no pins, no standby seen) restores the plain
        ``wal_retain_segments`` count window.
        """
        with self._retention_lock:
            candidates = list(self._pins.values())
            if self._standby_ack is not None:
                candidates.append(self._standby_ack)
        return min(candidates) if candidates else None

    def wal_horizon(self) -> Dict[str, object]:
        """How far back this engine's history is replayable.

        The operator-facing ``as_of`` horizon: oldest retained WAL base,
        retained segment count and bytes, the current snapshot position,
        and ``oldest_replayable`` — the oldest position-stamped snapshot
        anchor, i.e. the oldest ``as_of`` the engine can still answer.
        """
        if self.data_dir is None:
            return {
                "durable": False,
                "segments": 0,
                "bytes": 0,
                "oldest_retained_base": None,
                "snapshot_position": None,
                "oldest_replayable": None,
            }
        segments = self.wal_segments()
        total_bytes = 0
        for segment in segments:
            try:
                total_bytes += segment.path.stat().st_size
            except OSError:
                continue  # pruned underneath the listing: benign race
        anchors = list_retained_snapshots(self.data_dir)
        return {
            "durable": True,
            "segments": len(segments),
            "bytes": total_bytes,
            "oldest_retained_base": segments[0].base if segments else None,
            "snapshot_position": self._updates_at_checkpoint,
            "oldest_replayable": anchors[0].position if anchors else None,
        }


def canonicalise_vertex(v: Vertex) -> Vertex:
    """Validate a vertex identifier for service ingestion (lossless).

    The canonical identifier space is exactly what the WAL token format
    can round-trip: ints, and non-empty strings without whitespace.  Ints
    and numeric strings are *distinct* vertices (``123`` ≠ ``"123"``) —
    the WAL escapes ambiguous strings, so nothing needs collapsing.
    Anything else is rejected up front with ``ValueError`` rather than
    failing asynchronously inside the writer thread.
    """
    if isinstance(v, bool) or not isinstance(v, (int, str)):
        raise ValueError(
            f"vertex identifiers must be ints or strings, got {v!r}"
        )
    if isinstance(v, str) and (not v or any(ch.isspace() for ch in v)):
        raise ValueError(
            f"string vertex identifier {v!r} must be non-empty and "
            "whitespace-free"
        )
    return v


def canonicalise_update(update: Update) -> Update:
    """Validate both endpoints of an update (see :func:`canonicalise_vertex`)."""
    canonicalise_vertex(update.u)
    canonicalise_vertex(update.v)
    return update


# ----------------------------------------------------------------------
# replication manifest
# ----------------------------------------------------------------------
def _load_replication_manifest(data_dir: Path) -> Tuple[int, bool]:
    """Read ``(epoch, fenced)`` from the replication manifest (0/False when absent)."""
    path = data_dir / REPLICATION_FILE
    if not path.exists():
        return 0, False
    document = json.loads(path.read_text(encoding="utf-8"))
    if document.get("format") != REPLICATION_FORMAT:
        raise ValueError(f"{path} is not a replication manifest")
    return int(document.get("epoch", 0)), bool(document.get("fenced", False))


def _store_replication_manifest(data_dir: Path, epoch: int, fenced: bool) -> None:
    """Atomically persist the replication manifest (tmp + fsync + rename).

    The fence must hold across restarts — a demoted primary that forgot it
    was fenced would split-brain the stream — so the write is durable
    before the in-memory flag flips.
    """
    document = {"format": REPLICATION_FORMAT, "epoch": epoch, "fenced": fenced}
    write_durable(data_dir / REPLICATION_FILE, json.dumps(document, indent=2))


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
def _recover(
    data_dir: Path,
    params: Optional[StrCluParams],
    connectivity_backend: str,
    label_scope: Optional[Callable[[Vertex, Vertex], bool]] = None,
) -> Tuple[DynStrClu, int]:
    """Rebuild the maintainer from ``snapshot + WAL suffix``.

    Returns the maintainer and the number of WAL entries replayed.  The
    ``label_scope`` predicate (per-shard labelling scope) must be supplied
    *before* the WAL replay so replayed out-of-scope edges stay graph-only.
    """
    snapshot_path = data_dir / SNAPSHOT_FILE
    wal_path = data_dir / WAL_FILE
    if snapshot_path.exists():
        snapshot = load_snapshot(snapshot_path)
        maintainer = restore_dynstrclu(
            snapshot,
            connectivity_backend=connectivity_backend,
            scope=label_scope,
        )
        applied_at_snapshot = snapshot.updates_processed
    else:
        if params is None:
            raise ValueError(
                f"no snapshot in {data_dir} and no params to start fresh from"
            )
        maintainer = DynStrClu(
            params, connectivity_backend=connectivity_backend, scope=label_scope
        )
        applied_at_snapshot = 0

    replayed = 0
    if wal_path.exists():
        reader = UpdateLogReader(wal_path, tolerate_torn_tail=True)
        base = reader.base()
        skip = max(0, applied_at_snapshot - base)
        for index, update in enumerate(reader):
            if index < skip:
                continue
            maintainer.apply(update)
            replayed += 1
    return maintainer, replayed
