"""Time-travel reads: ``as_of`` historical queries over retained state.

The durability layer already retains everything needed to reconstruct any
past state of a tenant — position-stamped snapshot anchors
(``snapshot-<position>.json``, cut at every checkpoint) and the retained
WAL segments behind them.  This module turns that retention into a read
feature, following the reenactment idea (replay the log to the requested
point instead of materialising every version eagerly):

* **Anchor + replay.**  A query ``as_of=P`` locates the newest retained
  snapshot at position ``≤ P``, restores it through the exact machinery
  crash recovery and standby re-seeds use
  (:func:`repro.persistence.snapshot.restore_dynstrclu`), and replays the
  retained WAL forward through
  :func:`repro.service.replication.read_wal_range` — the same range reader
  that ships WAL to standbys — stopping exactly at ``P``.
* **Cached replayers.**  The replayed maintainer is kept per shard; a
  later query at ``P' ≥ P`` continues the replay forward instead of
  restarting from an anchor, so walking a tenant's history in order costs
  each WAL record once.
* **Materialised-view LRU.**  The captured views are held in a
  size-bounded LRU keyed by the requested position tuple, so repeated
  audits of the same epoch are O(1) lookups.
* **Retention pins.**  Before replaying, the store pins the engine's WAL
  retention at the anchor position
  (:meth:`~repro.service.engine.ClusteringEngine.pin_wal`), so a
  checkpoint cut mid-replay cannot prune the segments out from under it.
* **Sharded tenants.**  Each shard replays to its own position, exports
  are captured with :func:`repro.service.sharding.capture_shard_export`,
  and the per-shard snapshots go through the *live* scatter-gather merge
  (:func:`repro.service.sharding.merge_shard_views`) — historical sharded
  reads are exactly as exact as current ones.

History that has been pruned past the retention horizon raises
:class:`AsOfUnavailableError` (HTTP ``410 as_of_unavailable``) carrying
the oldest position still replayable.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.persistence.snapshot import list_retained_snapshots, load_snapshot, restore_dynstrclu
from repro.service.engine import ClusteringEngine, EngineError
from repro.service.metrics import LatencyHistogram
from repro.service.replication import StandbyEngine, WalGapError, read_wal_range
from repro.service.sharding import (
    AnyEngine,
    ShardedEngine,
    ShardedView,
    _OwnerMap,
    capture_shard_export,
    merge_shard_views,
)
from repro.service.views import ClusteringView

#: Records pulled per replay iteration (matches the shipping clamp).
REPLAY_FETCH_RECORDS = 4096

#: Consecutive empty fetches tolerated before a replay gives up: an empty
#: chunk only happens in a rotation race window, which the next listing
#: resolves, so a long run of them means the WAL cannot produce the range.
_MAX_REPLAY_STALLS = 50

#: Default bound on materialised historical views kept per tenant.
DEFAULT_HISTORY_CACHE_SIZE = 8


class AsOfUnavailableError(EngineError):
    """The requested historical position is no longer replayable.

    Raised when the snapshot anchor / WAL segments an ``as_of`` replay
    needs have been pruned past the retention horizon.  Carries the
    context the HTTP 410 body surfaces: ``requested`` (the position asked
    for), ``oldest`` (the oldest position still replayable — ``None``
    when the tenant has no replayable history at all) and ``shard`` (the
    shard whose history ran out, for sharded tenants).
    """

    def __init__(
        self,
        message: str,
        requested: int = 0,
        oldest: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.requested = requested
        self.oldest = oldest
        self.shard = shard


class _Replayer:
    """One shard's cached read-only replay maintainer and its position."""

    __slots__ = ("maintainer", "position")

    def __init__(self, maintainer: object, position: int) -> None:
        self.maintainer = maintainer
        self.position = position


def _advance(maintainer: object, target: ClusteringEngine, position: int, goal: int) -> int:
    """Replay ``target``'s WAL through ``maintainer`` from ``position`` to ``goal``.

    Reuses :func:`read_wal_range` — the standby-shipping range reader —
    so rotation races, pruned segments and torn tails are handled by the
    one battle-tested implementation.  Re-lists the segments per
    iteration (a checkpoint may rotate the active log mid-replay).
    """
    stalls = 0
    while position < goal:
        try:
            chunk = read_wal_range(
                target.wal_segments(), position, REPLAY_FETCH_RECORDS, goal
            )
        except WalGapError as exc:
            raise AsOfUnavailableError(
                f"positions below {exc.min_position} are no longer retained "
                f"(requested replay through {goal})",
                requested=goal,
                oldest=target.wal_horizon()["oldest_replayable"],
            ) from exc
        if chunk.torn:
            raise AsOfUnavailableError(
                f"a retained WAL segment is damaged; cannot replay to {goal}",
                requested=goal,
                oldest=target.wal_horizon()["oldest_replayable"],
            )
        if not chunk.records:
            stalls += 1
            if stalls > _MAX_REPLAY_STALLS:
                raise EngineError(
                    f"as_of replay stalled at position {position} "
                    f"(goal {goal}): the WAL cannot produce the range"
                )
            time.sleep(0.01)
            continue
        stalls = 0
        for update in chunk.records:
            maintainer.apply(update)
            position += 1
    return position


class HistoricalViewStore:
    """Materialised historical views of one tenant, replayed on demand.

    One store per tenant, created lazily by
    :meth:`repro.service.manager.EngineManager.timetravel`.  Thread-safe:
    LRU lookups take a short lock; replays are serialised behind a
    dedicated replay lock (one historical rebuild at a time per tenant —
    they share the cached replayers).

    Counters (``timetravel_hits`` / ``timetravel_misses`` /
    ``timetravel_evictions``) go through the engine's own metrics, so they
    appear in the tenant's ``/stats`` counter block; replay wall-clock is
    tracked in a dedicated latency histogram exposed via :meth:`stats`.
    """

    def __init__(
        self,
        engine: Union[AnyEngine, StandbyEngine],
        capacity: int = DEFAULT_HISTORY_CACHE_SIZE,
    ) -> None:
        if capacity < 1:
            raise ValueError("history cache capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.replay_latency = LatencyHistogram()
        self._lock = threading.Lock()
        self._replay_lock = threading.Lock()
        self._views: "OrderedDict[Tuple[int, ...], object]" = OrderedDict()  # guarded-by: _lock
        self._replayers: Dict[int, _Replayer] = {}  # guarded-by: _replay_lock

    # ------------------------------------------------------------------
    # engine-shape resolution (per call: survives re-seeds and promotion)
    # ------------------------------------------------------------------
    def _shape(self) -> AnyEngine:
        engine = self.engine
        if isinstance(engine, StandbyEngine):
            engine = engine.engine
        return engine

    def _targets(self) -> List[ClusteringEngine]:
        shape = self._shape()
        if isinstance(shape, ShardedEngine):
            targets: List[ClusteringEngine] = list(shape.shards)
        else:
            targets = [shape]
        for target in targets:
            if target.data_dir is None:
                raise ValueError(
                    "as_of requires a durable tenant (snapshot + WAL "
                    "retention); this tenant keeps no history"
                )
        return targets

    @property
    def num_shards(self) -> int:
        """Expected length of an ``as_of`` position tuple for this tenant."""
        return getattr(self._shape(), "num_shards", 1)

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------
    def view_at(self, positions: Sequence[int]) -> object:
        """The tenant's view at the requested per-shard position tuple.

        ``positions`` must hold exactly one position per shard (one
        entry for unsharded tenants).  Returns a
        :class:`~repro.service.views.ClusteringView` (unsharded) or
        :class:`~repro.service.sharding.ShardedView` (sharded) — the same
        read surface the live path serves.  Raises ``ValueError`` for a
        malformed request (wrong tuple length, position beyond the
        applied prefix, non-durable tenant) and
        :class:`AsOfUnavailableError` for pruned history.
        """
        key = tuple(int(position) for position in positions)
        if any(position < 0 for position in key):
            raise ValueError(f"as_of positions must be >= 0, got {list(key)}")
        metrics = self.engine.metrics
        with self._lock:
            view = self._views.get(key)
            if view is not None:
                self._views.move_to_end(key)
                metrics.add("timetravel_hits")
                return view
        with self._replay_lock:
            # re-check: a concurrent request may have materialised it
            # while this one waited for the replay lock
            with self._lock:
                view = self._views.get(key)
                if view is not None:
                    self._views.move_to_end(key)
                    metrics.add("timetravel_hits")
                    return view
            targets = self._targets()
            if len(key) != len(targets):
                raise ValueError(
                    f"as_of needs exactly {len(targets)} per-shard "
                    f"position(s) for this tenant, got {len(key)}"
                )
            for index, (target, goal) in enumerate(zip(targets, key)):
                if goal > target.applied:
                    raise ValueError(
                        f"as_of position {goal} is beyond the applied "
                        f"prefix {target.applied}"
                        + (f" of shard {index}" if len(targets) > 1 else "")
                    )
            metrics.add("timetravel_misses")
            start = time.perf_counter()
            maintainers = [
                self._replay_locked(target, index, goal)
                for index, (target, goal) in enumerate(zip(targets, key))
            ]
            view = self._capture(maintainers, key)
            self.replay_latency.observe(time.perf_counter() - start)
            with self._lock:
                self._views[key] = view
                self._views.move_to_end(key)
                while len(self._views) > self.capacity:
                    self._views.popitem(last=False)
                    metrics.add("timetravel_evictions")
            return view

    def _capture(
        self, maintainers: List[object], key: Tuple[int, ...]
    ) -> Union[ClusteringView, ShardedView]:
        shape = self._shape()
        if not isinstance(shape, ShardedEngine):
            return ClusteringView.capture(maintainers[0], key[0])
        owner = getattr(shape, "_owner", None) or _OwnerMap(shape.num_shards)
        snapshots = tuple(
            (
                ClusteringView.capture(maintainer, position),
                capture_shard_export(
                    maintainer, index, shape.num_shards, position, owner=owner
                ),
            )
            for index, (maintainer, position) in enumerate(zip(maintainers, key))
        )
        return merge_shard_views(snapshots, shape.params, shape.num_shards, owner=owner)

    def _replay_locked(self, target: ClusteringEngine, index: int, goal: int) -> object:
        """A maintainer holding shard ``index``'s state at exactly ``goal``.

        Caller holds ``_replay_lock`` (the ``_locked`` suffix is the
        project convention the guarded-field checker understands): the
        cached ``_replayers`` are mutated freely here because
        :meth:`view_at` serialises every replay behind that lock.
        """
        slot = self._replayers.get(index)
        if slot is not None and slot.position <= goal:
            token = target.pin_wal(slot.position)
            try:
                _advance(slot.maintainer, target, slot.position, goal)
                slot.position = goal
                return slot.maintainer
            except AsOfUnavailableError:
                # the WAL behind the cached replayer was pruned (or is
                # damaged): drop it and rebuild from a fresh anchor below
                self._replayers.pop(index, None)
            except BaseException:
                # a replay that died mid-application leaves the cached
                # maintainer between positions — unusable, discard it
                self._replayers.pop(index, None)
                raise
            finally:
                target.unpin_wal(token)
        anchors = [
            anchor
            for anchor in list_retained_snapshots(target.data_dir)
            if anchor.position <= goal
        ]
        if not anchors:
            raise AsOfUnavailableError(
                f"no retained snapshot at or below position {goal}"
                + (f" for shard {index}" if self.num_shards > 1 else ""),
                requested=goal,
                oldest=target.wal_horizon()["oldest_replayable"],
                shard=index if self.num_shards > 1 else None,
            )
        anchor = anchors[-1]
        token = target.pin_wal(anchor.position)
        try:
            try:
                snapshot = load_snapshot(anchor.path)
            except FileNotFoundError:
                # pruned between the listing and the pin landing
                raise AsOfUnavailableError(
                    f"snapshot anchor at {anchor.position} was pruned",
                    requested=goal,
                    oldest=target.wal_horizon()["oldest_replayable"],
                    shard=index if self.num_shards > 1 else None,
                ) from None
            maintainer = restore_dynstrclu(
                snapshot,
                connectivity_backend=target.connectivity_backend,
                scope=target.label_scope,
            )
            try:
                _advance(maintainer, target, snapshot.updates_processed, goal)
            except AsOfUnavailableError as exc:
                if self.num_shards > 1 and exc.shard is None:
                    exc.shard = index
                raise
        finally:
            target.unpin_wal(token)
        self._replayers[index] = _Replayer(maintainer, goal)
        return maintainer

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The ``timetravel`` stats block of this tenant."""
        metrics = self.engine.metrics
        with self._lock:
            cached = len(self._views)
        return {
            "cached_views": cached,
            "capacity": self.capacity,
            "hits": metrics.get("timetravel_hits"),
            "misses": metrics.get("timetravel_misses"),
            "evictions": metrics.get("timetravel_evictions"),
            "replay": self.replay_latency.summary(),
        }

    def clear(self) -> None:
        """Drop every cached view and replayer (tenant delete / close).

        Lock order matches :meth:`view_at` (``_replay_lock`` outside,
        ``_lock`` inside) so a clear racing a replay cannot deadlock.
        """
        with self._replay_lock:
            with self._lock:
                self._views.clear()
            self._replayers.clear()
