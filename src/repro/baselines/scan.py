"""The original SCAN algorithm (Xu et al., KDD 2007) — exact, from scratch.

SCAN computes the exact structural similarity of every edge, labels the
edges against ``ε``, determines the cores against ``μ`` and expands clusters
from the cores.  Its cost is dominated by the similarity computations —
``O(m^1.5)`` in the worst case — which is exactly the work the dynamic
algorithms avoid re-doing on every update.

The exact clusterings produced here are the ground truth for every quality
experiment (Tables 2 and 3) and for the equivalence property tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.labelling import EdgeLabel, exact_labelling
from repro.core.result import Clustering, compute_clusters
from repro.graph.dynamic_graph import DynamicGraph, Vertex
from repro.graph.similarity import SimilarityKind
from repro.instrumentation import NULL_COUNTER, OpCounter

Edge = Tuple[Vertex, Vertex]


def static_scan(
    graph: DynamicGraph,
    epsilon: float,
    mu: int,
    similarity: SimilarityKind | str = SimilarityKind.JACCARD,
    counter: Optional[OpCounter] = None,
) -> Clustering:
    """Run SCAN from scratch and return the exact StrCluResult.

    Parameters
    ----------
    graph:
        The graph to cluster.
    epsilon:
        Similarity threshold in ``(0, 1]``.
    mu:
        Core threshold (minimum number of similar neighbours).
    similarity:
        Jaccard (default) or cosine structural similarity.
    counter:
        Optional operation counter; one ``similarity_eval`` per edge is
        recorded plus ``neighbour_probe`` for the scanned neighbourhood sizes.
    """
    counter = counter if counter is not None else NULL_COUNTER
    kind = SimilarityKind(similarity)
    labels = scan_labelling(graph, epsilon, kind, counter)
    return compute_clusters(graph, labels, mu)


def scan_labelling(
    graph: DynamicGraph,
    epsilon: float,
    similarity: SimilarityKind | str = SimilarityKind.JACCARD,
    counter: Optional[OpCounter] = None,
) -> Dict[Edge, EdgeLabel]:
    """Exact edge labelling computed the way SCAN does (every edge scanned)."""
    counter = counter if counter is not None else NULL_COUNTER
    kind = SimilarityKind(similarity)
    for u, v in graph.edges():
        counter.add("similarity_eval")
        counter.add("neighbour_probe", min(graph.degree(u), graph.degree(v)) + 1)
    return exact_labelling(graph, epsilon, kind)
