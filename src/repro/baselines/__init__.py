"""Baseline algorithms the paper compares against.

* :func:`~repro.baselines.scan.static_scan` — the original SCAN algorithm
  (Xu et al., 2007): exact structural clustering computed from scratch.
* :class:`~repro.baselines.pscan.ExactDynamicSCAN` — a pSCAN-style dynamic
  maintainer: exact edge labels kept up to date by re-scanning the affected
  neighbourhoods on every update (``O(n)`` worst-case per update).
* :class:`~repro.baselines.hscan.IndexedDynamicSCAN` — an hSCAN-style
  index: per-vertex similarity-sorted neighbour orders maintained under
  updates (``O(n log n)`` per update) so that the clustering for *any*
  ``(ε, μ)`` given on the fly can be reported in ``O(n + m)``.
"""

from repro.baselines.hscan import IndexedDynamicSCAN
from repro.baselines.pscan import ExactDynamicSCAN
from repro.baselines.scan import static_scan

__all__ = ["static_scan", "ExactDynamicSCAN", "IndexedDynamicSCAN"]
