"""hSCAN-style index-based dynamic maintenance.

The paper's second dynamic competitor (Wen et al.'s index, called hSCAN in
the paper) maintains, for every vertex, its neighbours ordered by exact
structural similarity.  The index is more general than pSCAN's labels: the
clustering for *any* ``(ε, μ)`` supplied at query time can be reported in
``O(n + m)``, because "is ``u`` a core for (ε, μ)" reduces to comparing the
μ-th largest incident similarity against ε.

The price is the update cost: every affected similarity has to be recomputed
*and* repositioned in the sorted orders, giving ``O(n log n)`` per update —
a log-factor worse than pSCAN, which matches the ordering observed in the
paper's Figures 7 and 8.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.dynelm import Update, UpdateKind
from repro.core.labelling import EdgeLabel
from repro.core.result import Clustering, compute_clusters
from repro.graph.dynamic_graph import DynamicGraph, Vertex, canonical_edge
from repro.graph.similarity import SimilarityKind, structural_similarity
from repro.instrumentation import MemoryModel, NULL_COUNTER, OpCounter

Edge = Tuple[Vertex, Vertex]


class _NeighbourOrder:
    """Similarity-descending order of one vertex's neighbours.

    Stored as an ascending list of ``(-similarity, neighbour_key, neighbour)``
    triples so that ``bisect`` keeps it sorted under single-entry updates in
    ``O(d)`` element moves but ``O(log d)`` comparisons — the log factor the
    hSCAN analysis pays per affected edge.
    """

    __slots__ = ("_entries", "_current")

    def __init__(self) -> None:
        self._entries: List[Tuple[float, str, Vertex]] = []
        self._current: Dict[Vertex, float] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def similarity_of(self, neighbour: Vertex) -> Optional[float]:
        return self._current.get(neighbour)

    def set(self, neighbour: Vertex, similarity: float) -> None:
        """Insert or reposition ``neighbour`` with its new similarity."""
        self.remove(neighbour)
        entry = (-similarity, repr(neighbour), neighbour)
        bisect.insort(self._entries, entry)
        self._current[neighbour] = similarity

    def remove(self, neighbour: Vertex) -> None:
        """Remove ``neighbour`` from the order (no-op if absent)."""
        old = self._current.pop(neighbour, None)
        if old is None:
            return
        entry = (-old, repr(neighbour), neighbour)
        index = bisect.bisect_left(self._entries, entry)
        while index < len(self._entries):
            if self._entries[index][2] == neighbour:
                del self._entries[index]
                return
            index += 1

    def kth_similarity(self, k: int) -> float:
        """The ``k``-th largest incident similarity (0.0 if fewer than ``k``)."""
        if k < 1 or k > len(self._entries):
            return 0.0
        return -self._entries[k - 1][0]

    def neighbours_at_least(self, epsilon: float) -> List[Vertex]:
        """Neighbours whose similarity is at least ``epsilon`` (most similar first)."""
        out: List[Vertex] = []
        for neg_sim, _key, neighbour in self._entries:
            if -neg_sim < epsilon:
                break
            out.append(neighbour)
        return out


class IndexedDynamicSCAN:
    """Dynamic similarity index supporting clustering queries for any (ε, μ)."""

    def __init__(
        self,
        similarity: SimilarityKind | str = SimilarityKind.JACCARD,
        counter: Optional[OpCounter] = None,
        graph: Optional[DynamicGraph] = None,
    ) -> None:
        self.similarity = SimilarityKind(similarity)
        self.counter = counter if counter is not None else NULL_COUNTER
        self.graph = graph if graph is not None else DynamicGraph()
        self.orders: Dict[Vertex, _NeighbourOrder] = {}
        self.updates_processed = 0
        self._memory_model = MemoryModel()

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        similarity: SimilarityKind | str = SimilarityKind.JACCARD,
        counter: Optional[OpCounter] = None,
    ) -> "IndexedDynamicSCAN":
        """Build the index by inserting every edge in turn."""
        algo = cls(similarity, counter)
        for u, v in edges:
            algo.insert_edge(u, v)
        return algo

    def _order(self, u: Vertex) -> _NeighbourOrder:
        order = self.orders.get(u)
        if order is None:
            order = _NeighbourOrder()
            self.orders[u] = order
        return order

    # ------------------------------------------------------------------
    def _recompute_edge(self, x: Vertex, y: Vertex) -> None:
        self.counter.add("similarity_eval")
        self.counter.add("neighbour_probe", min(self.graph.degree(x), self.graph.degree(y)) + 1)
        sigma = structural_similarity(self.graph, x, y, self.similarity)
        self.counter.add("index_op", 2)
        self._order(x).set(y, sigma)
        self._order(y).set(x, sigma)

    def _refresh_incident(self, vertices: Tuple[Vertex, ...]) -> None:
        seen = set()
        for x in vertices:
            for y in self.graph.neighbours(x):
                edge = canonical_edge(x, y)
                if edge in seen:
                    continue
                seen.add(edge)
                self._recompute_edge(x, y)

    # ------------------------------------------------------------------
    def apply(self, update: Update) -> None:
        """Process one :class:`Update`."""
        if update.kind is UpdateKind.INSERT:
            self.insert_edge(update.u, update.v)
        else:
            self.delete_edge(update.u, update.v)

    def insert_edge(self, u: Vertex, w: Vertex) -> None:
        """Insert edge ``(u, w)`` and refresh the affected neighbour orders."""
        self.updates_processed += 1
        self.counter.add("update")
        self.graph.insert_edge(u, w)
        self._refresh_incident((u, w))

    def delete_edge(self, u: Vertex, w: Vertex) -> None:
        """Delete edge ``(u, w)`` and refresh the affected neighbour orders."""
        self.updates_processed += 1
        self.counter.add("update")
        self.graph.delete_edge(u, w)
        self._order(u).remove(w)
        self._order(w).remove(u)
        self.counter.add("index_op", 2)
        self._refresh_incident((u, w))

    # ------------------------------------------------------------------
    def is_core(self, u: Vertex, epsilon: float, mu: int) -> bool:
        """Core test for on-the-fly parameters via the μ-th largest similarity."""
        return self._order(u).kth_similarity(mu) >= epsilon

    def edge_similarity(self, u: Vertex, v: Vertex) -> Optional[float]:
        """Indexed exact similarity of edge ``(u, v)`` (None when absent)."""
        return self._order(u).similarity_of(v)

    def labelling(self, epsilon: float) -> Dict[Edge, EdgeLabel]:
        """Exact labelling for a query-time ε, read off the index."""
        labels: Dict[Edge, EdgeLabel] = {}
        for u, v in self.graph.edges():
            sigma = self._order(u).similarity_of(v) or 0.0
            labels[canonical_edge(u, v)] = (
                EdgeLabel.SIMILAR if sigma >= epsilon else EdgeLabel.DISSIMILAR
            )
        return labels

    def clustering(self, epsilon: float, mu: int) -> Clustering:
        """StrCluResult for on-the-fly ``(ε, μ)`` in O(n + m) using the index."""
        return compute_clusters(self.graph, self.labelling(epsilon), mu)

    def memory_words(self) -> int:
        """Logical structure size in machine words (Table 1 memory model)."""
        n = self.graph.num_vertices
        m = self.graph.num_edges
        index_entries = sum(len(order) for order in self.orders.values())
        return self._memory_model.words(
            vertex_record=n,
            adjacency_entry=2 * m,
            index_entry=index_entries,
        )
