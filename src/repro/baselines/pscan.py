"""pSCAN-style exact dynamic maintenance (the O(n)-per-update baseline).

The paper's dynamic competitor pSCAN (Chang et al.) keeps the exact edge
labels valid under updates: when edge ``(u, w)`` is inserted or deleted, the
similarities of every edge incident on ``u`` or ``w`` may change, so the
maintainer recomputes them by scanning the corresponding neighbourhoods.
The per-update cost is therefore ``Θ(Σ_{x∈N(u)∪N(w)} min(d)) = O(n)`` in the
worst case — the bound the paper's DynELM improves to poly-logarithmic.

This re-implementation captures that maintenance strategy (not the original
C++ code): exact labels at all times, neighbourhood re-scans per update, and
clustering retrieval in ``O(n + m)`` upon request.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.dynelm import Update, UpdateKind
from repro.core.labelling import EdgeLabel
from repro.core.result import Clustering, compute_clusters
from repro.graph.dynamic_graph import DynamicGraph, Vertex, canonical_edge
from repro.graph.similarity import SimilarityKind, structural_similarity
from repro.instrumentation import MemoryModel, NULL_COUNTER, OpCounter

Edge = Tuple[Vertex, Vertex]


class ExactDynamicSCAN:
    """Exact dynamic structural clustering via per-update neighbourhood re-scans."""

    def __init__(
        self,
        epsilon: float,
        mu: int,
        similarity: SimilarityKind | str = SimilarityKind.JACCARD,
        counter: Optional[OpCounter] = None,
        graph: Optional[DynamicGraph] = None,
    ) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        if mu < 1:
            raise ValueError(f"mu must be >= 1, got {mu}")
        self.epsilon = epsilon
        self.mu = mu
        self.similarity = SimilarityKind(similarity)
        self.counter = counter if counter is not None else NULL_COUNTER
        self.graph = graph if graph is not None else DynamicGraph()
        self.labels: Dict[Edge, EdgeLabel] = {}
        self.updates_processed = 0
        self._memory_model = MemoryModel()

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        epsilon: float,
        mu: int,
        similarity: SimilarityKind | str = SimilarityKind.JACCARD,
        counter: Optional[OpCounter] = None,
    ) -> "ExactDynamicSCAN":
        """Build the maintainer by inserting every edge in turn."""
        algo = cls(epsilon, mu, similarity, counter)
        for u, v in edges:
            algo.insert_edge(u, v)
        return algo

    # ------------------------------------------------------------------
    def _label_edge(self, u: Vertex, v: Vertex) -> EdgeLabel:
        self.counter.add("similarity_eval")
        self.counter.add("neighbour_probe", min(self.graph.degree(u), self.graph.degree(v)) + 1)
        sigma = structural_similarity(self.graph, u, v, self.similarity)
        return EdgeLabel.SIMILAR if sigma >= self.epsilon else EdgeLabel.DISSIMILAR

    def _refresh_incident(self, vertices: Tuple[Vertex, ...]) -> List[Tuple[Edge, EdgeLabel]]:
        """Recompute the labels of every edge incident on the given vertices."""
        flips: List[Tuple[Edge, EdgeLabel]] = []
        seen = set()
        for x in vertices:
            for y in self.graph.neighbours(x):
                edge = canonical_edge(x, y)
                if edge in seen:
                    continue
                seen.add(edge)
                new = self._label_edge(x, y)
                if self.labels.get(edge) is not new:
                    flips.append((edge, new))
                self.labels[edge] = new
        return flips

    # ------------------------------------------------------------------
    def apply(self, update: Update) -> None:
        """Process one :class:`Update`."""
        if update.kind is UpdateKind.INSERT:
            self.insert_edge(update.u, update.v)
        else:
            self.delete_edge(update.u, update.v)

    def insert_edge(self, u: Vertex, w: Vertex) -> None:
        """Insert edge ``(u, w)`` and restore exact labels around ``u`` and ``w``."""
        self.updates_processed += 1
        self.counter.add("update")
        self.graph.insert_edge(u, w)
        self._refresh_incident((u, w))

    def delete_edge(self, u: Vertex, w: Vertex) -> None:
        """Delete edge ``(u, w)`` and restore exact labels around ``u`` and ``w``."""
        self.updates_processed += 1
        self.counter.add("update")
        self.graph.delete_edge(u, w)
        self.labels.pop(canonical_edge(u, w), None)
        self._refresh_incident((u, w))

    # ------------------------------------------------------------------
    def edge_label(self, u: Vertex, v: Vertex) -> Optional[EdgeLabel]:
        """Current (exact) label of edge ``(u, v)``."""
        return self.labels.get(canonical_edge(u, v))

    def clustering(self) -> Clustering:
        """Exact StrCluResult for the current graph (Fact 1, O(n + m))."""
        return compute_clusters(self.graph, self.labels, self.mu)

    def memory_words(self) -> int:
        """Logical structure size in machine words (Table 1 memory model)."""
        n = self.graph.num_vertices
        m = self.graph.num_edges
        return self._memory_model.words(
            vertex_record=n,
            adjacency_entry=2 * m,
            edge_label=m,
        )
