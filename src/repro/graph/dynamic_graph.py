"""Dynamic undirected graph storage.

The paper maintains, for every vertex ``u``, its closed neighbourhood
``N[u]`` in a balanced binary search tree so that membership queries,
insertions and deletions each cost ``O(log n)``.  In Python a hash ``set``
provides the same operations in O(1) expected time, which only improves the
constants and does not change any amortized bound, so :class:`DynamicGraph`
stores a ``dict`` mapping each vertex to a ``set`` of its neighbours.

Edges are undirected and simple: no self loops, no parallel edges.  Vertex
identifiers may be any hashable object, though the experiment harness uses
consecutive integers (the paper relabels vertices to ``1..n``).
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) representation of the undirected edge.

    The two endpoints are ordered by ``repr`` as a total order fallback when
    the identifiers are not mutually comparable; integer identifiers order
    numerically.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class GraphError(ValueError):
    """Raised on invalid graph mutations (duplicate edge, missing edge, self loop)."""


class DynamicGraph:
    """An undirected simple graph supporting edge insertions and deletions.

    The structure is the substrate underneath every algorithm in this
    repository: DynELM/DynStrClu, the SCAN baseline and the pSCAN/hSCAN-style
    dynamic baselines all operate on a :class:`DynamicGraph`.

    Example
    -------
    >>> g = DynamicGraph()
    >>> g.insert_edge(1, 2)
    >>> g.insert_edge(2, 3)
    >>> sorted(g.neighbours(2))
    [1, 3]
    >>> g.degree(2)
    2
    >>> sorted(g.closed_neighbourhood(2))
    [1, 2, 3]
    """

    __slots__ = ("_adj", "_nbr_list", "_nbr_pos", "_num_edges")

    def __init__(self, edges: Iterable[Edge] | None = None) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        # parallel array representation of each neighbour set so that a
        # uniformly random neighbour can be drawn in O(1) — required by the
        # sampling-based similarity estimator (paper Section 4, Remark)
        self._nbr_list: Dict[Vertex, List[Vertex]] = {}
        self._nbr_pos: Dict[Vertex, Dict[Vertex, int]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.insert_edge(u, v)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices currently present (isolated vertices included)."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges currently present."""
        return self._num_edges

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges, each reported once in canonical order."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                edge = canonical_edge(u, v)
                if edge[0] == u:
                    yield edge

    def has_vertex(self, u: Vertex) -> bool:
        """Return True if ``u`` is a vertex of the graph."""
        return u in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return True if the edge ``(u, v)`` is present."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def degree(self, u: Vertex) -> int:
        """Return ``d[u]``, the number of neighbours of ``u`` (0 if absent)."""
        nbrs = self._adj.get(u)
        return 0 if nbrs is None else len(nbrs)

    def neighbours(self, u: Vertex) -> Set[Vertex]:
        """Return the (open) neighbour set of ``u``.

        The returned set is the live internal set; callers must not mutate
        it.  Use :meth:`closed_neighbourhood` for ``N[u]`` including ``u``.
        """
        return self._adj.get(u, set())

    def closed_neighbourhood(self, u: Vertex) -> Set[Vertex]:
        """Return ``N[u]``: the neighbours of ``u`` plus ``u`` itself (a copy)."""
        closed = set(self._adj.get(u, ()))
        closed.add(u)
        return closed

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def add_vertex(self, u: Vertex) -> None:
        """Ensure ``u`` exists (no-op if already present)."""
        if u not in self._adj:
            self._adj[u] = set()
            self._nbr_list[u] = []
            self._nbr_pos[u] = {}

    def _append_neighbour(self, u: Vertex, v: Vertex) -> None:
        self._nbr_pos[u][v] = len(self._nbr_list[u])
        self._nbr_list[u].append(v)

    def _pop_neighbour(self, u: Vertex, v: Vertex) -> None:
        lst = self._nbr_list[u]
        pos = self._nbr_pos[u].pop(v)
        last = lst.pop()
        if last != v:
            lst[pos] = last
            self._nbr_pos[u][last] = pos

    def insert_edge(self, u: Vertex, v: Vertex) -> None:
        """Insert the undirected edge ``(u, v)``.

        Raises
        ------
        GraphError
            If ``u == v`` (self loop) or the edge already exists.
        """
        if u == v:
            raise GraphError(f"self loops are not allowed: ({u!r}, {v!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        u_nbrs = self._adj[u]
        if v in u_nbrs:
            raise GraphError(f"edge ({u!r}, {v!r}) already exists")
        u_nbrs.add(v)
        self._adj[v].add(u)
        self._append_neighbour(u, v)
        self._append_neighbour(v, u)
        self._num_edges += 1

    def delete_edge(self, u: Vertex, v: Vertex) -> None:
        """Delete the undirected edge ``(u, v)``.

        Endpoints remain as (possibly isolated) vertices.

        Raises
        ------
        GraphError
            If the edge does not exist.
        """
        u_nbrs = self._adj.get(u)
        if u_nbrs is None or v not in u_nbrs:
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        u_nbrs.discard(v)
        self._adj[v].discard(u)
        self._pop_neighbour(u, v)
        self._pop_neighbour(v, u)
        self._num_edges -= 1

    def remove_vertex(self, u: Vertex) -> None:
        """Remove ``u`` and all incident edges (no-op if absent)."""
        nbrs = self._adj.pop(u, None)
        if nbrs is None:
            return
        for v in nbrs:
            self._adj[v].discard(u)
            self._pop_neighbour(v, u)
        self._nbr_list.pop(u, None)
        self._nbr_pos.pop(u, None)
        self._num_edges -= len(nbrs)

    # ------------------------------------------------------------------
    # random access (sampling estimator support)
    # ------------------------------------------------------------------
    def random_closed_neighbour(self, u: Vertex, rng: random.Random) -> Vertex:
        """Return a uniformly random member of the closed neighbourhood ``N[u]``.

        ``u`` itself is returned with probability ``1 / (d[u] + 1)``.  The
        draw costs O(1), which is what makes the paper's sampling estimator
        poly-logarithmic instead of linear.
        """
        lst = self._nbr_list.get(u)
        if not lst:
            return u
        index = rng.randrange(len(lst) + 1)
        return u if index == len(lst) else lst[index]

    # ------------------------------------------------------------------
    # derived quantities used throughout the paper
    # ------------------------------------------------------------------
    def common_closed_neighbours(self, u: Vertex, v: Vertex) -> int:
        """Return ``|N[u] ∩ N[v]|`` for adjacent or non-adjacent ``u, v``.

        Iterates over the smaller closed neighbourhood, so the cost is
        ``O(min(d[u], d[v]))`` set probes.
        """
        nu = self.closed_neighbourhood(u)
        nv = self.closed_neighbourhood(v)
        if len(nu) > len(nv):
            nu, nv = nv, nu
        return sum(1 for w in nu if w in nv)

    def union_closed_neighbours(self, u: Vertex, v: Vertex) -> int:
        """Return ``|N[u] ∪ N[v]|`` via inclusion–exclusion."""
        a = self.common_closed_neighbours(u, v)
        return len(self.closed_neighbourhood(u)) + len(self.closed_neighbourhood(v)) - a

    def copy(self) -> "DynamicGraph":
        """Return a deep copy of the graph."""
        clone = DynamicGraph()
        clone._adj = {u: set(nbrs) for u, nbrs in self._adj.items()}
        clone._nbr_list = {u: list(lst) for u, lst in self._nbr_list.items()}
        clone._nbr_pos = {u: dict(pos) for u, pos in self._nbr_pos.items()}
        clone._num_edges = self._num_edges
        return clone

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, u: Vertex) -> bool:
        return u in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicGraph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicGraph(n={self.num_vertices}, m={self.num_edges})"
