"""Dynamic graph substrate: storage, similarities, generators and I/O."""

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.similarity import (
    cosine_similarity,
    jaccard_similarity,
    structural_similarity,
)

__all__ = [
    "DynamicGraph",
    "jaccard_similarity",
    "cosine_similarity",
    "structural_similarity",
]
