"""Edge-list I/O and SNAP-style preprocessing.

The paper preprocesses every SNAP dataset by (i) treating the graph as
undirected, (ii) removing self loops and duplicate edges, and (iii)
relabelling vertices to ``1..n`` (we use ``0..n-1``).  The helpers here
implement exactly that pipeline for plain-text edge lists so that a user
with access to the original SNAP files can run the harness on them, while
the test-suite and benchmarks exercise the same code path on synthetic
files.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.graph.dynamic_graph import DynamicGraph, Edge, canonical_edge


def parse_edge_list(lines: Iterable[str], comment_prefix: str = "#") -> List[Tuple[str, str]]:
    """Parse whitespace-separated ``u v`` pairs, skipping blank/comment lines.

    Returns raw string identifiers; use :func:`preprocess_edges` to apply the
    paper's preprocessing (undirect, dedup, relabel).
    """
    pairs: List[Tuple[str, str]] = []
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith(comment_prefix):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed edge-list line: {raw!r}")
        pairs.append((parts[0], parts[1]))
    return pairs


def preprocess_edges(
    pairs: Sequence[Tuple[str, str]],
) -> Tuple[List[Edge], Dict[str, int]]:
    """Apply the paper's preprocessing to raw edge pairs.

    Treats edges as undirected, removes self loops and duplicates, and
    relabels vertex identifiers to consecutive integers starting at 0 in
    order of first appearance.

    Returns
    -------
    (edges, mapping)
        ``edges`` is the list of canonical integer edges; ``mapping`` maps
        each original identifier to its integer label.
    """
    mapping: Dict[str, int] = {}
    seen = set()
    edges: List[Edge] = []
    for a, b in pairs:
        if a == b:
            continue
        for name in (a, b):
            if name not in mapping:
                mapping[name] = len(mapping)
        e = canonical_edge(mapping[a], mapping[b])
        if e in seen:
            continue
        seen.add(e)
        edges.append(e)
    return edges, mapping


def load_edge_list(path: str | Path) -> Tuple[List[Edge], Dict[str, int]]:
    """Load and preprocess a SNAP-style text edge list from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        pairs = parse_edge_list(handle)
    return preprocess_edges(pairs)


def save_edge_list(edges: Iterable[Edge], path: str | Path, header: str | None = None) -> None:
    """Write edges as ``u<TAB>v`` lines, optionally with a ``#`` header comment."""
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in edges:
            handle.write(f"{u}\t{v}\n")


def graph_from_edges(edges: Iterable[Edge]) -> DynamicGraph:
    """Build a :class:`DynamicGraph` from an iterable of preprocessed edges."""
    return DynamicGraph(edges)


def save_graphml(graph: DynamicGraph, clusters: Dict[int, int] | None, path: str | Path) -> None:
    """Export ``graph`` (optionally with a per-vertex ``cluster`` attribute) as GraphML.

    This is the substitution for the paper's Gephi visualisations
    (Figures 4-6): the produced file loads directly into Gephi or networkx
    so a user can render the coloured cluster layout themselves.
    """
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">',
        '  <key id="cluster" for="node" attr.name="cluster" attr.type="int"/>',
        '  <graph edgedefault="undirected">',
    ]
    for v in sorted(graph.vertices(), key=repr):
        cluster = -1 if clusters is None else clusters.get(v, -1)
        lines.append(f'    <node id="{v}"><data key="cluster">{cluster}</data></node>')
    for u, v in graph.edges():
        lines.append(f'    <edge source="{u}" target="{v}"/>')
    lines.append("  </graph>")
    lines.append("</graphml>")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
