"""Exact structural similarities between adjacent vertices.

The paper (Section 2.1 and Section 8) defines two structural similarities
on the closed neighbourhoods ``N[u]`` and ``N[v]`` of the endpoints of an
edge:

* **Jaccard similarity**  ``|N[u] ∩ N[v]| / |N[u] ∪ N[v]|``
* **Cosine similarity**   ``|N[u] ∩ N[v]| / sqrt(d[u] * d[v])``

For non-adjacent pairs both similarities are defined to be 0.  These exact
functions are used by the static SCAN baseline, the exact dynamic baselines
(pSCAN/hSCAN analogues) and by the evaluation module when comparing
approximate against exact clusterings.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import AbstractSet, Tuple

from repro.graph.dynamic_graph import DynamicGraph, Vertex


class SimilarityKind(str, Enum):
    """Which structural similarity an algorithm instance uses."""

    JACCARD = "jaccard"
    COSINE = "cosine"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def intersection_union_sizes(graph: DynamicGraph, u: Vertex, v: Vertex) -> Tuple[int, int]:
    """Return ``(a, b) = (|N[u] ∩ N[v]|, |N[u] ∪ N[v]|)`` for vertices of ``graph``.

    Works for adjacent and non-adjacent pairs; the caller decides whether a
    non-adjacent pair should be treated as similarity 0 (the paper's
    convention).
    """
    a = graph.common_closed_neighbours(u, v)
    b = len(graph.closed_neighbourhood(u)) + len(graph.closed_neighbourhood(v)) - a
    return a, b


def jaccard_similarity(graph: DynamicGraph, u: Vertex, v: Vertex) -> float:
    """Exact Jaccard structural similarity ``σ(u, v)``.

    Returns 0.0 when ``(u, v)`` is not an edge of ``graph`` (the paper's
    convention for non-adjacent pairs).
    """
    if not graph.has_edge(u, v):
        return 0.0
    a, b = intersection_union_sizes(graph, u, v)
    return a / b if b else 0.0


def cosine_similarity(graph: DynamicGraph, u: Vertex, v: Vertex) -> float:
    """Exact cosine structural similarity ``σ_c(u, v)``.

    Returns 0.0 when ``(u, v)`` is not an edge of ``graph``.

    Note on the denominator: the paper writes ``sqrt(d[u] · d[v])`` with the
    *open* degrees, which for low-degree vertices exceeds 1 and contradicts
    both ``ε ∈ (0, 1]`` and the original SCAN definition it cites (Xu et al.,
    2007, which normalises by the closed neighbourhood sizes).  We follow the
    SCAN definition — ``|N[u] ∩ N[v]| / sqrt(|N[u]| · |N[v]|)`` — so the
    similarity is always in ``[0, 1]``; the deviation is recorded in
    DESIGN.md and every other cosine formula in this library (estimator,
    affordability thresholds) consistently uses the closed sizes.
    """
    if not graph.has_edge(u, v):
        return 0.0
    a = graph.common_closed_neighbours(u, v)
    size_u = graph.degree(u) + 1
    size_v = graph.degree(v) + 1
    denom = math.sqrt(size_u * size_v)
    return a / denom if denom else 0.0


def structural_similarity(
    graph: DynamicGraph,
    u: Vertex,
    v: Vertex,
    kind: SimilarityKind = SimilarityKind.JACCARD,
) -> float:
    """Dispatch to the exact similarity of the requested ``kind``."""
    if kind is SimilarityKind.JACCARD:
        return jaccard_similarity(graph, u, v)
    if kind is SimilarityKind.COSINE:
        return cosine_similarity(graph, u, v)
    raise ValueError(f"unknown similarity kind: {kind!r}")


def pair_similarity(
    closed_u: AbstractSet[Vertex],
    closed_v: AbstractSet[Vertex],
    kind: SimilarityKind = SimilarityKind.JACCARD,
) -> float:
    """The same similarities, computed from two *closed* neighbourhoods.

    The set-based form of :func:`structural_similarity` for callers that
    hold ``N[u]`` / ``N[v]`` without a graph object — the sharded read
    path resolves boundary-edge similarities from the owner shards'
    exported neighbourhoods this way.  Kept in this module so the two
    forms cannot silently diverge (the cosine denominator follows the
    same closed-size convention documented on :func:`cosine_similarity`;
    the property suite pins agreement with the graph-based functions).
    The adjacency-of-the-pair convention is the caller's: this function
    does not check ``has_edge``.
    """
    inter = len(closed_u & closed_v)
    if kind is SimilarityKind.JACCARD:
        union = len(closed_u) + len(closed_v) - inter
        return inter / union if union else 0.0
    if kind is SimilarityKind.COSINE:
        denom = math.sqrt(len(closed_u) * len(closed_v))
        return inter / denom if denom else 0.0
    raise ValueError(f"unknown similarity kind: {kind!r}")
