"""Synthetic graph generators.

The paper evaluates on 15 SNAP datasets which are not redistributable with
this repository.  The generators below produce scaled-down synthetic graphs
with the structural properties the algorithms are sensitive to:

* a heavy-tailed (power-law-ish) degree distribution
  (:func:`powerlaw_cluster_graph`, :func:`preferential_attachment_graph`),
* planted community structure with dense intra-community and sparse
  inter-community connectivity (:func:`planted_partition_graph`), and
* a uniform-random control (:func:`erdos_renyi_graph`).

All generators take an explicit integer ``seed`` and return a list of
canonical edges, so the experiment harness is reproducible end to end.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.graph.dynamic_graph import Edge, canonical_edge


def _dedup(edges: Sequence[Tuple[int, int]]) -> List[Edge]:
    """Canonicalise, drop self loops and duplicates, keep insertion order."""
    seen = set()
    out: List[Edge] = []
    for u, v in edges:
        if u == v:
            continue
        e = canonical_edge(u, v)
        if e in seen:
            continue
        seen.add(e)
        out.append(e)
    return out


def erdos_renyi_graph(n: int, m: int, seed: int = 0) -> List[Edge]:
    """Return ``m`` distinct uniform-random edges over vertices ``0..n-1``.

    Uses rejection sampling; ``m`` must not exceed ``n * (n - 1) / 2``.
    """
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ValueError(f"requested {m} edges but only {max_edges} are possible")
    rng = random.Random(seed)
    seen = set()
    out: List[Edge] = []
    while len(out) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = canonical_edge(u, v)
        if e in seen:
            continue
        seen.add(e)
        out.append(e)
    return out


def preferential_attachment_graph(n: int, attachments: int, seed: int = 0) -> List[Edge]:
    """Barabási–Albert-style preferential attachment graph.

    Each new vertex attaches to ``attachments`` existing vertices chosen
    with probability proportional to their current degree, yielding the
    heavy-tailed degree distribution typical of the SNAP social graphs.
    """
    if attachments < 1:
        raise ValueError("attachments must be >= 1")
    if n <= attachments:
        raise ValueError("n must exceed the number of attachments")
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    # repeated-vertex list implements degree-proportional sampling
    repeated: List[int] = list(range(attachments))
    for new in range(attachments, n):
        targets = set()
        while len(targets) < attachments:
            targets.add(rng.choice(repeated) if repeated else rng.randrange(new))
        for t in targets:
            edges.append((new, t))
            repeated.append(new)
            repeated.append(t)
    return _dedup(edges)


def powerlaw_cluster_graph(
    n: int, attachments: int, triangle_prob: float = 0.5, seed: int = 0
) -> List[Edge]:
    """Holme–Kim powerlaw graph with tunable clustering.

    Like :func:`preferential_attachment_graph` but, after each preferential
    attachment, with probability ``triangle_prob`` the next attachment closes
    a triangle with a neighbour of the previous target.  High clustering is
    what makes structural similarities non-trivial, so this is the default
    generator for the synthetic dataset registry.
    """
    if not 0.0 <= triangle_prob <= 1.0:
        raise ValueError("triangle_prob must be in [0, 1]")
    if attachments < 1:
        raise ValueError("attachments must be >= 1")
    if n <= attachments:
        raise ValueError("n must exceed the number of attachments")
    rng = random.Random(seed)
    adjacency: List[set] = [set() for _ in range(n)]
    repeated: List[int] = list(range(attachments))
    edges: List[Tuple[int, int]] = []

    def connect(a: int, b: int) -> bool:
        if a == b or b in adjacency[a]:
            return False
        adjacency[a].add(b)
        adjacency[b].add(a)
        edges.append((a, b))
        repeated.append(a)
        repeated.append(b)
        return True

    for new in range(attachments, n):
        made = 0
        last_target = None
        guard = 0
        while made < attachments and guard < 50 * attachments:
            guard += 1
            if (
                last_target is not None
                and adjacency[last_target]
                and rng.random() < triangle_prob
            ):
                candidate = rng.choice(tuple(adjacency[last_target]))
            else:
                candidate = rng.choice(repeated)
            if connect(new, candidate):
                made += 1
                last_target = candidate
        # fall back to random attachment if the guard tripped
        while made < attachments:
            candidate = rng.randrange(new)
            if connect(new, candidate):
                made += 1
    return _dedup(edges)


def planted_partition_graph(
    communities: int,
    community_size: int,
    p_intra: float,
    p_inter: float,
    seed: int = 0,
) -> List[Edge]:
    """Stochastic block model with equal-size communities.

    Vertices ``0..communities*community_size - 1`` are split into consecutive
    blocks; each intra-block pair is an edge with probability ``p_intra`` and
    each inter-block pair with probability ``p_inter``.  With
    ``p_intra >> p_inter`` the exact SCAN clustering recovers the blocks,
    which makes this generator the workhorse for quality experiments
    (Tables 2 and 3) where ground-truth-like structure is needed.
    """
    if not 0.0 <= p_inter <= p_intra <= 1.0:
        raise ValueError("require 0 <= p_inter <= p_intra <= 1")
    rng = random.Random(seed)
    n = communities * community_size
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        cu = u // community_size
        for v in range(u + 1, n):
            cv = v // community_size
            p = p_intra if cu == cv else p_inter
            if rng.random() < p:
                edges.append((u, v))
    return _dedup(edges)


def community_membership(communities: int, community_size: int) -> List[int]:
    """Return the planted block id of each vertex of a planted partition graph."""
    return [u // community_size for u in range(communities * community_size)]


def hub_and_noise_graph(
    communities: int,
    community_size: int,
    hubs: int,
    noise: int,
    p_intra: float = 0.6,
    seed: int = 0,
) -> List[Edge]:
    """A planted-partition graph augmented with explicit hub and noise vertices.

    Hubs are extra vertices each connected to a couple of vertices in two
    distinct communities (so SCAN assigns them to multiple clusters); noise
    vertices receive a single random edge (so SCAN labels them outliers).
    This mirrors the roles Figure 1 of the paper illustrates and is used by
    the fraud-detection example.
    """
    rng = random.Random(seed)
    base = planted_partition_graph(communities, community_size, p_intra, 0.0, seed=seed)
    n = communities * community_size
    edges = list(base)
    next_id = n
    for _ in range(hubs):
        hub = next_id
        next_id += 1
        c1, c2 = rng.sample(range(communities), 2)
        for c in (c1, c2):
            members = rng.sample(
                range(c * community_size, (c + 1) * community_size),
                k=min(3, community_size),
            )
            for v in members:
                edges.append((hub, v))
    for _ in range(noise):
        outlier = next_id
        next_id += 1
        edges.append((outlier, rng.randrange(n)))
    return _dedup(edges)
