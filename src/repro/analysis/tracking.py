"""Tracking how clusters evolve while the graph is updated.

A dynamic clustering index is most useful when the *changes* in the
clustering can be observed over time: communities appearing and
dissolving, merging after a burst of new edges, or splitting after
deletions.  This module matches the clusters of two consecutive snapshots
by set overlap and classifies each cluster of the newer snapshot with a
:class:`ClusterEventKind`; :class:`ClusterTracker` strings the matching
over an arbitrary number of snapshots and assigns stable community
identifiers across time.

The matching is the standard "relative overlap" heuristic used in dynamic
community detection: cluster ``C_new`` matches cluster ``C_old`` when their
Jaccard overlap is at least ``threshold`` (default 0.3) and is the largest
overlap among all old clusters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.result import Clustering
from repro.evaluation.quality import set_jaccard
from repro.graph.dynamic_graph import Vertex


class ClusterEventKind(str, Enum):
    """Transition events of a cluster between two snapshots."""

    BORN = "born"  #: no old cluster overlaps the new cluster
    CONTINUED = "continued"  #: one dominant old cluster, similar size
    GROWN = "grown"  #: one dominant old cluster, new cluster noticeably larger
    SHRUNK = "shrunk"  #: one dominant old cluster, new cluster noticeably smaller
    MERGED = "merged"  #: two or more old clusters map into the new cluster
    SPLIT = "split"  #: the dominant old cluster maps into several new clusters
    DISSOLVED = "dissolved"  #: an old cluster with no matching new cluster

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ClusterEvent:
    """One transition event produced by :func:`match_clusterings`.

    ``new_index`` is ``None`` for :attr:`ClusterEventKind.DISSOLVED` events
    and ``old_indices`` is empty for :attr:`ClusterEventKind.BORN` events.
    """

    kind: ClusterEventKind
    new_index: Optional[int]
    old_indices: Tuple[int, ...]
    overlap: float

    def involves(self, old_index: int) -> bool:
        """True when the event consumed the given old cluster index."""
        return old_index in self.old_indices


def _best_matches(
    new_clusters: Sequence[Set[Vertex]],
    old_clusters: Sequence[Set[Vertex]],
    threshold: float,
) -> Dict[int, List[int]]:
    """For each new cluster, the old clusters overlapping it above threshold."""
    matches: Dict[int, List[int]] = {i: [] for i in range(len(new_clusters))}
    for i, new in enumerate(new_clusters):
        for j, old in enumerate(old_clusters):
            if set_jaccard(new, old) >= threshold:
                matches[i].append(j)
    return matches


def match_clusterings(
    old: Clustering,
    new: Clustering,
    threshold: float = 0.3,
    growth_factor: float = 1.25,
) -> List[ClusterEvent]:
    """Classify every new cluster (and every vanished old cluster) with an event.

    Parameters
    ----------
    old, new:
        The two consecutive clustering snapshots.
    threshold:
        Minimum Jaccard overlap for an old cluster to count as a parent of a
        new cluster.
    growth_factor:
        Size ratio above which a single-parent transition is reported as
        GROWN (or below whose inverse as SHRUNK) instead of CONTINUED.

    Example
    -------
    >>> from repro.core.result import Clustering
    >>> old = Clustering(clusters=[{1, 2, 3, 4}])
    >>> new = Clustering(clusters=[{1, 2}, {3, 4}])
    >>> kinds = sorted(e.kind.value for e in match_clusterings(old, new))
    >>> kinds
    ['split', 'split']
    """
    matches = _best_matches(new.clusters, old.clusters, threshold)

    # how many new clusters each old cluster feeds into (for SPLIT detection)
    fanout: Dict[int, int] = {}
    for parents in matches.values():
        for j in parents:
            fanout[j] = fanout.get(j, 0) + 1

    events: List[ClusterEvent] = []
    consumed_old: Set[int] = set()
    for i, new_cluster in enumerate(new.clusters):
        parents = matches[i]
        consumed_old.update(parents)
        if not parents:
            events.append(ClusterEvent(ClusterEventKind.BORN, i, (), 0.0))
            continue
        best_parent = max(parents, key=lambda j: set_jaccard(new_cluster, old.clusters[j]))
        overlap = set_jaccard(new_cluster, old.clusters[best_parent])
        if len(parents) >= 2:
            kind = ClusterEventKind.MERGED
        elif fanout.get(best_parent, 0) >= 2:
            kind = ClusterEventKind.SPLIT
        else:
            old_size = len(old.clusters[best_parent])
            new_size = len(new_cluster)
            if old_size and new_size >= growth_factor * old_size:
                kind = ClusterEventKind.GROWN
            elif old_size and new_size * growth_factor <= old_size:
                kind = ClusterEventKind.SHRUNK
            else:
                kind = ClusterEventKind.CONTINUED
        events.append(ClusterEvent(kind, i, tuple(sorted(parents)), overlap))

    for j in range(len(old.clusters)):
        if j not in consumed_old:
            events.append(ClusterEvent(ClusterEventKind.DISSOLVED, None, (j,), 0.0))
    return events


@dataclass
class _TrackedCommunity:
    community_id: int
    members: Set[Vertex]
    born_at: int
    last_seen: int
    history: List[ClusterEventKind] = field(default_factory=list)


class ClusterTracker:
    """Assign stable community identifiers to clusters across snapshots.

    Feed consecutive :class:`~repro.core.result.Clustering` snapshots with
    :meth:`observe`; each call returns the list of
    :class:`ClusterEvent` objects of that step and updates the identifier
    assignment (a CONTINUED/GROWN/SHRUNK cluster keeps its dominant
    parent's identifier; BORN, MERGED and SPLIT clusters receive fresh
    identifiers).

    Example
    -------
    >>> from repro.core.result import Clustering
    >>> tracker = ClusterTracker()
    >>> _ = tracker.observe(Clustering(clusters=[{1, 2, 3}]))
    >>> _ = tracker.observe(Clustering(clusters=[{1, 2, 3, 4}]))
    >>> tracker.active_communities()[0].members == {1, 2, 3, 4}
    True
    """

    def __init__(self, threshold: float = 0.3, growth_factor: float = 1.25) -> None:
        self.threshold = threshold
        self.growth_factor = growth_factor
        self._previous: Optional[Clustering] = None
        self._previous_ids: List[int] = []
        self._communities: Dict[int, _TrackedCommunity] = {}
        self._next_id = 0
        self._step = 0
        self.events: List[Tuple[int, ClusterEvent]] = []

    def _fresh_id(self) -> int:
        cid = self._next_id
        self._next_id += 1
        return cid

    def observe(self, clustering: Clustering) -> List[ClusterEvent]:
        """Record one snapshot; return the transition events from the previous one."""
        step = self._step
        self._step += 1
        if self._previous is None:
            ids: List[int] = []
            for cluster in clustering.clusters:
                cid = self._fresh_id()
                ids.append(cid)
                self._communities[cid] = _TrackedCommunity(
                    community_id=cid, members=set(cluster), born_at=step, last_seen=step
                )
            self._previous = clustering
            self._previous_ids = ids
            return []

        step_events = match_clusterings(
            self._previous, clustering, threshold=self.threshold, growth_factor=self.growth_factor
        )
        new_ids: List[int] = [-1] * len(clustering.clusters)
        for event in step_events:
            self.events.append((step, event))
            if event.kind is ClusterEventKind.DISSOLVED:
                old_cid = self._previous_ids[event.old_indices[0]]
                community = self._communities.get(old_cid)
                if community is not None:
                    community.history.append(ClusterEventKind.DISSOLVED)
                continue
            assert event.new_index is not None
            if event.kind in (
                ClusterEventKind.CONTINUED,
                ClusterEventKind.GROWN,
                ClusterEventKind.SHRUNK,
            ):
                cid = self._previous_ids[event.old_indices[0]]
            else:
                cid = self._fresh_id()
            new_ids[event.new_index] = cid
            members = set(clustering.clusters[event.new_index])
            community = self._communities.get(cid)
            if community is None:
                community = _TrackedCommunity(
                    community_id=cid, members=members, born_at=step, last_seen=step
                )
                self._communities[cid] = community
            community.members = members
            community.last_seen = step
            community.history.append(event.kind)

        self._previous = clustering
        self._previous_ids = new_ids
        return step_events

    # ------------------------------------------------------------------
    # read-only views
    # ------------------------------------------------------------------
    def community_id_of_cluster(self, cluster_index: int) -> int:
        """Stable identifier assigned to a cluster of the latest snapshot."""
        return self._previous_ids[cluster_index]

    def active_communities(self) -> List[_TrackedCommunity]:
        """Communities present in the latest observed snapshot."""
        latest = self._step - 1
        return [c for c in self._communities.values() if c.last_seen == latest]

    def all_communities(self) -> List[_TrackedCommunity]:
        """Every community ever tracked (including dissolved ones)."""
        return list(self._communities.values())

    def events_of_kind(self, kind: ClusterEventKind) -> List[Tuple[int, ClusterEvent]]:
        """All recorded ``(step, event)`` pairs of a given kind."""
        return [(step, event) for step, event in self.events if event.kind is kind]
