"""Cluster-level statistics of a structural clustering result.

These are the descriptive statistics a user of the library computes right
after clustering: per-cluster density and conductance, overall coverage
(which fraction of the graph the clusters explain), the size distribution,
and the Newman–Girvan modularity of the induced disjoint partition.  They
back both the visualisation substitution for Figures 4–6 (dense inside,
sparse between) and the example applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.core.labelling import EdgeLabel
from repro.core.result import Clustering
from repro.graph.dynamic_graph import DynamicGraph, Vertex, canonical_edge

Edge = tuple


@dataclass(frozen=True)
class ClusterStatistics:
    """Statistics of a single cluster within its host graph.

    Attributes
    ----------
    size:
        Number of vertices in the cluster.
    internal_edges:
        Number of graph edges with both endpoints inside the cluster.
    boundary_edges:
        Number of graph edges with exactly one endpoint inside the cluster.
    cores:
        Number of core vertices inside the cluster.
    """

    size: int
    internal_edges: int
    boundary_edges: int
    cores: int

    @property
    def density(self) -> float:
        """Internal edge density: internal edges over the possible pairs."""
        if self.size < 2:
            return 0.0
        possible = self.size * (self.size - 1) / 2
        return self.internal_edges / possible

    @property
    def conductance(self) -> float:
        """Boundary edges over total incident edge endpoints (lower is better)."""
        volume = 2 * self.internal_edges + self.boundary_edges
        if volume == 0:
            return 0.0
        return self.boundary_edges / volume

    @property
    def average_internal_degree(self) -> float:
        """Average number of intra-cluster neighbours per member."""
        if self.size == 0:
            return 0.0
        return 2.0 * self.internal_edges / self.size

    def as_row(self) -> Dict[str, float]:
        """Flat dictionary for report tables."""
        return {
            "size": self.size,
            "internal_edges": self.internal_edges,
            "boundary_edges": self.boundary_edges,
            "cores": self.cores,
            "density": self.density,
            "conductance": self.conductance,
            "avg_internal_degree": self.average_internal_degree,
        }


def cluster_statistics(
    cluster: Set[Vertex], graph: DynamicGraph, cores: Optional[Set[Vertex]] = None
) -> ClusterStatistics:
    """Compute :class:`ClusterStatistics` for one cluster.

    Example
    -------
    >>> from repro.graph.dynamic_graph import DynamicGraph
    >>> g = DynamicGraph()
    >>> for e in [(1, 2), (2, 3), (1, 3), (3, 4)]:
    ...     g.insert_edge(*e)
    >>> stats = cluster_statistics({1, 2, 3}, g)
    >>> stats.internal_edges, stats.boundary_edges
    (3, 1)
    """
    members = set(cluster)
    internal = 0
    boundary = 0
    for v in members:
        if not graph.has_vertex(v):
            continue
        for w in graph.neighbours(v):
            if w in members:
                internal += 1
            else:
                boundary += 1
    internal //= 2  # every internal edge was counted from both endpoints
    core_count = len(members & cores) if cores is not None else 0
    return ClusterStatistics(
        size=len(members), internal_edges=internal, boundary_edges=boundary, cores=core_count
    )


def clustering_statistics(
    clustering: Clustering, graph: DynamicGraph
) -> List[ClusterStatistics]:
    """Per-cluster statistics for every cluster, in cluster-index order."""
    return [
        cluster_statistics(cluster, graph, cores=clustering.cores)
        for cluster in clustering.clusters
    ]


def clustering_coverage(clustering: Clustering, graph: DynamicGraph) -> float:
    """Fraction of graph vertices assigned to at least one cluster."""
    n = graph.num_vertices
    if n == 0:
        return 0.0
    clustered: Set[Vertex] = set()
    for cluster in clustering.clusters:
        clustered.update(cluster)
    clustered = {v for v in clustered if graph.has_vertex(v)}
    return len(clustered) / n


def size_distribution(clustering: Clustering) -> Dict[int, int]:
    """Histogram mapping cluster size to the number of clusters of that size."""
    histogram: Dict[int, int] = {}
    for cluster in clustering.clusters:
        histogram[len(cluster)] = histogram.get(len(cluster), 0) + 1
    return dict(sorted(histogram.items()))


def modularity(
    assignment: Mapping[Vertex, int], graph: DynamicGraph
) -> float:
    """Newman–Girvan modularity of a disjoint vertex assignment.

    ``assignment`` maps vertices to community identifiers; vertices missing
    from the mapping are ignored (they contribute neither intra-community
    edges nor degree mass, matching how noise is dropped from the ARI
    computation in Section 9.2).

    Example
    -------
    >>> from repro.graph.dynamic_graph import DynamicGraph
    >>> g = DynamicGraph()
    >>> for e in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]:
    ...     g.insert_edge(*e)
    >>> round(modularity({0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}, g), 3)
    0.357
    """
    m = graph.num_edges
    if m == 0:
        return 0.0
    intra = 0
    for u, v in graph.edges():
        cu = assignment.get(u)
        cv = assignment.get(v)
        if cu is not None and cu == cv:
            intra += 1
    degree_sums: Dict[int, int] = {}
    for v, community in assignment.items():
        if graph.has_vertex(v):
            degree_sums[community] = degree_sums.get(community, 0) + graph.degree(v)
    expectation = sum(d * d for d in degree_sums.values()) / (4.0 * m * m)
    return intra / m - expectation


def labelling_similarity_histogram(
    labels: Mapping[Edge, EdgeLabel], bins: Sequence[str] = ("similar", "dissimilar")
) -> Dict[str, int]:
    """Count similar vs dissimilar edges in an edge labelling."""
    histogram = {name: 0 for name in bins}
    for label in labels.values():
        key = "similar" if label is EdgeLabel.SIMILAR else "dissimilar"
        histogram[key] = histogram.get(key, 0) + 1
    return histogram


def clusters_intersecting(
    clustering: Clustering, vertices: Set[Vertex]
) -> List[int]:
    """Indices of clusters with a non-empty intersection with ``vertices``.

    The offline analogue of a cluster-group-by query; used by tests to
    cross-check :meth:`repro.core.dynstrclu.DynStrClu.group_by`.
    """
    return [
        idx
        for idx, cluster in enumerate(clustering.clusters)
        if cluster & vertices
    ]


def boundary_edges_between(
    clustering: Clustering, graph: DynamicGraph
) -> Dict[tuple, int]:
    """Count graph edges between each pair of distinct clusters.

    Hubs belong to several clusters; an edge is attributed to a pair of
    clusters when its endpoints' cluster sets differ and intersect those
    clusters.  The result is keyed by ``(i, j)`` with ``i < j``.
    """
    membership = clustering.membership()
    counts: Dict[tuple, int] = {}
    for u, v in graph.edges():
        cu = set(membership.get(u, []))
        cv = set(membership.get(v, []))
        for i in cu:
            for j in cv:
                if i == j:
                    continue
                key = (min(i, j), max(i, j))
                counts[key] = counts.get(key, 0) + 1
    return counts
