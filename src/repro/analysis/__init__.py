"""Post-clustering analysis: vertex roles, cluster statistics, evolution tracking.

Structural clustering is rarely an end in itself — the applications cited in
the paper's introduction (protein-module discovery, community detection,
landmark/event detection, blockchain fraud detection) all consume the
*roles* of vertices (core / member / hub / outlier), summary statistics of
the clusters, or the way clusters evolve while the graph changes.  This
package provides those consumers:

* :mod:`repro.analysis.roles` — per-vertex role classification and role
  census of a :class:`~repro.core.result.Clustering`;
* :mod:`repro.analysis.statistics` — cluster-level statistics (density,
  conductance, coverage, modularity of the induced partition, size
  distribution);
* :mod:`repro.analysis.tracking` — matching clusters between consecutive
  snapshots of a dynamic graph and classifying the transition events
  (continue / grow / shrink / split / merge / born / dissolved).
"""

from repro.analysis.report import analysis_report, analysis_rows
from repro.analysis.roles import VertexRole, classify_roles, role_census, role_of
from repro.analysis.statistics import (
    ClusterStatistics,
    cluster_statistics,
    clustering_coverage,
    clustering_statistics,
    modularity,
    size_distribution,
)
from repro.analysis.tracking import (
    ClusterEvent,
    ClusterEventKind,
    ClusterTracker,
    match_clusterings,
)

__all__ = [
    "analysis_report",
    "analysis_rows",
    "VertexRole",
    "classify_roles",
    "role_census",
    "role_of",
    "ClusterStatistics",
    "cluster_statistics",
    "clustering_statistics",
    "clustering_coverage",
    "modularity",
    "size_distribution",
    "ClusterEvent",
    "ClusterEventKind",
    "ClusterTracker",
    "match_clusterings",
]
