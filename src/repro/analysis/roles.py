"""Vertex role classification for structural clustering results.

Structural clustering assigns each vertex one of four roles (paper
Section 1):

* **core** — a vertex with at least μ similar neighbours; the seed of a
  cluster;
* **member** — a non-core vertex assigned to exactly one cluster;
* **hub** — a non-core vertex assigned to two or more clusters, bridging
  them;
* **outlier** (noise) — a non-core vertex assigned to no cluster.

The :class:`~repro.core.result.Clustering` object already records cores,
hubs and noise; this module turns that into a single per-vertex mapping and
a census, which is the form the downstream applications consume (e.g. the
blockchain fraud example flags the outliers, the community-detection
example reports the hubs).
"""

from __future__ import annotations

from collections import Counter
from enum import Enum
from typing import Dict, Iterable, Mapping, Optional

from repro.core.result import Clustering
from repro.graph.dynamic_graph import Vertex


class VertexRole(str, Enum):
    """The four structural-clustering roles of a vertex."""

    CORE = "core"
    MEMBER = "member"
    HUB = "hub"
    OUTLIER = "outlier"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def classify_roles(
    clustering: Clustering, vertices: Optional[Iterable[Vertex]] = None
) -> Dict[Vertex, VertexRole]:
    """Map every vertex to its role.

    Parameters
    ----------
    clustering:
        The StrCluResult to classify.
    vertices:
        Optional universe of vertices.  When given, vertices absent from the
        clustering (isolated vertices, vertices that only appear in the
        graph) are classified as outliers; when omitted the universe is the
        set of vertices mentioned by the clustering itself.

    Example
    -------
    >>> from repro.core.result import Clustering
    >>> c = Clustering(clusters=[{1, 2, 3}, {3, 4, 5}], cores={1, 4},
    ...                hubs={3}, noise={9})
    >>> roles = classify_roles(c, vertices=[1, 2, 3, 4, 5, 9])
    >>> roles[1] is VertexRole.CORE and roles[3] is VertexRole.HUB
    True
    >>> roles[2] is VertexRole.MEMBER and roles[9] is VertexRole.OUTLIER
    True
    """
    membership = clustering.membership()
    if vertices is None:
        universe = set(membership)
        universe.update(clustering.cores)
        universe.update(clustering.hubs)
        universe.update(clustering.noise)
    else:
        universe = set(vertices)

    roles: Dict[Vertex, VertexRole] = {}
    for v in universe:
        roles[v] = _role(v, clustering, membership)
    return roles


def role_of(
    v: Vertex, clustering: Clustering, membership: Optional[Mapping[Vertex, list]] = None
) -> VertexRole:
    """Role of a single vertex (convenience wrapper around :func:`classify_roles`)."""
    if membership is None:
        membership = clustering.membership()
    return _role(v, clustering, membership)


def _role(v: Vertex, clustering: Clustering, membership: Mapping[Vertex, list]) -> VertexRole:
    if v in clustering.cores:
        return VertexRole.CORE
    assigned = membership.get(v, [])
    if len(assigned) >= 2:
        return VertexRole.HUB
    if len(assigned) == 1:
        return VertexRole.MEMBER
    return VertexRole.OUTLIER


def role_census(
    clustering: Clustering, vertices: Optional[Iterable[Vertex]] = None
) -> Dict[str, int]:
    """Count of each role over the (optionally supplied) vertex universe.

    Returns a plain ``dict`` keyed by the role values (``"core"``,
    ``"member"``, ``"hub"``, ``"outlier"``) so it can be dumped straight
    into reports and JSON.
    """
    counts: Counter = Counter(role.value for role in classify_roles(clustering, vertices).values())
    return {role.value: counts.get(role.value, 0) for role in VertexRole}
