"""Plain-text analysis report for a clustering snapshot.

Combines the role census, the headline clustering summary, the cluster-size
distribution and the per-cluster statistics of the top-k clusters into one
human-readable report — the piece an operator reads after pointing the
maintainer at a graph, and the format the CLI and the examples print.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.analysis.roles import role_census
from repro.analysis.statistics import (
    clustering_coverage,
    cluster_statistics,
    size_distribution,
)
from repro.core.result import Clustering
from repro.graph.dynamic_graph import DynamicGraph, Vertex


def analysis_rows(
    clustering: Clustering, graph: DynamicGraph, top_k: int = 10
) -> List[Dict[str, object]]:
    """Per-cluster rows (size, density, conductance, cores) for the top-k clusters.

    Rows are ordered by decreasing cluster size; the layout matches the
    other experiment tables so it can be fed to
    :func:`repro.experiments.reporting.format_table`.
    """
    rows: List[Dict[str, object]] = []
    for rank, cluster in enumerate(clustering.top_k(top_k), start=1):
        stats = cluster_statistics(cluster, graph, cores=clustering.cores)
        row: Dict[str, object] = {"rank": rank}
        row.update(stats.as_row())
        rows.append(row)
    return rows


def analysis_report(
    clustering: Clustering,
    graph: DynamicGraph,
    top_k: int = 10,
    vertices: Optional[Iterable[Vertex]] = None,
    title: str = "Structural clustering analysis",
) -> str:
    """Render a multi-section plain-text report of one clustering snapshot.

    Example
    -------
    >>> from repro import DynStrClu, StrCluParams
    >>> algo = DynStrClu(StrCluParams(epsilon=0.5, mu=2, rho=0.0))
    >>> for e in [(1, 2), (2, 3), (1, 3), (3, 4)]:
    ...     _ = algo.insert_edge(*e)
    >>> print(analysis_report(algo.clustering(), algo.graph).splitlines()[0])
    Structural clustering analysis
    """
    universe = list(vertices) if vertices is not None else list(graph.vertices())
    summary = clustering.summary()
    census = role_census(clustering, vertices=universe)
    coverage = clustering_coverage(clustering, graph)
    sizes = size_distribution(clustering)

    lines: List[str] = [title, "=" * len(title), ""]
    lines.append(
        f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"clusters: {summary['clusters']}, coverage: {coverage:.1%}"
    )
    lines.append(
        "roles: "
        + ", ".join(f"{name}={count}" for name, count in census.items())
    )
    if sizes:
        distribution = ", ".join(f"{size}×{count}" for size, count in sizes.items())
        lines.append(f"cluster sizes (size×count): {distribution}")
    lines.append("")

    rows = analysis_rows(clustering, graph, top_k=top_k)
    if rows:
        lines.append(f"top-{len(rows)} clusters:")
        header = f"{'rank':>4}  {'size':>5}  {'cores':>5}  {'density':>8}  {'conduct.':>8}"
        lines.append(header)
        lines.append("-" * len(header))
        for row in rows:
            lines.append(
                f"{row['rank']:>4}  {row['size']:>5}  {row['cores']:>5}  "
                f"{row['density']:>8.3f}  {row['conductance']:>8.3f}"
            )
    else:
        lines.append("no clusters (every vertex is noise at these parameters)")
    return "\n".join(lines)
