"""Addressable binary min-heap used for ``DtHeap(u)``.

Section 5.2 of the paper organises, for every vertex ``u``, one heap entry
per incident tracked edge, keyed by the *shifted checkpoint*
``c_hat_u(u, v)``.  Processing an update only touches the entries whose key
equals the shared counter ``s_u`` (the *checkpoint-ready* entries), so the
heap must support:

* ``push`` / ``remove`` of an arbitrary entry (edges appear and disappear),
* ``peek_min`` to find checkpoint-ready entries,
* ``increase_key`` when a checkpoint is pushed forward by one slack,

each in ``O(log d[u])`` time.  The implementation is a classic binary heap
that stores each entry's position so that arbitrary-entry operations are
possible without lazy deletion.
"""

from __future__ import annotations

from typing import Generic, Hashable, List, Optional, TypeVar

PayloadT = TypeVar("PayloadT", bound=Hashable)


class DtHeapEntry(Generic[PayloadT]):
    """One heap entry: a tracked edge incident on the heap's vertex.

    Attributes
    ----------
    payload:
        Caller-supplied identity (the canonical edge).
    key:
        The shifted checkpoint ``c_hat``; the entry is *checkpoint-ready*
        when ``key`` equals the vertex's shared counter.
    round_start:
        The value of the shared counter when the current DT round started
        (``s_bar_u(v)`` in the paper); the participant's exact in-round count
        is ``s_u - round_start``.
    """

    __slots__ = ("payload", "key", "round_start", "_pos")

    def __init__(self, payload: PayloadT, key: int, round_start: int) -> None:
        self.payload = payload
        self.key = key
        self.round_start = round_start
        self._pos: int = -1

    @property
    def in_heap(self) -> bool:
        """True while the entry is stored in some :class:`DtHeap`."""
        return self._pos >= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DtHeapEntry({self.payload!r}, key={self.key}, round_start={self.round_start})"


class DtHeap(Generic[PayloadT]):
    """Addressable binary min-heap of :class:`DtHeapEntry` objects keyed by ``key``."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: List[DtHeapEntry[PayloadT]] = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def entries(self) -> List[DtHeapEntry[PayloadT]]:
        """Return a snapshot list of the entries (arbitrary order)."""
        return list(self._items)

    # ------------------------------------------------------------------
    # primitive sift operations
    # ------------------------------------------------------------------
    def _swap(self, i: int, j: int) -> None:
        items = self._items
        items[i], items[j] = items[j], items[i]
        items[i]._pos = i
        items[j]._pos = j

    def _sift_up(self, i: int) -> None:
        items = self._items
        while i > 0:
            parent = (i - 1) // 2
            if items[i].key < items[parent].key:
                self._swap(i, parent)
                i = parent
            else:
                break

    def _sift_down(self, i: int) -> None:
        items = self._items
        n = len(items)
        while True:
            left = 2 * i + 1
            right = left + 1
            smallest = i
            if left < n and items[left].key < items[smallest].key:
                smallest = left
            if right < n and items[right].key < items[smallest].key:
                smallest = right
            if smallest == i:
                break
            self._swap(i, smallest)
            i = smallest

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def push(self, entry: DtHeapEntry[PayloadT]) -> None:
        """Insert ``entry``; it must not already live in a heap."""
        if entry.in_heap:
            raise ValueError("entry is already stored in a heap")
        entry._pos = len(self._items)
        self._items.append(entry)
        self._sift_up(entry._pos)

    def peek_min(self) -> Optional[DtHeapEntry[PayloadT]]:
        """Return the entry with the smallest key, or ``None`` when empty."""
        return self._items[0] if self._items else None

    def pop_min(self) -> DtHeapEntry[PayloadT]:
        """Remove and return the entry with the smallest key."""
        if not self._items:
            raise IndexError("pop from an empty DtHeap")
        top = self._items[0]
        self.remove(top)
        return top

    def remove(self, entry: DtHeapEntry[PayloadT]) -> None:
        """Remove an arbitrary ``entry`` currently stored in this heap."""
        pos = entry._pos
        if pos < 0 or pos >= len(self._items) or self._items[pos] is not entry:
            raise ValueError("entry is not stored in this heap")
        last = self._items.pop()
        entry._pos = -1
        if last is entry:
            return
        last._pos = pos
        self._items[pos] = last
        self._sift_down(pos)
        self._sift_up(pos)

    def update_key(self, entry: DtHeapEntry[PayloadT], new_key: int) -> None:
        """Change ``entry.key`` to ``new_key`` and restore the heap order."""
        pos = entry._pos
        if pos < 0 or pos >= len(self._items) or self._items[pos] is not entry:
            raise ValueError("entry is not stored in this heap")
        old_key = entry.key
        entry.key = new_key
        if new_key < old_key:
            self._sift_up(pos)
        elif new_key > old_key:
            self._sift_down(pos)

    def check_invariant(self) -> bool:
        """Return True when the heap-order and position invariants hold (testing aid)."""
        items = self._items
        for i, entry in enumerate(items):
            if entry._pos != i:
                return False
            left, right = 2 * i + 1, 2 * i + 2
            if left < len(items) and items[left].key < entry.key:
                return False
            if right < len(items) and items[right].key < entry.key:
                return False
        return True
