"""Per-vertex organisation of DT instances with shared counters and heaps.

This module implements Section 5.2 of the paper.  Every vertex ``u`` keeps

* a single **shared counter** ``s_u`` counting the affecting updates incident
  on ``u`` (instead of one counter per incident edge), and
* a **DtHeap(u)** holding one entry per tracked incident edge, keyed by the
  *shifted checkpoint*: the value of ``s_u`` at which that edge's DT
  participant must next signal its coordinator.

Registering an update at ``u`` increments ``s_u`` once and then only touches
the *checkpoint-ready* heap entries (key equal to ``s_u``), so the work per
update is proportional to the number of DT signals actually due — the whole
point of the paper's poly-logarithmic amortized bound.

Two trackers are provided:

* :class:`UpdateTracker` — the heap-organised tracker used by DynELM.
* :class:`NaiveTracker` — the straw-man that increments every incident DT
  instance individually (``Θ(d[u])`` per update).  It is used as the
  reference in property-based tests (both must mature every edge at exactly
  the same affecting update) and in the DtHeap ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.dt.heap import DtHeap, DtHeapEntry
from repro.instrumentation import NULL_COUNTER, OpCounter

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]

#: below (or at) this remaining threshold the DT round runs in straightforward
#: mode (slack 1); equals ``4 * h`` with ``h = 2`` participants.
STRAIGHTFORWARD_LIMIT = 8


def _edge_key(u: Vertex, v: Vertex) -> Edge:
    """Canonical (ordered) identity of the undirected edge ``(u, v)``."""
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class _EdgeDTState:
    """Coordinator state of the DT instance tracking one edge."""

    __slots__ = ("edge", "initial_tau", "remaining", "slack", "signals_in_round", "entries")

    def __init__(self, edge: Edge, tau: int) -> None:
        self.edge = edge
        self.initial_tau = tau
        self.remaining = tau
        self.slack = 1
        self.signals_in_round = 0
        #: maps each endpoint to its DtHeapEntry living in that endpoint's heap
        self.entries: Dict[Vertex, DtHeapEntry[Edge]] = {}

    @property
    def straightforward(self) -> bool:
        return self.remaining <= STRAIGHTFORWARD_LIMIT


class UpdateTracker:
    """Heap-organised tracker of affecting updates for every tracked edge.

    The tracker is agnostic of what the thresholds mean: DynELM computes
    ``tau(u, v)`` from the update-affordability lemmas and simply asks the
    tracker to report the edge once ``tau`` affecting updates have been
    absorbed.

    Example
    -------
    >>> t = UpdateTracker()
    >>> t.track(1, 2, tau=3)
    >>> t.register_update(1), t.register_update(2), t.register_update(1)
    ([], [], [(1, 2)])
    """

    def __init__(self, counter: OpCounter | None = None) -> None:
        self._shared: Dict[Vertex, int] = {}
        self._heaps: Dict[Vertex, DtHeap[Edge]] = {}
        self._states: Dict[Edge, _EdgeDTState] = {}
        self._counter = counter if counter is not None else NULL_COUNTER

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------
    _key = staticmethod(_edge_key)

    def shared_counter(self, u: Vertex) -> int:
        """Return the shared counter ``s_u`` (0 for unknown vertices)."""
        return self._shared.get(u, 0)

    def is_tracked(self, u: Vertex, v: Vertex) -> bool:
        """Return True when a DT instance currently exists for edge ``(u, v)``."""
        return self._key(u, v) in self._states

    def tracked_threshold(self, u: Vertex, v: Vertex) -> Optional[int]:
        """Return the initial threshold of the DT instance for ``(u, v)``, if any."""
        state = self._states.get(self._key(u, v))
        return None if state is None else state.initial_tau

    def num_tracked(self) -> int:
        """Number of edges currently tracked."""
        return len(self._states)

    def heap_size(self, u: Vertex) -> int:
        """Number of DtHeap entries at vertex ``u`` (testing/accounting aid)."""
        heap = self._heaps.get(u)
        return 0 if heap is None else len(heap)

    def memory_elements(self) -> Dict[str, int]:
        """Element counts used by the Table 1 memory model."""
        return {
            "dt_coordinator": len(self._states),
            "dt_heap_entry": sum(len(h) for h in self._heaps.values()),
            "vertex_record": len(self._shared),
        }

    # ------------------------------------------------------------------
    # DT lifecycle
    # ------------------------------------------------------------------
    def track(self, u: Vertex, v: Vertex, tau: int) -> None:
        """Create a DT instance for edge ``(u, v)`` with threshold ``tau``.

        Raises ``ValueError`` if ``tau < 1`` or the edge is already tracked.
        """
        if tau < 1:
            raise ValueError(f"tau must be a positive integer, got {tau}")
        edge = self._key(u, v)
        if edge in self._states:
            raise ValueError(f"edge {edge!r} is already tracked")
        state = _EdgeDTState(edge, tau)
        self._states[edge] = state
        for endpoint in (u, v):
            self._shared.setdefault(endpoint, 0)
            heap = self._heaps.setdefault(endpoint, DtHeap())
            entry = DtHeapEntry(edge, key=0, round_start=0)
            state.entries[endpoint] = entry
            heap.push(entry)
            self._counter.add("heap_op")
        self._begin_round(state)

    def untrack(self, u: Vertex, v: Vertex) -> None:
        """Remove the DT instance for ``(u, v)`` (no-op if not tracked)."""
        edge = self._key(u, v)
        state = self._states.pop(edge, None)
        if state is None:
            return
        self._drop_entries(state)

    def _drop_entries(self, state: _EdgeDTState) -> None:
        for endpoint, entry in state.entries.items():
            if entry.in_heap:
                self._heaps[endpoint].remove(entry)
                self._counter.add("heap_op")
        state.entries.clear()

    def _begin_round(self, state: _EdgeDTState) -> None:
        """Start a fresh round: pick the slack and reset both checkpoints."""
        state.signals_in_round = 0
        if state.straightforward:
            state.slack = 1
        else:
            state.slack = state.remaining // 4  # floor(tau / (2 h)) with h = 2
        for endpoint, entry in state.entries.items():
            s = self._shared[endpoint]
            entry.round_start = s
            self._heaps[endpoint].update_key(entry, s + state.slack)
            self._counter.add("heap_op")

    # ------------------------------------------------------------------
    # update processing
    # ------------------------------------------------------------------
    def increment(self, u: Vertex) -> None:
        """Increment the shared counter ``s_u`` without processing signals.

        DynELM performs the increments of Step 1 *before* the edge-specific
        handling of Step 2 (so a DT instance created or removed by Step 2 is
        not confused by this update), then drains the checkpoint-ready
        entries with :meth:`process_ready` in Steps 3 and 4.
        """
        self._shared[u] = self._shared.get(u, 0) + 1

    def process_ready(self, u: Vertex) -> List[Edge]:
        """Process every checkpoint-ready entry of ``DtHeap(u)``.

        Returns the (possibly empty) list of edges whose DT instance
        matured; those instances are removed and must be re-created (with a
        new threshold) by the caller after re-labelling the edge.
        """
        s_u = self._shared.get(u, 0)
        heap = self._heaps.get(u)
        matured: List[Edge] = []
        if heap is None:
            return matured
        while True:
            top = heap.peek_min()
            if top is None or top.key > s_u:
                break
            self._counter.add("heap_op")
            self._process_signal(u, top, matured)
        return matured

    def register_update(self, u: Vertex) -> List[Edge]:
        """Record one affecting update incident on ``u`` (increment + drain).

        Equivalent to :meth:`increment` followed by :meth:`process_ready`;
        kept as the convenience entry point used by tests and by callers that
        do not need the paper's exact step ordering.
        """
        self.increment(u)
        return self.process_ready(u)

    def _process_signal(self, u: Vertex, entry: DtHeapEntry[Edge], matured: List[Edge]) -> None:
        """Handle one checkpoint-ready signal from participant ``u``."""
        edge = entry.payload
        state = self._states[edge]
        self._counter.add("dt_signal")
        if state.straightforward:
            state.remaining -= 1
            if state.remaining == 0:
                matured.append(edge)
                del self._states[edge]
                self._drop_entries(state)
                return
            self._heaps[u].update_key(entry, self._shared[u] + 1)
            self._counter.add("heap_op")
            return
        # slack mode
        state.signals_in_round += 1
        if state.signals_in_round < 2:
            # the round continues: only this participant's checkpoint advances
            self._heaps[u].update_key(entry, entry.key + state.slack)
            self._counter.add("heap_op")
            return
        # second signal: the coordinator collects exact in-round counts
        consumed = 0
        for endpoint, ep_entry in state.entries.items():
            consumed += self._shared[endpoint] - ep_entry.round_start
        state.remaining -= consumed
        if state.remaining <= 0:
            # defensive: cannot happen with the h = 2 slack rule, but treat as maturity
            matured.append(edge)
            del self._states[edge]
            self._drop_entries(state)
            return
        self._begin_round(state)


class NaiveTracker:
    """Straw-man tracker: one private counter per tracked edge.

    ``register_update(u)`` walks over *every* tracked edge incident on ``u``
    and increments its counter, which is the ``Θ(d[u])`` behaviour the
    heap-organised tracker avoids.  Maturity semantics are identical, which
    the property-based tests rely on.
    """

    def __init__(self, counter: OpCounter | None = None) -> None:
        self._thresholds: Dict[Edge, int] = {}
        self._counts: Dict[Edge, int] = {}
        self._incident: Dict[Vertex, Set[Edge]] = {}
        self._counter = counter if counter is not None else NULL_COUNTER

    _key = staticmethod(_edge_key)

    def is_tracked(self, u: Vertex, v: Vertex) -> bool:
        return self._key(u, v) in self._thresholds

    def num_tracked(self) -> int:
        return len(self._thresholds)

    def track(self, u: Vertex, v: Vertex, tau: int) -> None:
        if tau < 1:
            raise ValueError(f"tau must be a positive integer, got {tau}")
        edge = self._key(u, v)
        if edge in self._thresholds:
            raise ValueError(f"edge {edge!r} is already tracked")
        self._thresholds[edge] = tau
        self._counts[edge] = 0
        for endpoint in edge:
            self._incident.setdefault(endpoint, set()).add(edge)

    def untrack(self, u: Vertex, v: Vertex) -> None:
        edge = self._key(u, v)
        if edge not in self._thresholds:
            return
        del self._thresholds[edge]
        del self._counts[edge]
        for endpoint in edge:
            self._incident[endpoint].discard(edge)

    def register_update(self, u: Vertex) -> List[Edge]:
        matured: List[Edge] = []
        for edge in list(self._incident.get(u, ())):
            self._counter.add("counter_increment")
            self._counts[edge] += 1
            if self._counts[edge] >= self._thresholds[edge]:
                matured.append(edge)
        for edge in matured:
            self.untrack(*edge)
        return matured
