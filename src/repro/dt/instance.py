"""A standalone two-participant Distributed Tracking instance.

This is the textbook protocol of Section 2.4 simulated in memory for a
single edge: the edge is the coordinator, its two endpoints are the
participants.  Given a threshold ``tau`` the coordinator must report
*maturity* exactly when the total number of counter increments across the
two participants reaches ``tau``, using ``O(log tau)`` rounds of ``O(1)``
messages each.

The production tracker (:mod:`repro.dt.tracker`) re-implements the same
round logic on top of shared per-vertex counters and heaps; this standalone
class exists (a) as the reference implementation the property-based tests
compare against, and (b) to expose the protocol's message complexity for the
DT unit tests.
"""

from __future__ import annotations

from typing import Hashable


class DTInstance:
    """Distributed tracking for one edge with ``h = 2`` participants.

    Parameters
    ----------
    tau:
        The maturity threshold (total number of increments to detect).
        Must be a positive integer.

    Notes
    -----
    * With ``h = 2`` the protocol switches to the *straightforward* mode
      (every increment is a message) as soon as the remaining threshold is
      at most ``4 * h = 8``; otherwise each round uses slack
      ``lambda = floor(tau / (2 * h))``.
    * :attr:`messages` counts coordinator-received/sent messages so tests can
      assert the ``O(h log(tau / h))`` bound.
    """

    NUM_PARTICIPANTS = 2
    STRAIGHTFORWARD_LIMIT = 4 * NUM_PARTICIPANTS

    __slots__ = (
        "initial_tau",
        "remaining",
        "slack",
        "signals_in_round",
        "round_counts",
        "checkpoints",
        "mature",
        "messages",
        "rounds",
        "total_increments",
    )

    def __init__(self, tau: int) -> None:
        if tau < 1:
            raise ValueError(f"tau must be a positive integer, got {tau}")
        self.initial_tau = tau
        self.mature = False
        self.messages = 0
        self.rounds = 0
        self.total_increments = 0
        self.remaining = tau
        self.round_counts = [0, 0]
        self.checkpoints = [0, 0]
        self.slack = 0
        self._start_round()

    # ------------------------------------------------------------------
    def _start_round(self) -> None:
        """Begin a new round with the current ``remaining`` threshold."""
        self.rounds += 1
        self.signals_in_round = 0
        self.round_counts = [0, 0]
        if self.remaining <= self.STRAIGHTFORWARD_LIMIT:
            self.slack = 1
        else:
            self.slack = self.remaining // (2 * self.NUM_PARTICIPANTS)
        self.checkpoints = [self.slack, self.slack]
        # coordinator sends one slack message to each participant
        self.messages += self.NUM_PARTICIPANTS

    @property
    def straightforward(self) -> bool:
        """True when the current round runs in straightforward (slack 1) mode."""
        return self.remaining <= self.STRAIGHTFORWARD_LIMIT

    # ------------------------------------------------------------------
    def increment(self, participant: int) -> bool:
        """Increment the counter of ``participant`` (0 or 1).

        Returns ``True`` exactly once: on the increment with which the total
        reaches ``tau``.  Further increments raise ``RuntimeError`` because a
        matured instance must be restarted by its owner.
        """
        if participant not in (0, 1):
            raise ValueError("participant must be 0 or 1")
        if self.mature:
            raise RuntimeError("DT instance already matured; restart it with a new tau")
        self.total_increments += 1
        self.round_counts[participant] += 1

        if self.straightforward:
            # every increment is reported to the coordinator
            self.messages += 1
            self.remaining -= 1
            if self.remaining == 0:
                self.mature = True
            return self.mature

        if self.round_counts[participant] == self.checkpoints[participant]:
            # participant reaches its checkpoint: signal the coordinator
            self.messages += 1
            self.signals_in_round += 1
            self.checkpoints[participant] += self.slack
            if self.signals_in_round == self.NUM_PARTICIPANTS:
                # coordinator collects exact counters and starts a new round
                self.messages += self.NUM_PARTICIPANTS
                consumed = sum(self.round_counts)
                self.remaining -= consumed
                if self.remaining <= 0:  # defensive; cannot happen with h=2 slack rule
                    self.mature = True
                    return True
                self._start_round()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DTInstance(tau={self.initial_tau}, remaining={self.remaining}, "
            f"mature={self.mature}, rounds={self.rounds}, messages={self.messages})"
        )


def naive_message_cost(tau: int) -> int:
    """Message cost of the trivial protocol (one message per increment)."""
    return tau


EdgeKey = Hashable
