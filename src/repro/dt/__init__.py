"""Distributed Tracking (DT) substrate.

Implements the classic two-party distributed tracking protocol (paper
Section 2.4), the per-vertex ``DtHeap`` organisation with shared counters
(Section 5.2), and the tracker façade used by DynELM to detect when an edge
has absorbed enough affecting updates that its label must be re-checked.
"""

from repro.dt.heap import DtHeap, DtHeapEntry
from repro.dt.instance import DTInstance
from repro.dt.tracker import NaiveTracker, UpdateTracker

__all__ = ["DTInstance", "DtHeap", "DtHeapEntry", "UpdateTracker", "NaiveTracker"]
