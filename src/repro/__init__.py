"""repro — Dynamic Structural Clustering on Graphs (SIGMOD 2021).

A from-scratch Python implementation of the DynELM and DynStrClu algorithms
of Ruan, Gan, Wu and Wirth, together with every substrate they rely on
(dynamic graph storage, distributed tracking, fully dynamic connectivity),
the baselines they are compared against, the update workload simulators, the
quality metrics, and an experiment harness reproducing every table and
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import DynStrClu, StrCluParams
>>> params = StrCluParams(epsilon=0.5, mu=2, rho=0.01, seed=1)
>>> algo = DynStrClu(params)
>>> for edge in [(0, 1), (1, 2), (0, 2), (2, 3)]:
...     _ = algo.insert_edge(*edge)
>>> algo.clustering().num_clusters
1
"""

from repro.analysis import ClusterTracker, VertexRole, classify_roles, role_census
from repro.baselines import ExactDynamicSCAN, IndexedDynamicSCAN, static_scan
from repro.core import Clustering, DynELM, DynStrClu, EdgeLabel, StrCluParams, compute_clusters
from repro.core.api import Clusterer, available_backends, make_clusterer, register_backend
from repro.core.result import ViewDelta
from repro.core.dynelm import Update, UpdateKind
from repro.graph import DynamicGraph, cosine_similarity, jaccard_similarity
from repro.graph.similarity import SimilarityKind
from repro.persistence import (
    load_snapshot,
    restore_dynstrclu,
    save_snapshot,
    take_snapshot,
)
from repro.streaming import SlidingWindowClustering, StreamProcessor

__version__ = "1.10.0"

from repro.service import (  # noqa: E402  (needs __version__ for /healthz)
    BackgroundServer,
    ClusteringEngine,
    ClusteringServiceServer,
    ClusteringView,
    EngineConfig,
    EngineManager,
    FleetWatchdog,
    LoadGenConfig,
    LoadGenerator,
    ServiceClient,
    ServiceMetrics,
    TenantConfig,
    WatchdogConfig,
)

__all__ = [
    "DynamicGraph",
    "DynELM",
    "DynStrClu",
    "StrCluParams",
    "EdgeLabel",
    "Clustering",
    "compute_clusters",
    "Update",
    "UpdateKind",
    "SimilarityKind",
    "jaccard_similarity",
    "cosine_similarity",
    "static_scan",
    "ExactDynamicSCAN",
    "IndexedDynamicSCAN",
    "VertexRole",
    "classify_roles",
    "role_census",
    "ClusterTracker",
    "take_snapshot",
    "save_snapshot",
    "load_snapshot",
    "restore_dynstrclu",
    "SlidingWindowClustering",
    "StreamProcessor",
    "Clusterer",
    "available_backends",
    "make_clusterer",
    "register_backend",
    "ViewDelta",
    "ClusteringEngine",
    "EngineConfig",
    "EngineManager",
    "FleetWatchdog",
    "WatchdogConfig",
    "TenantConfig",
    "ClusteringView",
    "ClusteringServiceServer",
    "BackgroundServer",
    "ServiceClient",
    "ServiceMetrics",
    "LoadGenerator",
    "LoadGenConfig",
    "__version__",
]
