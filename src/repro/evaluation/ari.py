"""Adjusted Rand Index between two partitions.

The paper quantifies the overall quality of an approximate clustering by the
ARI (Hubert & Arabie, 1985) between the disjoint cluster assignments derived
from the approximate and the exact StrCluResult: non-core vertices are
assigned only to the cluster of their smallest similar core neighbour and
noise vertices are ignored (Section 9.2).  The assignment derivation lives
in :meth:`repro.core.result.Clustering.partition_assignment`; this module
implements the index itself from scratch (no sklearn dependency).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Mapping

Vertex = Hashable


def _comb2(x: int) -> float:
    """Number of unordered pairs among ``x`` items."""
    return x * (x - 1) / 2.0


def adjusted_rand_index(
    assignment_a: Mapping[Vertex, Hashable], assignment_b: Mapping[Vertex, Hashable]
) -> float:
    """ARI between two labelled partitions, computed over their common vertices.

    Returns 1.0 when the partitions agree perfectly (including the degenerate
    case of an empty common support, where there is nothing to disagree on).
    """
    common = [v for v in assignment_a if v in assignment_b]
    if not common:
        return 1.0
    contingency: Counter = Counter()
    rows: Counter = Counter()
    cols: Counter = Counter()
    for v in common:
        a = assignment_a[v]
        b = assignment_b[v]
        contingency[(a, b)] += 1
        rows[a] += 1
        cols[b] += 1

    n = len(common)
    sum_cells = sum(_comb2(c) for c in contingency.values())
    sum_rows = sum(_comb2(c) for c in rows.values())
    sum_cols = sum(_comb2(c) for c in cols.values())
    total_pairs = _comb2(n)
    if total_pairs == 0:
        return 1.0
    expected = sum_rows * sum_cols / total_pairs
    maximum = 0.5 * (sum_rows + sum_cols)
    if maximum == expected:
        return 1.0
    return (sum_cells - expected) / (maximum - expected)
