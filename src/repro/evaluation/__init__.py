"""Quality evaluation of approximate clusterings (paper Section 9.2)."""

from repro.evaluation.ari import adjusted_rand_index
from repro.evaluation.nmi import normalised_mutual_information
from repro.evaluation.quality import (
    QualityReport,
    individual_cluster_quality,
    mislabelled_rate,
    quality_report,
)
from repro.evaluation.visualisation import cluster_density_report, top_k_cluster_summary

__all__ = [
    "adjusted_rand_index",
    "normalised_mutual_information",
    "mislabelled_rate",
    "individual_cluster_quality",
    "quality_report",
    "QualityReport",
    "top_k_cluster_summary",
    "cluster_density_report",
]
