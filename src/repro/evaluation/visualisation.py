"""Cluster-layout statistics — the substitution for the Gephi figures (4–6).

The paper's visualisations support one claim: with the chosen ε the top-20
clusters have intra-cluster edge density far above the inter-cluster
density, i.e. the clustering is "natural to human sensibility".  This module
computes exactly those statistics (per-cluster size, intra-density,
inter-density, and how the cluster count/size distribution reacts to ε), and
:func:`repro.graph.io.save_graphml` exports a coloured graph a user can load
into Gephi to reproduce the pictures themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.result import Clustering
from repro.graph.dynamic_graph import DynamicGraph, Vertex


@dataclass
class ClusterSummary:
    """Size and density statistics of one cluster."""

    index: int
    size: int
    intra_edges: int
    boundary_edges: int

    @property
    def intra_density(self) -> float:
        """Fraction of the cluster's possible internal edges that are present."""
        possible = self.size * (self.size - 1) / 2
        return self.intra_edges / possible if possible else 0.0

    @property
    def conductance_like(self) -> float:
        """Boundary edges per member — low values mean well-separated clusters."""
        return self.boundary_edges / self.size if self.size else 0.0


def top_k_cluster_summary(
    graph: DynamicGraph, clustering: Clustering, k: int = 20
) -> List[ClusterSummary]:
    """Summaries of the top-k largest clusters (by member count)."""
    summaries: List[ClusterSummary] = []
    for index, cluster in enumerate(clustering.top_k(k)):
        members = set(cluster)
        intra = 0
        boundary = 0
        for v in members:
            for w in graph.neighbours(v):
                if w in members:
                    intra += 1
                else:
                    boundary += 1
        summaries.append(
            ClusterSummary(
                index=index,
                size=len(members),
                intra_edges=intra // 2,
                boundary_edges=boundary,
            )
        )
    return summaries


def cluster_density_report(
    graph: DynamicGraph, clustering: Clustering, k: int = 20
) -> Dict[str, float]:
    """Aggregate statistics supporting the figures' density claim."""
    summaries = top_k_cluster_summary(graph, clustering, k)
    if not summaries:
        return {
            "clusters": 0,
            "avg_size": 0.0,
            "avg_intra_density": 0.0,
            "avg_boundary_per_member": 0.0,
        }
    return {
        "clusters": len(summaries),
        "avg_size": sum(s.size for s in summaries) / len(summaries),
        "avg_intra_density": sum(s.intra_density for s in summaries) / len(summaries),
        "avg_boundary_per_member": sum(s.conductance_like for s in summaries) / len(summaries),
    }


def hub_assignment_colouring(
    clustering: Clustering, graph: DynamicGraph
) -> Dict[Vertex, int]:
    """Single-cluster colouring used when exporting the figures' layouts.

    Following the paper, a hub is assigned to the cluster that contains its
    smallest similar core neighbour; here we approximate that rule with the
    smallest-index cluster containing the vertex, which is equivalent for the
    purpose of producing a deterministic colouring.  Noise vertices are
    omitted (the paper omits them from the figures as well).
    """
    colouring: Dict[Vertex, int] = {}
    for index, cluster in enumerate(
        sorted(clustering.clusters, key=lambda c: (-len(c), tuple(sorted(map(repr, c)))))
    ):
        for v in cluster:
            colouring.setdefault(v, index)
    return colouring


def epsilon_sweep_summaries(
    graph: DynamicGraph,
    clusterings: Dict[float, Clustering],
    k: int = 20,
) -> List[Dict[str, float]]:
    """Rows of the Figure 5 reproduction: how the top-k clusters react to ε."""
    rows: List[Dict[str, float]] = []
    for epsilon in sorted(clusterings):
        clustering = clusterings[epsilon]
        report = cluster_density_report(graph, clustering, k)
        rows.append(
            {
                "epsilon": epsilon,
                "num_clusters": clustering.num_clusters,
                "num_cores": len(clustering.cores),
                "num_noise": len(clustering.noise),
                "top_k_avg_size": report["avg_size"],
                "top_k_intra_density": report["avg_intra_density"],
            }
        )
    return rows
