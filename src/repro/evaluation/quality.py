"""Quality measurements of Section 9.2: mis-labelled rate, ARI, cluster quality.

Three measurements compare an approximate (ρ-approximate) result against the
exact one:

* **mis-labelled rate** — fraction of edges whose label differs between the
  approximate labelling and the exact labelling;
* **overall clustering quality** — ARI between the disjoint assignments
  derived from the two clusterings;
* **individual cluster quality** — for each of the top-k largest approximate
  clusters, the maximum Jaccard similarity (as vertex sets) to any exact
  cluster that shares a core with it; the table reports the minimum and the
  average over the top-k.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.labelling import EdgeLabel
from repro.core.result import Clustering
from repro.evaluation.ari import adjusted_rand_index
from repro.graph.dynamic_graph import DynamicGraph, Vertex

Edge = Tuple[Vertex, Vertex]


def mislabelled_rate(
    exact_labels: Mapping[Edge, EdgeLabel], approx_labels: Mapping[Edge, EdgeLabel]
) -> float:
    """Fraction of edges with different labels in the two labellings.

    The rate is computed over the edges present in the exact labelling (the
    current graph's edges); an edge missing from the approximate labelling
    counts as mis-labelled.
    """
    if not exact_labels:
        return 0.0
    wrong = 0
    for edge, label in exact_labels.items():
        if approx_labels.get(edge) is not label:
            wrong += 1
    return wrong / len(exact_labels)


def set_jaccard(a: set, b: set) -> float:
    """Plain Jaccard similarity of two vertex sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


def individual_cluster_quality(
    approx: Clustering, exact: Clustering, top_k: int
) -> Tuple[float, float]:
    """(min, avg) individual quality over the top-k largest approximate clusters.

    For an approximate cluster ``C`` let ``S`` be its vertices that are core
    in the *exact* clustering and ``C*`` the exact clusters containing at
    least one member of ``S``; the quality of ``C`` is the largest Jaccard
    similarity between ``C`` and a member of ``C*`` (0 when ``C*`` is empty,
    which happens when ``C`` contains no exact core — the paper discusses
    exactly this case on Slashdot under cosine, ρ = 0.1).
    """
    top_clusters = approx.top_k(top_k)
    if not top_clusters:
        return 1.0, 1.0
    exact_core_cluster: Dict[Vertex, List[int]] = {}
    for idx, cluster in enumerate(exact.clusters):
        for v in cluster:
            if v in exact.cores:
                exact_core_cluster.setdefault(v, []).append(idx)
    qualities: List[float] = []
    for cluster in top_clusters:
        candidate_ids = set()
        for v in cluster:
            candidate_ids.update(exact_core_cluster.get(v, ()))
        if not candidate_ids:
            qualities.append(0.0)
            continue
        best = max(set_jaccard(cluster, exact.clusters[idx]) for idx in candidate_ids)
        qualities.append(best)
    return min(qualities), sum(qualities) / len(qualities)


@dataclass
class QualityReport:
    """One column of Table 2/3 for a single dataset and ρ value."""

    dataset: str
    rho: float
    epsilon: float
    mislabelled_rate: float
    ari: float
    #: top-k -> (min individual quality, avg individual quality)
    individual: Dict[int, Tuple[float, float]] = field(default_factory=dict)

    def row(self) -> Dict[str, float]:
        """Flat dictionary used by the report renderers."""
        out = {
            "dataset": self.dataset,
            "rho": self.rho,
            "epsilon": self.epsilon,
            "mislabelled_%": 100.0 * self.mislabelled_rate,
            "ARI": self.ari,
        }
        for k, (mn, avg) in sorted(self.individual.items()):
            out[f"top{k}_min"] = mn
            out[f"top{k}_avg"] = avg
        return out


def quality_report(
    dataset: str,
    rho: float,
    epsilon: float,
    graph: DynamicGraph,
    exact_labels: Mapping[Edge, EdgeLabel],
    approx_labels: Mapping[Edge, EdgeLabel],
    exact_clustering: Clustering,
    approx_clustering: Clustering,
    top_ks: Sequence[int] = (1, 5, 10, 20, 50, 100),
) -> QualityReport:
    """Assemble the three quality measurements into one report row."""
    rate = mislabelled_rate(exact_labels, approx_labels)
    ari = adjusted_rand_index(
        approx_clustering.partition_assignment(graph, approx_labels),
        exact_clustering.partition_assignment(graph, exact_labels),
    )
    individual = {
        k: individual_cluster_quality(approx_clustering, exact_clustering, k) for k in top_ks
    }
    return QualityReport(
        dataset=dataset,
        rho=rho,
        epsilon=epsilon,
        mislabelled_rate=rate,
        ari=ari,
        individual=individual,
    )
