"""Normalised Mutual Information between two disjoint cluster assignments.

The ARI (Section 9.2 of the paper) is the primary overall-quality measure;
NMI is the other widely used external index for comparing clusterings and is
provided for completeness of the evaluation toolkit.  Both operate on the
disjoint assignment produced by
:meth:`repro.core.result.Clustering.partition_assignment`.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping

Vertex = Hashable


def normalised_mutual_information(
    assignment_a: Mapping[Vertex, int], assignment_b: Mapping[Vertex, int]
) -> float:
    """NMI (arithmetic-mean normalisation) of two disjoint assignments.

    Vertices present in only one assignment are ignored, mirroring how noise
    is dropped from the ARI computation.  Returns a value in ``[0, 1]``;
    two identical assignments score 1, independent assignments score ~0.
    By convention two assignments that both have a single cluster (zero
    entropy) score 1.0, and an empty intersection scores 0.0.

    Example
    -------
    >>> normalised_mutual_information({1: 0, 2: 0, 3: 1}, {1: 5, 2: 5, 3: 9})
    1.0
    """
    common = [v for v in assignment_a if v in assignment_b]
    n = len(common)
    if n == 0:
        return 0.0

    counts_a: Dict[int, int] = {}
    counts_b: Dict[int, int] = {}
    joint: Dict[tuple, int] = {}
    for v in common:
        a, b = assignment_a[v], assignment_b[v]
        counts_a[a] = counts_a.get(a, 0) + 1
        counts_b[b] = counts_b.get(b, 0) + 1
        joint[(a, b)] = joint.get((a, b), 0) + 1

    def entropy(counts: Dict[int, int]) -> float:
        total = 0.0
        for count in counts.values():
            p = count / n
            total -= p * math.log(p)
        return total

    h_a = entropy(counts_a)
    h_b = entropy(counts_b)
    if h_a == 0.0 and h_b == 0.0:
        return 1.0

    mutual = 0.0
    for (a, b), count in joint.items():
        p_ab = count / n
        p_a = counts_a[a] / n
        p_b = counts_b[b] / n
        mutual += p_ab * math.log(p_ab / (p_a * p_b))

    denominator = 0.5 * (h_a + h_b)
    if denominator <= 0.0:
        return 0.0
    return max(0.0, min(1.0, mutual / denominator))
