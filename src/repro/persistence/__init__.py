"""Persistence: snapshots of the maintained state and update logs.

A dynamic clustering index is long-lived: the process maintaining it will
be restarted, the update stream will be archived and replayed, and the
maintained state will be shipped between machines.  This package provides
the two standard persistence primitives for that:

* :mod:`repro.persistence.snapshot` — serialise the *logical* state of a
  :class:`~repro.core.dynelm.DynELM` / :class:`~repro.core.dynstrclu.DynStrClu`
  instance (graph, edge labels, parameters) to a JSON document and restore
  a fully functional instance from it, without re-running the labelling
  strategy (so the restored clustering is bit-for-bit the snapshotted one);
* :mod:`repro.persistence.updatelog` — an append-only, human-readable log
  of edge updates (a write-ahead log) with a reader and a replay helper, so
  a crashed maintainer can be reconstructed from
  ``snapshot + log suffix``.
"""

from repro.persistence.snapshot import (
    StateSnapshot,
    load_snapshot,
    restore_dynelm,
    restore_dynstrclu,
    save_snapshot,
    take_snapshot,
)
from repro.persistence.updatelog import (
    UpdateLogReader,
    UpdateLogWriter,
    read_log_base,
    read_update_log,
    replay_updates,
    write_update_log,
)

__all__ = [
    "StateSnapshot",
    "take_snapshot",
    "save_snapshot",
    "load_snapshot",
    "restore_dynelm",
    "restore_dynstrclu",
    "UpdateLogWriter",
    "UpdateLogReader",
    "read_log_base",
    "write_update_log",
    "read_update_log",
    "replay_updates",
]
