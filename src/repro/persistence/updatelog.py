"""Append-only update logs (write-ahead logs) for the update stream.

The log format is a plain text file, one update per line::

    # repro-update-log v1
    + 17 42
    - 17 42
    + alice bob

``+`` is an insertion, ``-`` a deletion, followed by the two endpoint
identifiers.  Identifiers containing whitespace are not supported (matching
the SNAP edge-list convention); integer-looking identifiers are parsed back
to ``int`` so a round trip preserves the vertex type used by the library's
generators and datasets.

The combination ``snapshot + log suffix`` reconstructs a maintainer after a
crash: restore the snapshot, then :func:`replay_updates` over the log
entries recorded after the snapshot was taken.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, IO, Iterable, Iterator, List, Optional, Union

from repro.core.dynelm import Update, UpdateKind
from repro.graph.dynamic_graph import Vertex

#: Header line written at the top of every log file.
LOG_HEADER = "# repro-update-log v1"

_OP_TO_SYMBOL = {UpdateKind.INSERT: "+", UpdateKind.DELETE: "-"}
_SYMBOL_TO_OP = {"+": UpdateKind.INSERT, "-": UpdateKind.DELETE}


class UpdateLogError(ValueError):
    """Raised when an update-log line cannot be parsed."""


def _format_vertex(v: Vertex) -> str:
    text = str(v)
    if not text or any(ch.isspace() for ch in text):
        raise UpdateLogError(
            f"vertex identifier {v!r} cannot be written to an update log "
            "(empty or contains whitespace)"
        )
    return text


def _parse_vertex(token: str) -> Vertex:
    try:
        return int(token)
    except ValueError:
        return token


def format_update(update: Update) -> str:
    """One log line (without newline) for an update."""
    return (
        f"{_OP_TO_SYMBOL[update.kind]} "
        f"{_format_vertex(update.u)} {_format_vertex(update.v)}"
    )


def parse_update_line(line: str, lineno: int = 0) -> Optional[Update]:
    """Parse one log line; returns ``None`` for blank lines and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) != 3 or parts[0] not in _SYMBOL_TO_OP:
        raise UpdateLogError(f"malformed update-log line {lineno}: {line!r}")
    kind = _SYMBOL_TO_OP[parts[0]]
    return Update(kind, _parse_vertex(parts[1]), _parse_vertex(parts[2]))


class UpdateLogWriter:
    """Appends updates to a log file, flushing after every entry.

    Usable as a context manager::

        with UpdateLogWriter(path) as log:
            log.append(Update.insert(1, 2))
    """

    def __init__(self, path: Union[str, Path], append: bool = False) -> None:
        self.path = Path(path)
        mode = "a" if append and self.path.exists() else "w"
        self._handle: Optional[IO[str]] = self.path.open(mode, encoding="utf-8")
        if mode == "w":
            self._handle.write(LOG_HEADER + "\n")
            self._handle.flush()
        self.entries_written = 0

    def append(self, update: Update) -> None:
        """Append one update and flush it to disk."""
        if self._handle is None:
            raise UpdateLogError("update log writer is closed")
        self._handle.write(format_update(update) + "\n")
        self._handle.flush()
        self.entries_written += 1

    def extend(self, updates: Iterable[Update]) -> None:
        """Append a batch of updates."""
        for update in updates:
            self.append(update)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "UpdateLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class UpdateLogReader:
    """Iterates over the updates stored in a log file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def __iter__(self) -> Iterator[Update]:
        with self.path.open("r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                update = parse_update_line(line, lineno)
                if update is not None:
                    yield update

    def read_all(self) -> List[Update]:
        """Materialise the whole log."""
        return list(self)


def write_update_log(updates: Iterable[Update], path: Union[str, Path]) -> int:
    """Write a complete update sequence to ``path``; returns the entry count."""
    with UpdateLogWriter(path) as writer:
        writer.extend(updates)
        return writer.entries_written


def read_update_log(path: Union[str, Path]) -> List[Update]:
    """Read every update stored at ``path``."""
    return UpdateLogReader(path).read_all()


def replay_updates(
    algo,
    updates: Iterable[Update],
    on_update: Optional[Callable[[int, Update], None]] = None,
    skip: int = 0,
) -> int:
    """Apply a sequence of updates to any algorithm exposing ``apply(update)``.

    Parameters
    ----------
    algo:
        A maintainer with an ``apply(update)`` method (DynELM, DynStrClu and
        both dynamic baselines qualify).
    updates:
        The updates to apply, typically from :class:`UpdateLogReader`.
    on_update:
        Optional callback invoked after each applied update with the
        (zero-based) position in the replayed stream and the update.
    skip:
        Number of leading updates to skip — the position of the snapshot in
        the log when recovering from ``snapshot + log``.

    Returns the number of updates applied.
    """
    applied = 0
    for index, update in enumerate(updates):
        if index < skip:
            continue
        algo.apply(update)
        if on_update is not None:
            on_update(index, update)
        applied += 1
    return applied
