"""Append-only update logs (write-ahead logs) for the update stream.

The log format is a plain text file, one update per line::

    # repro-update-log v1
    + 17 42
    - 17 42
    + alice bob

``+`` is an insertion, ``-`` a deletion, followed by the two endpoint
identifiers.  Identifiers containing whitespace are not supported (matching
the SNAP edge-list convention); integer-looking identifiers are parsed back
to ``int`` so a round trip preserves the vertex type used by the library's
generators and datasets.

The combination ``snapshot + log suffix`` reconstructs a maintainer after a
crash: restore the snapshot, then :func:`replay_updates` over the log
entries recorded after the snapshot was taken.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, IO, Iterable, Iterator, List, Optional, Union

from repro.core.dynelm import Update, UpdateKind
from repro.graph.dynamic_graph import Vertex

#: Header line written at the top of every log file.
LOG_HEADER = "# repro-update-log v1"

#: Comment prefix recording the stream position at which a log was started
#: (the total number of updates applied before its first entry).  Used by
#: crash recovery to line a rotated log up against a state snapshot.
BASE_PREFIX = "# base "

_OP_TO_SYMBOL = {UpdateKind.INSERT: "+", UpdateKind.DELETE: "-"}
_SYMBOL_TO_OP = {"+": UpdateKind.INSERT, "-": UpdateKind.DELETE}


class UpdateLogError(ValueError):
    """Raised when an update-log line cannot be parsed."""


def _format_vertex(v: Vertex) -> str:
    text = str(v)
    if not text or any(ch.isspace() for ch in text):
        raise UpdateLogError(
            f"vertex identifier {v!r} cannot be written to an update log "
            "(empty or contains whitespace)"
        )
    return text


def _parse_vertex(token: str) -> Vertex:
    try:
        return int(token)
    except ValueError:
        return token


def format_update(update: Update) -> str:
    """One log line (without newline) for an update."""
    return (
        f"{_OP_TO_SYMBOL[update.kind]} "
        f"{_format_vertex(update.u)} {_format_vertex(update.v)}"
    )


def parse_update_line(line: str, lineno: int = 0) -> Optional[Update]:
    """Parse one log line; returns ``None`` for blank lines and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) != 3 or parts[0] not in _SYMBOL_TO_OP:
        raise UpdateLogError(f"malformed update-log line {lineno}: {line!r}")
    kind = _SYMBOL_TO_OP[parts[0]]
    return Update(kind, _parse_vertex(parts[1]), _parse_vertex(parts[2]))


class UpdateLogWriter:
    """Appends updates to a log file, flushing after every entry.

    Usable as a context manager::

        with UpdateLogWriter(path) as log:
            log.append(Update.insert(1, 2))
    """

    def __init__(
        self, path: Union[str, Path], append: bool = False, base: int = 0
    ) -> None:
        self.path = Path(path)
        mode = "a" if append and self.path.exists() else "w"
        self._handle: Optional[IO[str]] = self.path.open(mode, encoding="utf-8")
        if mode == "w":
            self._handle.write(LOG_HEADER + "\n")
            if base:
                self._handle.write(f"{BASE_PREFIX}{base}\n")
            self._handle.flush()
        self.base = base
        self.entries_written = 0

    @property
    def closed(self) -> bool:
        return self._handle is None

    def append(self, update: Update) -> None:
        """Append one update and flush it to disk."""
        if self._handle is None:
            raise UpdateLogError("update log writer is closed")
        self._handle.write(format_update(update) + "\n")
        self._handle.flush()
        self.entries_written += 1

    def extend(self, updates: Iterable[Update]) -> None:
        """Append a batch of updates."""
        for update in updates:
            self.append(update)

    def sync(self) -> None:
        """Flush buffered entries and fsync them to stable storage.

        Durability barrier for checkpoints: after ``sync()`` returns, every
        appended entry survives a crash of the whole machine, not just of
        the process, so recovery never replays a torn tail.
        """
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Fsync and close the log.  Safe to call more than once."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "UpdateLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class UpdateLogReader:
    """Iterates over the updates stored in a log file.

    Parameters
    ----------
    path:
        The log file to read.
    tolerate_torn_tail:
        When true, a final entry that is unterminated (no trailing newline)
        or unparseable is silently dropped instead of raising — the shape a
        log takes when the writer crashed mid-append.  Corruption anywhere
        *before* the last line still raises :class:`UpdateLogError`.
    """

    def __init__(
        self, path: Union[str, Path], tolerate_torn_tail: bool = False
    ) -> None:
        self.path = Path(path)
        self.tolerate_torn_tail = tolerate_torn_tail

    def __iter__(self) -> Iterator[Update]:
        # stream with one line of lookahead: only the final line may be a
        # torn tail, and buffering one line keeps recovery O(1) in memory
        # even for a WAL that was never rotated
        with self.path.open("r", encoding="utf-8") as handle:
            pending: Optional[str] = None
            pending_no = 0
            for lineno, line in enumerate(handle, start=1):
                if pending is not None:
                    update = parse_update_line(pending, pending_no)
                    if update is not None:
                        yield update
                pending, pending_no = line, lineno
            if pending is None:
                return
            if self.tolerate_torn_tail and not pending.endswith("\n"):
                return  # unterminated tail: the writer died mid-append
            try:
                update = parse_update_line(pending, pending_no)
            except UpdateLogError:
                if self.tolerate_torn_tail:
                    return
                raise
            if update is not None:
                yield update

    def base(self) -> int:
        """The stream position recorded when this log was started (0 if none)."""
        return read_log_base(self.path)

    def read_all(self) -> List[Update]:
        """Materialise the whole log."""
        return list(self)


def read_log_base(path: Union[str, Path]) -> int:
    """Parse the ``# base N`` marker of a rotated log (0 when absent)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped.startswith(BASE_PREFIX):
                try:
                    return int(stripped[len(BASE_PREFIX):])
                except ValueError as exc:
                    raise UpdateLogError(f"malformed base marker {line!r}") from exc
            if stripped and not stripped.startswith("#"):
                break  # past the header block: no marker present
    return 0


def write_update_log(updates: Iterable[Update], path: Union[str, Path]) -> int:
    """Write a complete update sequence to ``path``; returns the entry count."""
    with UpdateLogWriter(path) as writer:
        writer.extend(updates)
        return writer.entries_written


def read_update_log(path: Union[str, Path]) -> List[Update]:
    """Read every update stored at ``path``."""
    return UpdateLogReader(path).read_all()


def replay_updates(
    algo,
    updates: Iterable[Update],
    on_update: Optional[Callable[[int, Update], None]] = None,
    skip: int = 0,
) -> int:
    """Apply a sequence of updates to any algorithm exposing ``apply(update)``.

    Parameters
    ----------
    algo:
        A maintainer with an ``apply(update)`` method (DynELM, DynStrClu and
        both dynamic baselines qualify).
    updates:
        The updates to apply, typically from :class:`UpdateLogReader`.
    on_update:
        Optional callback invoked after each applied update with the
        (zero-based) position in the replayed stream and the update.
    skip:
        Number of leading updates to skip — the position of the snapshot in
        the log when recovering from ``snapshot + log``.

    Returns the number of updates applied.
    """
    applied = 0
    for index, update in enumerate(updates):
        if index < skip:
            continue
        algo.apply(update)
        if on_update is not None:
            on_update(index, update)
        applied += 1
    return applied
