"""Append-only update logs (write-ahead logs) for the update stream.

The log format is a plain text file, one update per line::

    # repro-update-log v2
    + 17 42
    - 17 42
    + alice bob
    + ~17 alice

``+`` is an insertion, ``-`` a deletion, followed by the two endpoint
identifiers.  Identifiers containing whitespace are not supported (matching
the SNAP edge-list convention).  Bare integer tokens parse back to ``int``;
a *string* identifier that would be ambiguous — one that parses as an
integer, or one starting with ``~`` — is written with a ``~`` escape prefix
(``"17"`` → ``~17``, ``"~x"`` → ``~~x``), so the round trip is lossless:
the int ``17`` and the string ``"17"`` are distinct vertices and stay
distinct through WAL replay.  A log carrying the old ``v1`` header is read
with the pre-escape rules (tokens verbatim, ints collapsed), so existing
logs — including ones whose string vertices start with ``~`` — replay
exactly as they always did.

The combination ``snapshot + log suffix`` reconstructs a maintainer after a
crash: restore the snapshot, then :func:`replay_updates` over the log
entries recorded after the snapshot was taken.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, IO, Iterable, Iterator, List, Optional, Union

from repro.core.dynelm import Update, UpdateKind
from repro.graph.dynamic_graph import Vertex

#: Header line written at the top of every log file.
LOG_HEADER = "# repro-update-log v2"

#: Header of the pre-escape format: tokens are read verbatim (no ``~``
#: unescaping), so a v1 log whose string vertices happen to start with
#: ``~`` round-trips unchanged.
LOG_HEADER_V1 = "# repro-update-log v1"

#: Escape prefix marking a token that must parse back as a *string* even
#: though it looks like an integer (or itself starts with the prefix).
ESCAPE_PREFIX = "~"

#: Comment prefix recording the stream position at which a log was started
#: (the total number of updates applied before its first entry).  Used by
#: crash recovery to line a rotated log up against a state snapshot.
BASE_PREFIX = "# base "

#: File-name pattern of a *retained* (rotated-out) WAL segment.  The base
#: position is zero-padded into the name so a lexicographic directory
#: listing is also the stream order; the ``# base`` marker inside the file
#: stays the source of truth.
SEGMENT_NAME_FORMAT = "wal-{base:012d}.log"
SEGMENT_NAME_RE = re.compile(r"^wal-(\d{12})\.log$")

_OP_TO_SYMBOL = {UpdateKind.INSERT: "+", UpdateKind.DELETE: "-"}
_SYMBOL_TO_OP = {"+": UpdateKind.INSERT, "-": UpdateKind.DELETE}


class UpdateLogError(ValueError):
    """Raised when an update-log line cannot be parsed."""


def format_vertex_token(v: Vertex) -> str:
    """The whitespace-free token form of a vertex identifier (lossless).

    Shared by the WAL and the HTTP path segments of ``/cluster/{v}``: a
    string that could be mistaken for an int (or for an escaped token) is
    prefixed with :data:`ESCAPE_PREFIX`.
    """
    text = str(v)
    if not text or any(ch.isspace() for ch in text):
        raise UpdateLogError(
            f"vertex identifier {v!r} cannot be written as a log token "
            "(empty or contains whitespace)"
        )
    if isinstance(v, str):
        needs_escape = text.startswith(ESCAPE_PREFIX)
        if not needs_escape:
            try:
                int(text)
                needs_escape = True
            except ValueError:
                pass
        if needs_escape:
            return ESCAPE_PREFIX + text
    return text


def parse_vertex_token(token: str, unescape: bool = True) -> Vertex:
    """Inverse of :func:`format_vertex_token`.

    ``unescape=False`` selects the pre-v2 reading (tokens verbatim, ints
    collapsed), used when replaying a log written before the escape format.
    """
    if unescape and token.startswith(ESCAPE_PREFIX):
        return token[len(ESCAPE_PREFIX):]
    try:
        return int(token)
    except ValueError:
        return token


# retained aliases: the historical private names, used across the test suite
_format_vertex = format_vertex_token
_parse_vertex = parse_vertex_token


def format_update(update: Update) -> str:
    """One log line (without newline) for an update."""
    return (
        f"{_OP_TO_SYMBOL[update.kind]} "
        f"{format_vertex_token(update.u)} {format_vertex_token(update.v)}"
    )


def parse_update_line(
    line: str, lineno: int = 0, unescape: bool = True
) -> Optional[Update]:
    """Parse one log line; returns ``None`` for blank lines and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    parts = stripped.split()
    if len(parts) != 3 or parts[0] not in _SYMBOL_TO_OP:
        raise UpdateLogError(f"malformed update-log line {lineno}: {line!r}")
    kind = _SYMBOL_TO_OP[parts[0]]
    return Update(
        kind,
        parse_vertex_token(parts[1], unescape=unescape),
        parse_vertex_token(parts[2], unescape=unescape),
    )


class UpdateLogWriter:
    """Appends updates to a log file, flushing after every entry.

    Usable as a context manager::

        with UpdateLogWriter(path) as log:
            log.append(Update.insert(1, 2))
    """

    def __init__(
        self, path: Union[str, Path], append: bool = False, base: int = 0
    ) -> None:
        self.path = Path(path)
        mode = "a" if append and self.path.exists() else "w"
        if mode == "a":
            # this writer emits v2 (~-escaped) tokens; splicing them into a
            # pre-escape log would make the reader mis-parse the appended
            # suffix (the v1 header disables unescaping file-wide)
            with self.path.open("r", encoding="utf-8") as existing:
                first = existing.readline().strip()
            if first == LOG_HEADER_V1:
                raise UpdateLogError(
                    f"cannot append v2 entries to the v1-format log {self.path}; "
                    "rewrite it with write_update_log(read_update_log(path), path) first"
                )
        self._handle: Optional[IO[str]] = self.path.open(mode, encoding="utf-8")
        if mode == "w":
            self._handle.write(LOG_HEADER + "\n")
            if base:
                self._handle.write(f"{BASE_PREFIX}{base}\n")
            self._handle.flush()
        self.base = base
        self.entries_written = 0

    @property
    def closed(self) -> bool:
        return self._handle is None

    @property
    def position(self) -> int:
        """The stream position after the last appended entry.

        ``base + entries_written`` — the logical update-stream coordinate a
        WAL shipper resumes from, and the ``from`` a replica acks up to.
        """
        return self.base + self.entries_written

    def append(self, update: Update) -> None:
        """Append one update and flush it to disk."""
        if self._handle is None:
            raise UpdateLogError("update log writer is closed")
        self._handle.write(format_update(update) + "\n")
        self._handle.flush()
        self.entries_written += 1

    def extend(self, updates: Iterable[Update]) -> None:
        """Append a batch of updates."""
        for update in updates:
            self.append(update)

    def sync(self) -> None:
        """Flush buffered entries and fsync them to stable storage.

        Durability barrier for checkpoints: after ``sync()`` returns, every
        appended entry survives a crash of the whole machine, not just of
        the process, so recovery never replays a torn tail.
        """
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Fsync and close the log.  Safe to call more than once."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "UpdateLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class UpdateLogReader:
    """Iterates over the updates stored in a log file.

    Parameters
    ----------
    path:
        The log file to read.
    tolerate_torn_tail:
        When true, a final entry that is unterminated (no trailing newline)
        or unparseable is dropped instead of raising — the shape a log
        takes when the writer crashed mid-append.  Corruption anywhere
        *before* the last line still raises :class:`UpdateLogError`.

    A tolerated torn tail is *reported*, never silently swallowed: after
    (or during) iteration :attr:`torn_tail` is true and
    :attr:`entries_read` counts the entries actually yielded, so a caller
    that needs the distinction — a WAL shipper deciding between "clean end
    of segment" and "this segment is damaged, re-seed from a snapshot" —
    can make it deterministically.
    """

    def __init__(
        self, path: Union[str, Path], tolerate_torn_tail: bool = False
    ) -> None:
        self.path = Path(path)
        self.tolerate_torn_tail = tolerate_torn_tail
        #: True once iteration dropped an unterminated/unparseable tail.
        self.torn_tail = False
        #: Entries yielded by the most recent iteration.
        self.entries_read = 0
        #: Entries skipped (counted but not parsed) by the most recent
        #: :meth:`iter_from` iteration.
        self.entries_skipped = 0
        #: The ``# base N`` marker streamed past during the most recent
        #: iteration (0 when the file carries none).  Because the writer
        #: emits the marker before any entry, this is always set before
        #: the first yield — letting a caller that opened the file through
        #: a racy path (the active WAL can be rotated between listing and
        #: opening) verify it is reading the segment it thinks it is.
        self.observed_base = 0

    def __iter__(self) -> Iterator[Update]:
        return self.iter_from(0)

    def iter_from(self, skip: int) -> Iterator[Update]:
        """Iterate the log, cheaply jumping over the first ``skip`` entries.

        Skipped entries are *counted* at line granularity (comments and
        blanks excluded) but never tokenised — this is the WAL-serving
        hot path seeking to a stream position, where re-parsing the whole
        prefix on every replica poll would be pure waste.  Note the
        trade-off: a malformed line inside the skipped prefix is counted
        as an entry instead of raising (full-strictness readers use
        ``skip=0``, the default iteration).

        Streams with one line of lookahead: only the final line may be a
        torn tail, and buffering one line keeps recovery O(1) in memory
        even for a WAL that was never rotated.  The tail line is always
        parsed (even inside the skip range) so torn-tail detection stays
        exact.
        """
        self.torn_tail = False
        self.entries_read = 0
        self.entries_skipped = 0
        self.observed_base = 0
        with self.path.open("r", encoding="utf-8") as handle:
            pending: Optional[str] = None
            pending_no = 0
            unescape = True
            for lineno, line in enumerate(handle, start=1):
                if lineno == 1 and line.strip() == LOG_HEADER_V1:
                    # pre-escape log: read its tokens exactly as written
                    unescape = False
                if pending is not None:
                    stripped = pending.strip()
                    if stripped.startswith(BASE_PREFIX):
                        self._note_base(stripped)
                    if stripped and not stripped.startswith("#"):
                        if self.entries_skipped < skip:
                            self.entries_skipped += 1
                        else:
                            update = parse_update_line(
                                pending, pending_no, unescape=unescape
                            )
                            if update is not None:
                                self.entries_read += 1
                                yield update
                pending, pending_no = line, lineno
            if pending is None:
                return
            if self.tolerate_torn_tail and not pending.endswith("\n"):
                self.torn_tail = True
                return  # unterminated tail: the writer died mid-append
            if pending.strip().startswith(BASE_PREFIX):
                # an empty just-rotated segment: the marker is the last line
                self._note_base(pending.strip())
            try:
                update = parse_update_line(pending, pending_no, unescape=unescape)
            except UpdateLogError:
                if self.tolerate_torn_tail:
                    self.torn_tail = True
                    return
                raise
            if update is not None:
                if self.entries_skipped < skip:
                    self.entries_skipped += 1
                else:
                    self.entries_read += 1
                    yield update

    def _note_base(self, stripped: str) -> None:
        """Record the first ``# base N`` marker seen while streaming."""
        if self.observed_base:
            return
        try:
            self.observed_base = int(stripped[len(BASE_PREFIX):])
        except ValueError:
            pass  # malformed marker: leave 0, matching a marker-less file

    def base(self) -> int:
        """The stream position recorded when this log was started (0 if none)."""
        return read_log_base(self.path)

    def read_all(self) -> List[Update]:
        """Materialise the whole log."""
        return list(self)


def read_log_base(path: Union[str, Path]) -> int:
    """Parse the ``# base N`` marker of a rotated log (0 when absent)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if stripped.startswith(BASE_PREFIX):
                try:
                    return int(stripped[len(BASE_PREFIX):])
                except ValueError as exc:
                    raise UpdateLogError(f"malformed base marker {line!r}") from exc
            if stripped and not stripped.startswith("#"):
                break  # past the header block: no marker present
    return 0


@dataclass(frozen=True)
class WalSegment:
    """One WAL segment on disk: ``[base, base + entries)`` of the stream.

    ``active`` marks the segment currently being appended to; retained
    (rotated-out) segments are immutable.  ``entries`` is computed lazily
    by :func:`segment_entry_count` when a reader needs the upper bound.
    """

    path: Path
    base: int
    active: bool = False


def segment_file_name(base: int) -> str:
    """The retained-segment file name for a segment starting at ``base``."""
    return SEGMENT_NAME_FORMAT.format(base=base)


def list_wal_segments(
    directory: Union[str, Path], active_name: Optional[str] = None
) -> List[WalSegment]:
    """Every WAL segment under ``directory``, sorted by base position.

    Retained segments are discovered by their ``wal-<base>.log`` names
    (the base taken from the name — the rotation writes both, and the
    ``# base`` marker inside stays the recovery-path source of truth);
    the *active* segment, named ``active_name``, is appended last with
    its marker-derived base.  The shipping layer walks this list to
    serve any still-retained suffix of the stream.

    The active base is read *before* the directory scan: a concurrent
    rotation (active renamed to retained, new active created at a higher
    base) can then only make the listing cover some positions twice —
    benign, the serving layer skips past-the-cursor segments and
    re-verifies the active base at open time — never leave a hole
    between the retained set and the active segment, which would be
    misreported as a pruned gap and trigger a needless snapshot re-seed.
    """
    directory = Path(directory)
    active: Optional[WalSegment] = None
    if active_name is not None:
        active_path = directory / active_name
        try:
            base = read_log_base(active_path)
        except FileNotFoundError:
            # the writer is mid-rotation (the active log was renamed and
            # not yet recreated): list without it; the caller's next poll
            # sees the rotated layout
            pass
        else:
            active = WalSegment(path=active_path, base=base, active=True)
    segments: List[WalSegment] = []
    if directory.is_dir():
        for entry in sorted(directory.iterdir()):
            match = SEGMENT_NAME_RE.match(entry.name)
            if match is None:
                continue
            segments.append(WalSegment(path=entry, base=int(match.group(1))))
    segments.sort(key=lambda segment: segment.base)
    if active is not None:
        segments.append(active)
    return segments


def segment_entry_count(segment: WalSegment) -> int:
    """Number of (whole) entries stored in a segment, torn tail excluded."""
    reader = UpdateLogReader(segment.path, tolerate_torn_tail=True)
    count = 0
    for _update in reader:
        count += 1
    return count


def write_update_log(updates: Iterable[Update], path: Union[str, Path]) -> int:
    """Write a complete update sequence to ``path``; returns the entry count."""
    with UpdateLogWriter(path) as writer:
        writer.extend(updates)
        return writer.entries_written


def read_update_log(path: Union[str, Path]) -> List[Update]:
    """Read every update stored at ``path``."""
    return UpdateLogReader(path).read_all()


def replay_updates(
    algo,
    updates: Iterable[Update],
    on_update: Optional[Callable[[int, Update], None]] = None,
    skip: int = 0,
) -> int:
    """Apply a sequence of updates to any algorithm exposing ``apply(update)``.

    Parameters
    ----------
    algo:
        A maintainer with an ``apply(update)`` method (DynELM, DynStrClu and
        both dynamic baselines qualify).
    updates:
        The updates to apply, typically from :class:`UpdateLogReader`.
    on_update:
        Optional callback invoked after each applied update with the
        (zero-based) position in the replayed stream and the update.
    skip:
        Number of leading updates to skip — the position of the snapshot in
        the log when recovering from ``snapshot + log``.

    Returns the number of updates applied.
    """
    applied = 0
    for index, update in enumerate(updates):
        if index < skip:
            continue
        algo.apply(update)
        if on_update is not None:
            on_update(index, update)
        applied += 1
    return applied
