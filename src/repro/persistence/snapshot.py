"""Snapshots of the maintained DynELM / DynStrClu state.

A snapshot captures the *logical* state that determines the clustering:

* the clustering parameters (:class:`~repro.core.config.StrCluParams`);
* the vertex set and edge set of the current graph;
* the maintained ρ-approximate label of every edge.

Restoring from a snapshot rebuilds the graph, reinstates the stored labels
verbatim (no strategy invocation, no sampling), re-creates a fresh DT
instance per edge with the threshold computed from the *current* degrees,
and — for :class:`~repro.core.dynstrclu.DynStrClu` — rebuilds vAuxInfo, the
core set and CC-Str(G_core) from the labels.  Resetting the DT tracking
state is safe: the affordability lemmas (5.1/5.2 and 8.4/8.5) only require
that an edge is re-labelled before it has absorbed τ(u, v) affecting
updates *since it was last labelled*, and a fresh DT instance tracks from
zero, which is conservative.

The on-disk format is a single JSON document (version-tagged), chosen for
longevity and debuggability over pickling live objects.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.affordability import tracking_threshold
from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM
from repro.core.dynstrclu import DynStrClu
from repro.core.labelling import EdgeLabel
from repro.graph.dynamic_graph import Vertex, canonical_edge
from repro.graph.similarity import SimilarityKind

Edge = Tuple[Vertex, Vertex]

#: Identifies the snapshot JSON documents produced by this module.
SNAPSHOT_FORMAT = "repro-strclu-snapshot"
SNAPSHOT_VERSION = 1

#: Position-stamped snapshot files retained alongside the WAL segments as
#: time-travel replay anchors: ``snapshot-<position:012d>.json``.  The fixed
#: 12-digit zero-padded position makes lexicographic order equal numeric
#: order, mirroring the WAL segment naming in
#: :mod:`repro.persistence.updatelog`.
RETAINED_SNAPSHOT_FORMAT = "snapshot-{position:012d}.json"
RETAINED_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")


class SnapshotError(ValueError):
    """Raised when a snapshot document is malformed or has the wrong version."""


def write_durable(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` atomically and durably (tmp + fsync + rename).

    The one shared discipline for every persisted state file — snapshots,
    shard/replication manifests, standby seeds: a crash at any point
    leaves either the old whole file or the new whole file on disk, never
    a torn one that bricks the next recovery's parse.
    """
    path = Path(path)
    tmp_path = path.with_name(path.name + ".tmp")
    with tmp_path.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


@dataclass
class StateSnapshot:
    """In-memory representation of a snapshot.

    Attributes
    ----------
    params:
        The clustering parameters active when the snapshot was taken.
    vertices:
        Every vertex of the graph (including isolated ones).
    labelled_edges:
        Every edge together with its maintained label.  A *graph-only*
        edge (outside the instance's labelling scope — see
        :class:`repro.core.dynelm.DynELM`) is stored with label ``None``
        and restored without a label or DT instance.
    updates_processed:
        Number of updates the snapshotted instance had processed; restored
        instances continue the count (it feeds the δ_i schedule bookkeeping
        in reports, not correctness).
    """

    params: StrCluParams
    vertices: List[Vertex] = field(default_factory=list)
    labelled_edges: List[Tuple[Vertex, Vertex, Optional[EdgeLabel]]] = field(
        default_factory=list
    )
    updates_processed: int = 0

    # ------------------------------------------------------------------
    # JSON (de)serialisation
    # ------------------------------------------------------------------
    def to_document(self) -> Dict[str, object]:
        """The JSON-serialisable document for this snapshot."""
        return {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "params": _params_to_document(self.params),
            "updates_processed": self.updates_processed,
            "vertices": [_vertex_to_json(v) for v in self.vertices],
            "edges": [
                [
                    _vertex_to_json(u),
                    _vertex_to_json(v),
                    None if label is None else label.value,
                ]
                for u, v, label in self.labelled_edges
            ],
        }

    @classmethod
    def from_document(cls, document: Dict[str, object]) -> "StateSnapshot":
        """Parse a snapshot document; raises :class:`SnapshotError` if malformed."""
        if not isinstance(document, dict):
            raise SnapshotError("snapshot document must be a JSON object")
        if document.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"unexpected snapshot format {document.get('format')!r}; "
                f"expected {SNAPSHOT_FORMAT!r}"
            )
        version = document.get("version")
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(f"unsupported snapshot version {version!r}")
        try:
            params = _params_from_document(document["params"])  # type: ignore[arg-type]
            vertices = [_vertex_from_json(v) for v in document.get("vertices", [])]
            edges = [
                (
                    _vertex_from_json(entry[0]),
                    _vertex_from_json(entry[1]),
                    None if entry[2] is None else EdgeLabel(entry[2]),
                )
                for entry in document.get("edges", [])
            ]
            updates = int(document.get("updates_processed", 0))
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise SnapshotError(f"malformed snapshot document: {exc}") from exc
        return cls(
            params=params,
            vertices=vertices,
            labelled_edges=edges,
            updates_processed=updates,
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_document(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "StateSnapshot":
        """Parse from a JSON string."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"snapshot is not valid JSON: {exc}") from exc
        return cls.from_document(document)

    # ------------------------------------------------------------------
    # convenience views
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.labelled_edges)

    def labels(self) -> Dict[Edge, EdgeLabel]:
        """Edge-label mapping keyed by canonical edges (graph-only edges omitted)."""
        return {
            canonical_edge(u, v): label
            for u, v, label in self.labelled_edges
            if label is not None
        }


# ----------------------------------------------------------------------
# taking snapshots
# ----------------------------------------------------------------------
def take_snapshot(algo: Union[DynELM, DynStrClu]) -> StateSnapshot:
    """Capture the logical state of a DynELM or DynStrClu instance.

    Example
    -------
    >>> from repro import DynStrClu, StrCluParams
    >>> algo = DynStrClu(StrCluParams(epsilon=0.5, mu=2, rho=0.0))
    >>> for e in [(1, 2), (2, 3), (1, 3)]:
    ...     _ = algo.insert_edge(*e)
    >>> snap = take_snapshot(algo)
    >>> snap.num_edges
    3
    """
    elm = algo.elm if isinstance(algo, DynStrClu) else algo
    vertices = sorted(elm.graph.vertices(), key=repr)
    edges = []
    for u, v in sorted(elm.graph.edges(), key=repr):
        edge = canonical_edge(u, v)
        if elm.scope is not None and not elm.scope(u, v):
            edges.append((u, v, elm.labels.get(edge)))  # graph-only edge
        else:
            # an in-scope edge missing its label is a bookkeeping bug and
            # must fail the checkpoint loudly, not persist as unlabelled
            edges.append((u, v, elm.labels[edge]))
    return StateSnapshot(
        params=elm.params,
        vertices=vertices,
        labelled_edges=edges,
        updates_processed=elm.updates_processed,
    )


def save_snapshot(algo: Union[DynELM, DynStrClu], path: Union[str, Path]) -> StateSnapshot:
    """Take a snapshot of ``algo`` and write it to ``path`` as JSON.

    Written through :func:`write_durable`: a crash mid-save must leave
    the previous snapshot intact, never a torn document that bricks the
    next recovery's parse (regression: this used to be a bare
    ``write_text``, which truncates before it writes).
    """
    snapshot = take_snapshot(algo)
    write_durable(path, snapshot.to_json(indent=2))
    return snapshot


def load_snapshot(path: Union[str, Path]) -> StateSnapshot:
    """Read a snapshot document from ``path``."""
    return StateSnapshot.from_json(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# retained (position-stamped) snapshots: the time-travel replay anchors
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetainedSnapshot:
    """One position-stamped snapshot file: the anchor for replay-to-``position``."""

    position: int
    path: Path


def retained_snapshot_name(position: int) -> str:
    """File name of the retained snapshot taken at applied ``position``."""
    if position < 0:
        raise ValueError(f"snapshot position must be >= 0, got {position}")
    return RETAINED_SNAPSHOT_FORMAT.format(position=position)


def list_retained_snapshots(directory: Union[str, Path]) -> List[RetainedSnapshot]:
    """Every retained snapshot in ``directory``, sorted by position.

    This listing *is* the snapshot position manifest: the file names carry
    the applied position each snapshot was cut at, so no separate index
    file can drift out of sync with the snapshots actually on disk.
    """
    directory = Path(directory)
    retained: List[RetainedSnapshot] = []
    if not directory.is_dir():
        return retained
    for entry in directory.iterdir():
        match = RETAINED_SNAPSHOT_RE.match(entry.name)
        if match:
            retained.append(RetainedSnapshot(position=int(match.group(1)), path=entry))
    retained.sort(key=lambda snapshot: snapshot.position)
    return retained


# ----------------------------------------------------------------------
# restoring
# ----------------------------------------------------------------------
def restore_dynelm(snapshot: StateSnapshot, **kwargs) -> DynELM:
    """Rebuild a :class:`DynELM` instance from a snapshot.

    The stored labels are reinstated verbatim; every edge is tracked by a
    fresh DT instance with the threshold computed from the restored
    degrees.  Additional keyword arguments (``oracle``, ``counter``) are
    forwarded to the :class:`DynELM` constructor.
    """
    elm = DynELM(snapshot.params, **kwargs)
    graph = elm.graph
    for v in snapshot.vertices:
        graph.add_vertex(v)
    for u, v, _label in snapshot.labelled_edges:
        graph.insert_edge(u, v)
    for u, v, label in snapshot.labelled_edges:
        if label is None:  # graph-only edge (out of labelling scope)
            continue
        edge = canonical_edge(u, v)
        elm.labels[edge] = label
        tau = tracking_threshold(graph, u, v, snapshot.params)
        elm.tracker.track(u, v, tau)
    elm.updates_processed = snapshot.updates_processed
    return elm


def restore_dynstrclu(
    snapshot: StateSnapshot,
    connectivity_backend: str = "hdt",
    **kwargs,
) -> DynStrClu:
    """Rebuild a :class:`DynStrClu` instance (ELM + vAuxInfo + CC-Str) from a snapshot.

    The restored instance produces exactly the clustering that was
    maintained when the snapshot was taken and continues to accept updates.

    Example
    -------
    >>> from repro import DynStrClu, StrCluParams
    >>> algo = DynStrClu(StrCluParams(epsilon=0.5, mu=2, rho=0.0))
    >>> for e in [(1, 2), (2, 3), (1, 3), (3, 4)]:
    ...     _ = algo.insert_edge(*e)
    >>> restored = restore_dynstrclu(take_snapshot(algo))
    >>> restored.clustering().as_frozen() == algo.clustering().as_frozen()
    True
    """
    algo = DynStrClu(
        snapshot.params, connectivity_backend=connectivity_backend, **kwargs
    )
    # --- ELM (kwargs forwarded so a ``scope`` predicate survives restore) ---
    elm_kwargs = {
        key: value
        for key, value in kwargs.items()
        if key in ("oracle", "counter", "scope", "graph")
    }
    restored_elm = restore_dynelm(snapshot, **elm_kwargs)
    algo.elm = restored_elm

    # --- vAuxInfo and the core set ------------------------------------------
    mu = snapshot.params.mu
    similar_edges = [
        (u, v) for u, v, label in snapshot.labelled_edges if label is EdgeLabel.SIMILAR
    ]
    sim_counts: Dict[Vertex, int] = {}
    for u, v in similar_edges:
        sim_counts[u] = sim_counts.get(u, 0) + 1
        sim_counts[v] = sim_counts.get(v, 0) + 1
    cores = {v for v, count in sim_counts.items() if count >= mu}
    algo.cores = set(cores)
    for u, v in similar_edges:
        algo.aux.update_similar_edge(u, v, u in cores, v in cores)

    # --- CC-Str(G_core) -----------------------------------------------------
    for core in cores:
        algo.cc.add_vertex(core)
    for u, v in similar_edges:
        if u in cores and v in cores:
            algo.cc.insert_edge(u, v)
    return algo


# ----------------------------------------------------------------------
# vertex / parameter (de)serialisation helpers
# ----------------------------------------------------------------------
def _vertex_to_json(v: Vertex) -> object:
    if isinstance(v, bool):  # bool is an int subclass; refuse the ambiguity
        raise SnapshotError("boolean vertex identifiers are not supported")
    if isinstance(v, (int, str)):
        return v
    raise SnapshotError(
        f"vertex identifiers must be ints or strings for snapshots, got {type(v).__name__}"
    )


def _vertex_from_json(value: object) -> Vertex:
    if isinstance(value, (int, str)):
        return value
    raise SnapshotError(f"malformed vertex identifier {value!r} in snapshot")


def _params_to_document(params: StrCluParams) -> Dict[str, object]:
    return {
        "epsilon": params.epsilon,
        "mu": params.mu,
        "rho": params.rho,
        "delta_star": params.delta_star,
        "similarity": params.similarity.value,
        "seed": params.seed,
        "max_samples": params.max_samples,
    }


def _params_from_document(document: Dict[str, object]) -> StrCluParams:
    return StrCluParams(
        epsilon=float(document["epsilon"]),
        mu=int(document["mu"]),
        rho=float(document["rho"]),
        delta_star=float(document["delta_star"]),
        similarity=SimilarityKind(document["similarity"]),
        seed=int(document.get("seed", 0)),
        max_samples=(
            None if document.get("max_samples") is None else int(document["max_samples"])
        ),
    )
