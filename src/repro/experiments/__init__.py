"""Experiment harness reproducing every table and figure of the paper."""

from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    run_epsilon_sweep,
    run_eta_sweep,
    run_memory_table,
    run_overall_time,
    run_quality_table,
    run_query_size_sweep,
    run_rho_sweep,
    run_update_cost_curve,
    run_visualisation,
)

__all__ = [
    "format_table",
    "run_memory_table",
    "run_quality_table",
    "run_overall_time",
    "run_update_cost_curve",
    "run_epsilon_sweep",
    "run_eta_sweep",
    "run_rho_sweep",
    "run_query_size_sweep",
    "run_visualisation",
]
