"""Experiment runners — one function per table/figure of the paper.

Each runner builds the relevant workloads on the synthetic dataset
stand-ins, drives the algorithms and returns a list of flat result rows
(dictionaries).  The benchmark modules under ``benchmarks/`` and the CLI
call these functions; DESIGN.md maps each to its table or figure.

Scale knobs (``update_multiplier``, dataset subsets) default to values that
keep the whole harness runnable in minutes on a laptop while preserving the
qualitative shapes of the paper's results (who wins, by how much, where the
crossovers are).  Absolute numbers necessarily differ: the paper measured a
native C++ implementation, this harness measures pure Python, so each row
also carries the operation-count cost model from
:mod:`repro.instrumentation`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.baselines.hscan import IndexedDynamicSCAN
from repro.baselines.pscan import ExactDynamicSCAN
from repro.baselines.scan import scan_labelling, static_scan
from repro.core.api import make_clusterer
from repro.core.config import StrCluParams
from repro.core.dynelm import DynELM
from repro.core.dynstrclu import DynStrClu
from repro.core.result import compute_clusters
from repro.evaluation.quality import quality_report
from repro.evaluation.visualisation import cluster_density_report, epsilon_sweep_summaries
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.similarity import SimilarityKind
from repro.instrumentation import OpCounter
from repro.workloads.datasets import (
    DATASETS,
    QUALITY_DATASETS,
    REPRESENTATIVES,
    dataset_spec,
    load_dataset,
)
from repro.workloads.updates import InsertionStrategy, UpdateWorkload, generate_update_sequence

ALGORITHM_NAMES = ("DynELM", "DynStrClu", "pSCAN", "hSCAN")


# ----------------------------------------------------------------------
# shared plumbing
# ----------------------------------------------------------------------
#: Per-invocation sample cap used by the harness.  The theoretical L_i at
#: rho = 0.01 is in the millions, far beyond what is useful on the synthetic
#: stand-ins; capping keeps the harness interactive while leaving the shapes
#: of the curves intact (documented in DESIGN.md and EXPERIMENTS.md).
HARNESS_MAX_SAMPLES = 128

#: Larger cap used by the quality reproductions (Tables 2 and 3), where the
#: estimate accuracy — not the update throughput — is what the table reports.
QUALITY_MAX_SAMPLES = 1024


def _make_params(
    epsilon: float,
    mu: int,
    rho: float,
    similarity: SimilarityKind | str,
    seed: int = 0,
    max_samples: int = HARNESS_MAX_SAMPLES,
) -> StrCluParams:
    return StrCluParams(
        epsilon=epsilon,
        mu=mu,
        rho=rho,
        delta_star=0.01,
        similarity=SimilarityKind(similarity),
        seed=seed,
        max_samples=max_samples,
    )


#: Paper algorithm names → backend-registry keys (repro.core.api).
BACKEND_KEYS = {
    "DynELM": "dynelm",
    "DynStrClu": "dynstrclu",
    "pSCAN": "pscan",
    "hSCAN": "hscan",
    "SCAN": "scan-exact",
}


def _make_algorithm(
    name: str,
    params: StrCluParams,
    counter: OpCounter,
):
    """Instantiate a competing algorithm through the backend registry."""
    key = BACKEND_KEYS.get(name, name)
    try:
        return make_clusterer(key, params, counter=counter)
    except ValueError as exc:
        raise ValueError(f"unknown algorithm {name!r}") from exc


def _build_workload(
    dataset: str,
    update_multiplier: float,
    strategy: InsertionStrategy | str,
    eta: float,
    seed: int = 0,
) -> UpdateWorkload:
    spec = dataset_spec(dataset)
    edges = spec.load()
    num_updates = int(update_multiplier * len(edges))
    return generate_update_sequence(
        n=spec.num_vertices,
        initial_edges=edges,
        num_updates=num_updates,
        strategy=strategy,
        eta=eta,
        seed=seed,
    )


def _drive(algorithm, workload: UpdateWorkload) -> float:
    """Apply the whole workload and return elapsed wall-clock seconds."""
    start = time.perf_counter()
    for update in workload.all_updates():
        algorithm.apply(update)
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# Table 1: dataset meta information and memory footprint
# ----------------------------------------------------------------------
def run_memory_table(
    datasets: Optional[Sequence[str]] = None,
    update_multiplier: float = 1.0,
    epsilon: float = 0.2,
    mu: int = 5,
    rho: float = 0.01,
    similarity: SimilarityKind | str = SimilarityKind.JACCARD,
) -> List[Dict[str, object]]:
    """Reproduce Table 1: #vertices, #edges, #updates and peak memory words."""
    names = list(datasets) if datasets is not None else list(DATASETS)
    rows: List[Dict[str, object]] = []
    for name in names:
        workload = _build_workload(name, update_multiplier, InsertionStrategy.RANDOM_RANDOM, 0.0)
        row: Dict[str, object] = {
            "dataset": name,
            "paper_name": dataset_spec(name).paper_name,
            "vertices": dataset_spec(name).num_vertices,
            "edges": len(workload.initial_edges),
            "updates": workload.total_updates,
        }
        params = _make_params(epsilon, mu, rho, similarity)
        # memory is sampled periodically rather than after every update:
        # memory_words() walks the structures, and the peak over the sequence
        # is what Table 1 reports
        sample_every = max(1, workload.total_updates // 64)
        for algo_name in ALGORITHM_NAMES:
            counter = OpCounter()
            algorithm = _make_algorithm(algo_name, params, counter)
            peak = 0
            for index, update in enumerate(workload.all_updates(), start=1):
                algorithm.apply(update)
                if index % sample_every == 0 or index == workload.total_updates:
                    peak = max(peak, algorithm.memory_words())
            row[f"{algo_name}_memory_words"] = peak
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Tables 2 and 3: approximate clustering quality
# ----------------------------------------------------------------------
def run_quality_table(
    similarity: SimilarityKind | str = SimilarityKind.JACCARD,
    rhos: Sequence[float] = (0.01, 0.5),
    datasets: Optional[Sequence[str]] = None,
    mu: int = 5,
    top_ks: Sequence[int] = (1, 5, 10, 20, 50, 100),
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Reproduce Table 2 (Jaccard) / Table 3 (cosine): quality vs the exact result."""
    kind = SimilarityKind(similarity)
    if datasets is None:
        datasets = QUALITY_DATASETS if kind is SimilarityKind.JACCARD else REPRESENTATIVES
    rows: List[Dict[str, object]] = []
    for name in datasets:
        spec = dataset_spec(name)
        epsilon = (
            spec.default_epsilon_jaccard
            if kind is SimilarityKind.JACCARD
            else spec.default_epsilon_cosine
        )
        edges = spec.load()
        graph = DynamicGraph(edges)
        exact_labels = scan_labelling(graph, epsilon, kind)
        exact_clustering = compute_clusters(graph, exact_labels, mu)
        for rho in rhos:
            params = _make_params(
                epsilon, mu, rho, kind, seed=seed, max_samples=QUALITY_MAX_SAMPLES
            )
            approx = DynELM.from_edges(edges, params)
            approx_labels = approx.labels
            approx_clustering = approx.clustering()
            report = quality_report(
                dataset=name,
                rho=rho,
                epsilon=epsilon,
                graph=graph,
                exact_labels=exact_labels,
                approx_labels=approx_labels,
                exact_clustering=exact_clustering,
                approx_clustering=approx_clustering,
                top_ks=top_ks,
            )
            rows.append(report.row())
    return rows


# ----------------------------------------------------------------------
# Figure 7: overall running time, all datasets, four algorithms
# ----------------------------------------------------------------------
def run_overall_time(
    datasets: Optional[Sequence[str]] = None,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    update_multiplier: float = 1.0,
    epsilon: float = 0.2,
    mu: int = 5,
    rho: float = 0.01,
    eta: float = 0.0,
    strategy: InsertionStrategy | str = InsertionStrategy.RANDOM_RANDOM,
    similarity: SimilarityKind | str = SimilarityKind.JACCARD,
) -> List[Dict[str, object]]:
    """Reproduce Figure 7: total time (and op counts) for the full update sequence."""
    names = list(datasets) if datasets is not None else list(DATASETS)
    rows: List[Dict[str, object]] = []
    for name in names:
        workload = _build_workload(name, update_multiplier, strategy, eta)
        params = _make_params(epsilon, mu, rho, similarity)
        for algo_name in algorithms:
            counter = OpCounter()
            algorithm = _make_algorithm(algo_name, params, counter)
            elapsed = _drive(algorithm, workload)
            rows.append(
                {
                    "dataset": name,
                    "algorithm": algo_name,
                    "updates": workload.total_updates,
                    "seconds": elapsed,
                    "avg_update_us": 1e6 * elapsed / workload.total_updates,
                    "similarity_evals": counter.get("similarity_eval"),
                    "neighbour_probes": counter.get("neighbour_probe"),
                    "samples": counter.get("sample"),
                    "heap_ops": counter.get("heap_op"),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figures 8 and 11: average update cost versus update timestamp
# ----------------------------------------------------------------------
def run_update_cost_curve(
    datasets: Optional[Sequence[str]] = None,
    algorithms: Sequence[str] = ("DynStrClu", "pSCAN", "hSCAN"),
    strategies: Sequence[InsertionStrategy | str] = (
        InsertionStrategy.RANDOM_RANDOM,
        InsertionStrategy.DEGREE_RANDOM,
        InsertionStrategy.DEGREE_DEGREE,
    ),
    update_multiplier: float = 1.0,
    checkpoints: int = 10,
    epsilon: float = 0.2,
    mu: int = 5,
    rho: float = 0.01,
    eta: float = 0.0,
    similarity: SimilarityKind | str = SimilarityKind.JACCARD,
    max_samples: int = HARNESS_MAX_SAMPLES,
) -> List[Dict[str, object]]:
    """Reproduce Figure 8 (Jaccard) / Figure 11 (cosine): avg update cost over time."""
    names = list(datasets) if datasets is not None else list(REPRESENTATIVES)
    rows: List[Dict[str, object]] = []
    for name in names:
        for strategy in strategies:
            workload = _build_workload(name, update_multiplier, strategy, eta)
            updates = list(workload.all_updates())
            step = max(1, len(updates) // checkpoints)
            params = _make_params(epsilon, mu, rho, similarity, max_samples=max_samples)
            for algo_name in algorithms:
                counter = OpCounter()
                algorithm = _make_algorithm(algo_name, params, counter)
                start = time.perf_counter()
                for index, update in enumerate(updates, start=1):
                    algorithm.apply(update)
                    if index % step == 0 or index == len(updates):
                        elapsed = time.perf_counter() - start
                        rows.append(
                            {
                                "dataset": name,
                                "strategy": str(InsertionStrategy(strategy)),
                                "algorithm": algo_name,
                                "timestamp": index,
                                "avg_update_us": 1e6 * elapsed / index,
                                "ops_per_update": counter.total() / index,
                            }
                        )
    return rows


# ----------------------------------------------------------------------
# Figures 9, 10 and 12(a): parameter sweeps
# ----------------------------------------------------------------------
def run_epsilon_sweep(
    epsilons: Sequence[float] = (0.1, 0.15, 0.2, 0.25, 0.3),
    datasets: Optional[Sequence[str]] = None,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    update_multiplier: float = 1.0,
    mu: int = 5,
    rho: float = 0.01,
    max_samples: int = HARNESS_MAX_SAMPLES,
) -> List[Dict[str, object]]:
    """Reproduce Figure 9: overall running time versus ε."""
    names = list(datasets) if datasets is not None else list(REPRESENTATIVES)
    rows: List[Dict[str, object]] = []
    for name in names:
        workload = _build_workload(name, update_multiplier, InsertionStrategy.RANDOM_RANDOM, 0.0)
        for epsilon in epsilons:
            params = _make_params(epsilon, mu, rho, SimilarityKind.JACCARD, max_samples=max_samples)
            for algo_name in algorithms:
                counter = OpCounter()
                algorithm = _make_algorithm(algo_name, params, counter)
                elapsed = _drive(algorithm, workload)
                rows.append(
                    {
                        "dataset": name,
                        "epsilon": epsilon,
                        "algorithm": algo_name,
                        "seconds": elapsed,
                        "ops": counter.total(),
                    }
                )
    return rows


def run_eta_sweep(
    etas: Sequence[float] = (0.0, 0.01, 0.1, 0.2, 0.5),
    datasets: Optional[Sequence[str]] = None,
    algorithms: Sequence[str] = ALGORITHM_NAMES,
    update_multiplier: float = 1.0,
    epsilon: float = 0.2,
    mu: int = 5,
    rho: float = 0.01,
    max_samples: int = HARNESS_MAX_SAMPLES,
) -> List[Dict[str, object]]:
    """Reproduce Figure 10: overall running time versus the deletion ratio η."""
    names = list(datasets) if datasets is not None else list(REPRESENTATIVES)
    rows: List[Dict[str, object]] = []
    for name in names:
        for eta in etas:
            workload = _build_workload(
                name, update_multiplier, InsertionStrategy.RANDOM_RANDOM, eta
            )
            params = _make_params(epsilon, mu, rho, SimilarityKind.JACCARD, max_samples=max_samples)
            for algo_name in algorithms:
                counter = OpCounter()
                algorithm = _make_algorithm(algo_name, params, counter)
                elapsed = _drive(algorithm, workload)
                rows.append(
                    {
                        "dataset": name,
                        "eta": eta,
                        "algorithm": algo_name,
                        "seconds": elapsed,
                        "ops": counter.total(),
                    }
                )
    return rows


def run_rho_sweep(
    rhos: Sequence[float] = (0.01, 0.1, 0.5),
    datasets: Optional[Sequence[str]] = None,
    update_multiplier: float = 1.0,
    epsilon: float = 0.2,
    mu: int = 5,
) -> List[Dict[str, object]]:
    """Reproduce Figure 12(a): DynELM overall running time versus ρ."""
    names = list(datasets) if datasets is not None else list(REPRESENTATIVES)
    rows: List[Dict[str, object]] = []
    for name in names:
        workload = _build_workload(name, update_multiplier, InsertionStrategy.RANDOM_RANDOM, 0.0)
        for rho in rhos:
            params = _make_params(epsilon, mu, rho, SimilarityKind.JACCARD)
            counter = OpCounter()
            algorithm = DynELM(params, counter=counter)
            elapsed = _drive(algorithm, workload)
            rows.append(
                {
                    "dataset": name,
                    "rho": rho,
                    "seconds": elapsed,
                    "relabel_invocations": algorithm.strategy.invocations,
                    "samples": counter.get("sample"),
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figure 12(b): cluster-group-by query time versus query size
# ----------------------------------------------------------------------
def run_query_size_sweep(
    query_sizes: Sequence[int] = (2, 8, 32, 128, 512),
    datasets: Optional[Sequence[str]] = None,
    epsilon: float = 0.2,
    mu: int = 5,
    rho: float = 0.01,
    queries_per_size: int = 20,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Reproduce Figure 12(b): group-by query time versus |Q|."""
    import random as _random

    names = list(datasets) if datasets is not None else list(REPRESENTATIVES)
    rows: List[Dict[str, object]] = []
    for name in names:
        spec = dataset_spec(name)
        edges = spec.load()
        params = _make_params(epsilon, mu, rho, SimilarityKind.JACCARD)
        algorithm = DynStrClu.from_edges(edges, params)
        vertices = list(algorithm.graph.vertices())
        rng = _random.Random(seed)
        for size in query_sizes:
            size = min(size, len(vertices))
            start = time.perf_counter()
            for _ in range(queries_per_size):
                query = rng.sample(vertices, size)
                algorithm.group_by(query)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "dataset": name,
                    "query_size": size,
                    "avg_query_us": 1e6 * elapsed / queries_per_size,
                }
            )
    return rows


# ----------------------------------------------------------------------
# Figures 4, 5, 6: visualisation statistics
# ----------------------------------------------------------------------
def run_visualisation(
    datasets: Optional[Sequence[str]] = None,
    similarity: SimilarityKind | str = SimilarityKind.JACCARD,
    mu: int = 5,
    epsilon_sweep: Optional[Sequence[float]] = None,
    top_k: int = 20,
) -> List[Dict[str, object]]:
    """Reproduce Figures 4/6 (per-dataset top-20 density stats) and Figure 5 (ε sweep)."""
    kind = SimilarityKind(similarity)
    names = list(datasets) if datasets is not None else list(REPRESENTATIVES)
    rows: List[Dict[str, object]] = []
    for name in names:
        spec = dataset_spec(name)
        edges = spec.load()
        graph = DynamicGraph(edges)
        default_eps = (
            spec.default_epsilon_jaccard
            if kind is SimilarityKind.JACCARD
            else spec.default_epsilon_cosine
        )
        epsilons = list(epsilon_sweep) if epsilon_sweep else [default_eps]
        clusterings = {eps: static_scan(graph, eps, mu, kind) for eps in epsilons}
        for summary in epsilon_sweep_summaries(graph, clusterings, k=top_k):
            summary_row: Dict[str, object] = {"dataset": name, "similarity": str(kind)}
            summary_row.update(summary)
            rows.append(summary_row)
    return rows
