"""Plain-text rendering of experiment result rows.

Every runner in :mod:`repro.experiments.runner` returns a list of flat
dictionaries ("rows"); the helpers here render them as aligned text tables
so benchmarks and the CLI can print results that line up with the paper's
tables and figure series.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table.

    Parameters
    ----------
    rows:
        The result rows; missing keys render as empty cells.
    columns:
        Optional explicit column order; defaults to the union of keys in
        first-appearance order.
    title:
        Optional heading line.
    """
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    table: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        table.append([_format_value(row.get(c, "")) for c in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(table[0]))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for line in table[1:]:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as CSV text (used by the CLI ``--csv`` flag)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(c) for c in columns)]
    for row in rows:
        lines.append(",".join(_format_value(row.get(c, "")) for c in columns))
    return "\n".join(lines)


def series_by(rows: Sequence[Mapping[str, object]], key: str) -> Dict[object, List[Mapping[str, object]]]:
    """Group rows by the value of ``key`` (used to print figure series)."""
    grouped: Dict[object, List[Mapping[str, object]]] = {}
    for row in rows:
        grouped.setdefault(row.get(key), []).append(row)
    return grouped
