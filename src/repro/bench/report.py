"""Capacity-report assembly: host fingerprint, percentile tables, schema.

Every report produced by the bench harness (and, since this module
landed, the standalone ``benchmarks/bench_*.py`` scripts too) embeds

* ``host`` — cpu count, python version/implementation, platform — so a
  number measured on a 2-vCPU CI runner is never mistaken for one from a
  16-core workstation, and
* the *effective knobs* (the spec echo) — so "74 updates/s" always comes
  with the ``rho`` that dominated it.

The consolidated document is ``BENCH_capacity.json``: one entry per
executed spec with p50/p90/p99 ingest+query latency, achieved vs offered
throughput, per-stage server-side timing scraped from ``/metrics``, and
(when enabled) the max-sustainable-rate search transcript.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Dict, List, Mapping, Optional, Sequence

from repro import __version__
from repro.service.metrics import LatencyHistogram

#: Bumped when the report layout changes incompatibly; the gate refuses
#: reports from the future so a stale checkout cannot mis-read them.
SCHEMA_VERSION = 1

BENCHMARK_NAME = "capacity_matrix"


def host_fingerprint() -> Dict[str, object]:
    """The comparability block embedded in every benchmark report."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "repro_version": __version__,
    }


def histogram_summary_ms(histogram: LatencyHistogram) -> Dict[str, float]:
    """p50/p90/p99 + mean of a client-side latency histogram, in ms."""
    return {
        "count": float(histogram.count),
        "p50_ms": histogram.percentile(50) * 1e3,
        "p90_ms": histogram.percentile(90) * 1e3,
        "p99_ms": histogram.percentile(99) * 1e3,
        "mean_ms": histogram.mean * 1e3,
    }


def percentile_from_buckets(
    bounds: Sequence[float], cumulative: Sequence[float], p: float
) -> float:
    """Approximate percentile from Prometheus-style cumulative buckets.

    ``bounds`` are the finite upper bounds (ascending) and ``cumulative``
    the matching cumulative counts, with one trailing entry for ``+Inf``
    allowed in either form.  Linear interpolation inside the winning
    bucket, matching how Prometheus' ``histogram_quantile`` reads the same
    data — close enough for a report table, exact at bucket edges.
    """
    if not cumulative:
        return 0.0
    total = cumulative[-1]
    if total <= 0:
        return 0.0
    target = total * min(max(p, 0.0), 100.0) / 100.0
    previous_bound = 0.0
    previous_count = 0.0
    for index, count in enumerate(cumulative):
        if count >= target:
            upper = (
                bounds[index] if index < len(bounds) else previous_bound
            )
            width = upper - previous_bound
            in_bucket = count - previous_count
            if width <= 0 or in_bucket <= 0:
                return upper
            fraction = (target - previous_count) / in_bucket
            return previous_bound + width * fraction
        previous_count = count
        if index < len(bounds):
            previous_bound = bounds[index]
    return previous_bound


def stage_table_from_samples(
    samples: Sequence[object], tenants: Sequence[str]
) -> Dict[str, Dict[str, float]]:
    """Fold scraped ``repro_ingest_stage_seconds`` samples per stage.

    ``samples`` are :class:`repro.service.obs.Sample` records from
    :func:`parse_prometheus_text`; only the benched ``tenants``' series
    are folded (the default tenant's idle series would dilute the means).
    Returns ``{stage: {count, mean_ms, p50_ms, p99_ms}}`` with the
    percentiles interpolated from the merged cumulative buckets.
    """
    sums: Dict[str, float] = {}
    counts: Dict[str, float] = {}
    buckets: Dict[str, Dict[float, float]] = {}
    wanted = set(tenants)
    for sample in samples:
        labels = getattr(sample, "labels", {})
        if labels.get("tenant") not in wanted:
            continue
        stage = labels.get("stage")
        if stage is None:
            continue
        name = getattr(sample, "name", "")
        if name == "repro_ingest_stage_seconds_sum":
            sums[stage] = sums.get(stage, 0.0) + sample.value
        elif name == "repro_ingest_stage_seconds_count":
            counts[stage] = counts.get(stage, 0.0) + sample.value
        elif name == "repro_ingest_stage_seconds_bucket":
            bound = labels.get("le", "+Inf")
            upper = float("inf") if bound == "+Inf" else float(bound)
            per_stage = buckets.setdefault(stage, {})
            per_stage[upper] = per_stage.get(upper, 0.0) + sample.value
    table: Dict[str, Dict[str, float]] = {}
    for stage in sorted(counts):
        count = counts.get(stage, 0.0)
        entry: Dict[str, float] = {
            "count": count,
            "mean_ms": (sums.get(stage, 0.0) / count * 1e3) if count else 0.0,
        }
        per_stage = buckets.get(stage, {})
        if per_stage:
            bounds = sorted(b for b in per_stage if b != float("inf"))
            cumulative = [per_stage[b] for b in bounds]
            if float("inf") in per_stage:
                cumulative.append(per_stage[float("inf")])
            entry["p50_ms"] = percentile_from_buckets(bounds, cumulative, 50) * 1e3
            entry["p99_ms"] = percentile_from_buckets(bounds, cumulative, 99) * 1e3
        table[stage] = entry
    return table


def build_report(
    spec_results: Sequence[Mapping[str, object]],
    matrix_path: Optional[str] = None,
) -> Dict[str, object]:
    """Assemble the consolidated capacity document."""
    return {
        "benchmark": BENCHMARK_NAME,
        "schema_version": SCHEMA_VERSION,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "matrix": matrix_path,
        "host": host_fingerprint(),
        "specs": list(spec_results),
    }


def summary_rows(report: Mapping[str, object]) -> List[Dict[str, object]]:
    """Flatten a capacity report into printable per-spec rows."""
    rows: List[Dict[str, object]] = []
    for entry in report.get("specs", []):  # type: ignore[union-attr]
        if "error" in entry:
            rows.append({"spec": entry.get("name"), "error": entry["error"]})
            continue
        ingest = entry.get("ingest", {})
        query = entry.get("query", {})
        saturation = entry.get("saturation") or {}
        rows.append(
            {
                "spec": entry.get("name"),
                "offered_upd_s": round(
                    float(ingest.get("offered_updates_per_second", 0.0)), 1
                ),
                "achieved_upd_s": round(
                    float(ingest.get("achieved_updates_per_second", 0.0)), 1
                ),
                "ingest_p50_ms": round(float(ingest.get("p50_ms", 0.0)), 3),
                "ingest_p99_ms": round(float(ingest.get("p99_ms", 0.0)), 3),
                "query_p50_ms": round(float(query.get("p50_ms", 0.0)), 3),
                "query_p99_ms": round(float(query.get("p99_ms", 0.0)), 3),
                "max_sustainable_upd_s": (
                    round(
                        float(saturation["max_sustainable_updates_per_second"]), 1
                    )
                    if "max_sustainable_updates_per_second" in saturation
                    else "-"
                ),
            }
        )
    return rows


def render_summary(report: Mapping[str, object]) -> str:
    """Human table for the CLI (lazy import keeps bench -> experiments thin)."""
    from repro.experiments.reporting import format_table

    host = report.get("host", {})
    title = (
        f"capacity matrix — {len(report.get('specs', []))} specs, "
        f"{host.get('cpu_count')} cpus, python {host.get('python')}"
    )
    return format_table(summary_rows(report), title=title)
