"""Benchmark regression gates: committed floors instead of YAML asserts.

``benchmarks/floors.json`` is the single reviewed home of every perf
floor/ceiling this repository enforces.  ``repro bench gate REPORT...
--floors benchmarks/floors.json`` loads one or more ``BENCH_*.json``
reports, matches each against the gate whose ``benchmark`` field it
carries, evaluates every check, prints a verdict table and exits
non-zero on any violation — the CI job shells out to exactly that, so a
floor changes only when a human edits (and a reviewer approves) the
floors file.

Floors contract
---------------
::

    {
      "schema_version": 1,
      "gates": [
        {
          "benchmark": "sharded_throughput",
          "checks": [
            {"metric": "speedup_4x", "min": 1.5,
             "reason": "4-shard ingest scaling floor (PR 4)"},
            {"metric": "config.verified_equivalence", "equals": true}
          ]
        }
      ]
    }

A check names a dot-path ``metric`` into the report document (``*``
fans out over every element of a list — each fanned-out value must pass)
and exactly one bound form: ``min`` / ``max`` (numeric, optionally with
``"exclusive": true`` for a strict inequality and ``"tolerance": t`` for
a relative band of ``t * |bound|``) or ``equals`` (exact, type-strict
for booleans).  A metric path that resolves to nothing is a *failure*,
not a skip — a renamed report field must never silently disarm a gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Bumped when the floors contract changes incompatibly.
FLOORS_SCHEMA_VERSION = 1

_CHECK_KEYS = ("metric", "min", "max", "equals", "exclusive", "tolerance", "reason")
_GATE_KEYS = ("benchmark", "checks")


class FloorsError(ValueError):
    """A malformed floors file (schema violations, fail-fast)."""


# ----------------------------------------------------------------------
# floors loading + schema validation
# ----------------------------------------------------------------------
def validate_floors(document: object, source: str = "<floors>") -> List[str]:
    """Every schema problem in the document (empty list == valid)."""
    problems: List[str] = []
    if not isinstance(document, Mapping):
        return [f"{source}: floors document must be an object"]
    unknown = sorted(set(document) - {"schema_version", "gates"})
    if unknown:
        problems.append(
            f"{source}: unknown key(s) {', '.join(map(repr, unknown))}"
        )
    version = document.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        problems.append(f"{source}: schema_version must be an integer")
    elif version > FLOORS_SCHEMA_VERSION:
        problems.append(
            f"{source}: schema_version {version} is newer than the "
            f"supported {FLOORS_SCHEMA_VERSION}"
        )
    gates = document.get("gates")
    if not isinstance(gates, Sequence) or isinstance(gates, (str, bytes)):
        problems.append(f"{source}: gates must be a list")
        return problems
    seen_benchmarks: Dict[str, int] = {}
    for g_index, gate in enumerate(gates):
        where = f"{source}: gates[{g_index}]"
        if not isinstance(gate, Mapping):
            problems.append(f"{where}: must be an object")
            continue
        unknown = sorted(set(gate) - set(_GATE_KEYS))
        if unknown:
            problems.append(
                f"{where}: unknown key(s) {', '.join(map(repr, unknown))}"
            )
        benchmark = gate.get("benchmark")
        if not isinstance(benchmark, str) or not benchmark:
            problems.append(f"{where}: benchmark must be a non-empty string")
        else:
            if benchmark in seen_benchmarks:
                problems.append(
                    f"{where}: duplicate gate for benchmark {benchmark!r} "
                    f"(first at gates[{seen_benchmarks[benchmark]}])"
                )
            seen_benchmarks.setdefault(benchmark, g_index)
        checks = gate.get("checks")
        if (
            not isinstance(checks, Sequence)
            or isinstance(checks, (str, bytes))
            or not checks
        ):
            problems.append(f"{where}: checks must be a non-empty list")
            continue
        for c_index, check in enumerate(checks):
            c_where = f"{where}.checks[{c_index}]"
            if not isinstance(check, Mapping):
                problems.append(f"{c_where}: must be an object")
                continue
            unknown = sorted(set(check) - set(_CHECK_KEYS))
            if unknown:
                problems.append(
                    f"{c_where}: unknown key(s) {', '.join(map(repr, unknown))}"
                )
            metric = check.get("metric")
            if not isinstance(metric, str) or not metric:
                problems.append(f"{c_where}: metric must be a non-empty string")
            bounds = [key for key in ("min", "max", "equals") if key in check]
            if not bounds:
                problems.append(
                    f"{c_where}: needs at least one of min / max / equals"
                )
            if "equals" in check and ("min" in check or "max" in check):
                problems.append(
                    f"{c_where}: equals cannot be combined with min/max"
                )
            for bound in ("min", "max"):
                value = check.get(bound)
                if bound in check and (
                    isinstance(value, bool) or not isinstance(value, (int, float))
                ):
                    problems.append(f"{c_where}: {bound} must be a number")
            tolerance = check.get("tolerance", 0)
            if isinstance(tolerance, bool) or not isinstance(
                tolerance, (int, float)
            ) or tolerance < 0:
                problems.append(f"{c_where}: tolerance must be a number >= 0")
            elif tolerance and "equals" in check:
                problems.append(
                    f"{c_where}: tolerance only applies to min/max bounds"
                )
            if not isinstance(check.get("exclusive", False), bool):
                problems.append(f"{c_where}: exclusive must be a boolean")
            elif check.get("exclusive") and "equals" in check:
                problems.append(
                    f"{c_where}: exclusive only applies to min/max bounds"
                )
    return problems


def load_floors(path: "str | Path") -> Dict[str, object]:
    """Read, parse and schema-validate a floors file (raises FloorsError)."""
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise FloorsError(f"cannot read floors file {path}: {exc}") from exc
    try:
        document = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise FloorsError(f"{path}: malformed JSON: {exc}") from exc
    problems = validate_floors(document, source=str(path))
    if problems:
        raise FloorsError("; ".join(problems))
    return document


# ----------------------------------------------------------------------
# metric resolution
# ----------------------------------------------------------------------
def resolve_metric(
    document: object, path: str
) -> List[Tuple[str, object]]:
    """Resolve a dot-path into ``[(concrete_path, value), ...]``.

    ``*`` fans out over every element of a list (the capacity report's
    ``specs.*....`` form); a digit segment indexes a list; anything else
    is a dict key.  Raises :class:`KeyError` naming the first segment
    that fails to resolve.
    """
    results: List[Tuple[List[str], object]] = [([], document)]
    for segment in path.split("."):
        next_results: List[Tuple[List[str], object]] = []
        for trail, value in results:
            where = ".".join(trail) or "<root>"
            if segment == "*":
                if not isinstance(value, Sequence) or isinstance(
                    value, (str, bytes)
                ):
                    raise KeyError(
                        f"{where}: '*' needs a list, got {type(value).__name__}"
                    )
                if not value:
                    raise KeyError(f"{where}: '*' over an empty list")
                for index, item in enumerate(value):
                    next_results.append((trail + [str(index)], item))
            elif segment.isdigit() and isinstance(value, Sequence) and not isinstance(
                value, (str, bytes)
            ):
                index = int(segment)
                if index >= len(value):
                    raise KeyError(
                        f"{where}: index {index} out of range ({len(value)} items)"
                    )
                next_results.append((trail + [segment], value[index]))
            elif isinstance(value, Mapping) and segment in value:
                next_results.append((trail + [segment], value[segment]))
            else:
                raise KeyError(f"{where}: no key {segment!r}")
        results = next_results
    return [(".".join(trail), value) for trail, value in results]


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CheckResult:
    """Verdict of one check against one resolved metric value."""

    report: str
    benchmark: str
    metric: str
    constraint: str
    ok: bool
    value: object = None
    detail: str = ""
    reason: str = ""

    def row(self) -> Dict[str, object]:
        return {
            "report": self.report,
            "metric": self.metric,
            "value": self.value if self.value is not None else "-",
            "constraint": self.constraint,
            "status": "ok" if self.ok else "FAIL",
            "detail": self.detail or self.reason,
        }


def _constraint_text(check: Mapping[str, object]) -> str:
    parts: List[str] = []
    strict = bool(check.get("exclusive", False))
    tolerance = float(check.get("tolerance", 0) or 0)
    if "min" in check:
        op = ">" if strict else ">="
        parts.append(f"{op} {check['min']}")
    if "max" in check:
        op = "<" if strict else "<="
        parts.append(f"{op} {check['max']}")
    if "equals" in check:
        parts.append(f"== {json.dumps(check['equals'])}")
    if tolerance:
        parts.append(f"(±{tolerance:g} band)")
    return " and ".join(parts)


def _evaluate_value(
    check: Mapping[str, object], value: object
) -> Tuple[bool, str]:
    """Apply one check's bounds to one concrete value."""
    if "equals" in check:
        expected = check["equals"]
        if isinstance(expected, bool):
            ok = isinstance(value, bool) and value == expected
        elif isinstance(value, bool):
            ok = False  # true is not a number for a numeric equals
        else:
            ok = value == expected
        return ok, "" if ok else f"got {json.dumps(value, default=repr)}"
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False, f"not a number: {json.dumps(value, default=repr)}"
    strict = bool(check.get("exclusive", False))
    tolerance = float(check.get("tolerance", 0) or 0)
    if "min" in check:
        floor = float(check["min"])  # type: ignore[arg-type]
        effective = floor - abs(floor) * tolerance
        if (value <= effective) if strict else (value < effective):
            return False, (
                f"{value} below floor {floor}"
                + (f" (tolerance band {effective:g})" if tolerance else "")
            )
    if "max" in check:
        ceiling = float(check["max"])  # type: ignore[arg-type]
        effective = ceiling + abs(ceiling) * tolerance
        if (value >= effective) if strict else (value > effective):
            return False, (
                f"{value} above ceiling {ceiling}"
                + (f" (tolerance band {effective:g})" if tolerance else "")
            )
    return True, ""


def evaluate_report(
    report: Mapping[str, object],
    floors: Mapping[str, object],
    report_name: str = "<report>",
) -> List[CheckResult]:
    """All check verdicts for one report against the floors document.

    A report whose ``benchmark`` has no gate yields no results (other
    report kinds may ride in the same artifact); a report *missing* the
    ``benchmark`` field is a failure — it cannot be matched to a gate.
    """
    benchmark = report.get("benchmark")
    if not isinstance(benchmark, str) or not benchmark:
        return [
            CheckResult(
                report=report_name,
                benchmark="?",
                metric="benchmark",
                constraint="present",
                ok=False,
                detail="report has no 'benchmark' field; cannot match a gate",
            )
        ]
    results: List[CheckResult] = []
    for gate in floors.get("gates", []):  # type: ignore[union-attr]
        if gate.get("benchmark") != benchmark:
            continue
        for check in gate.get("checks", []):
            metric = str(check.get("metric"))
            constraint = _constraint_text(check)
            reason = str(check.get("reason", ""))
            try:
                resolved = resolve_metric(report, metric)
            except KeyError as exc:
                results.append(
                    CheckResult(
                        report=report_name,
                        benchmark=benchmark,
                        metric=metric,
                        constraint=constraint,
                        ok=False,
                        detail=f"metric missing: {exc.args[0]}",
                        reason=reason,
                    )
                )
                continue
            for concrete_path, value in resolved:
                ok, detail = _evaluate_value(check, value)
                results.append(
                    CheckResult(
                        report=report_name,
                        benchmark=benchmark,
                        metric=concrete_path,
                        constraint=constraint,
                        ok=ok,
                        value=value,
                        detail=detail,
                        reason=reason,
                    )
                )
    return results


@dataclass
class GateOutcome:
    """Everything the CLI needs to print and exit."""

    results: List[CheckResult] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    unmatched: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors and all(result.ok for result in self.results)

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "checks": [result.row() for result in self.results],
            "failed": sum(1 for result in self.results if not result.ok),
            "unmatched_reports": list(self.unmatched),
            "errors": list(self.errors),
        }


def gate_reports(
    report_paths: Sequence["str | Path"],
    floors_path: "str | Path",
    floors: Optional[Mapping[str, object]] = None,
) -> GateOutcome:
    """Evaluate every report file against the floors file."""
    outcome = GateOutcome()
    if floors is None:
        try:
            floors = load_floors(floors_path)
        except FloorsError as exc:
            outcome.errors.append(str(exc))
            return outcome
    for path in report_paths:
        path = Path(path)
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            outcome.errors.append(f"cannot read report {path}: {exc}")
            continue
        if not isinstance(report, Mapping):
            outcome.errors.append(f"{path}: report must be a JSON object")
            continue
        results = evaluate_report(report, floors, report_name=path.name)
        if not results:
            outcome.unmatched.append(
                f"{path.name} (benchmark {report.get('benchmark')!r} has no gate)"
            )
        outcome.results.extend(results)
    return outcome
