"""Declarative capacity-bench specs: the matrix file and its expansion.

A *matrix file* (JSON, or TOML on interpreters that ship :mod:`tomllib`)
declares a set of benchmark specs without writing any code::

    {
      "defaults": {"dataset": "email", "updates": 600, "rho": 0.0},
      "matrix":   {"shards": [1, 4], "rate": [0, 800]},
      "specs":    [{"name": "chain", "replicas": {"chain_depth": 1}}]
    }

``defaults`` seeds every spec, ``matrix`` is expanded as a full cross
product of its axes (here 2 x 2 = 4 specs), and ``specs`` appends
explicit one-off entries.  Every produced spec is a :class:`BenchSpec` —
a frozen, fully-validated bundle of knobs the runner can execute and the
report can echo verbatim (the echo is what makes cross-run numbers
comparable).

Unknown keys are rejected *loudly*, naming the offender and the accepted
set — the same contract the v1 HTTP surface applies to unknown query
parameters.  A typo in a matrix file must fail at parse time, never
mid-bench.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

try:  # python >= 3.11; on 3.10 TOML matrix files are rejected with a hint
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback
    tomllib = None  # type: ignore[assignment]

#: Backends the service registry accepts (kept in sync lazily: the server
#: re-validates at tenant creation, this is the fail-fast copy).
KNOWN_BACKENDS = ("dynstrclu", "dynelm", "scan-exact", "pscan", "hscan")


class SpecError(ValueError):
    """A malformed matrix file or spec (the 400 of the bench surface)."""


def _reject_unknown(
    document: Mapping[str, object], accepted: Iterable[str], where: str
) -> None:
    accepted_set = set(accepted)
    unknown = sorted(set(document) - accepted_set)
    if unknown:
        raise SpecError(
            f"{where}: unknown key(s) {', '.join(map(repr, unknown))}; "
            f"accepted: {', '.join(sorted(accepted_set))}"
        )


@dataclass(frozen=True)
class ReplicaTopology:
    """Replica shape hung off a spec's primary server.

    ``fanout`` chains of ``chain_depth`` standbys each are attached below
    the primary (``chain_depth=2, fanout=1`` is primary -> A -> B; depth 1
    with fanout 2 is two direct standbys).  ``chain_depth == 0`` means no
    replication at all.  With ``read_from_standbys`` the load generator
    drives query traffic through the replica-set client (reads routed to
    the least-lagged standby), exercising the read-load-balancing path.
    """

    chain_depth: int = 0
    fanout: int = 1
    read_from_standbys: bool = True

    def __post_init__(self) -> None:
        if self.chain_depth < 0:
            raise SpecError("replicas.chain_depth must be >= 0")
        if self.fanout < 1:
            raise SpecError("replicas.fanout must be >= 1")

    @property
    def standby_count(self) -> int:
        return self.chain_depth * self.fanout

    def as_dict(self) -> Dict[str, object]:
        return {
            "chain_depth": self.chain_depth,
            "fanout": self.fanout,
            "read_from_standbys": self.read_from_standbys,
        }

    @classmethod
    def from_document(cls, document: Mapping[str, object]) -> "ReplicaTopology":
        _reject_unknown(
            document,
            ("chain_depth", "fanout", "read_from_standbys"),
            "replicas",
        )
        return cls(
            chain_depth=int(document.get("chain_depth", 0)),
            fanout=int(document.get("fanout", 1)),
            read_from_standbys=bool(document.get("read_from_standbys", True)),
        )


@dataclass(frozen=True)
class BenchSpec:
    """One fully-resolved benchmark configuration.

    Attributes mirror the knobs of the serving stack end to end: engine
    shape (``backend`` x ``shards``), tenancy (``tenants`` driven
    concurrently with disjoint vertex spaces), offered load (open-loop
    ``rate`` in updates/second; 0 means "as fast as possible"), workload
    shape (dataset, update count, batch/query mix, clustering params) and
    replica topology.  ``saturation_search`` additionally runs the
    bisection for the maximum sustainable rate under ``slo_p99_ms``.
    """

    name: str
    backend: str = "dynstrclu"
    shards: int = 1
    tenants: int = 1
    rate: float = 0.0  # offered updates/second; 0 = unthrottled
    dataset: str = "email"
    # Generated updates appended after the initial dataset edge insertions
    # (paper recipe); the driven stream is ``len(dataset edges) + updates``.
    updates: int = 600
    ingest_batch: int = 16
    query_ratio: float = 0.2
    query_size: int = 16
    epsilon: float = 0.3
    mu: int = 2
    rho: float = 0.0
    seed: int = 0
    durable: bool = False
    queue_capacity: int = 8192
    replicas: ReplicaTopology = field(default_factory=ReplicaTopology)
    slo_p99_ms: float = 250.0
    saturation_search: bool = False
    saturation_rounds: int = 4
    probe_seconds: float = 2.0

    def __post_init__(self) -> None:
        if not self.name or any(ch.isspace() for ch in self.name):
            raise SpecError("spec name must be non-empty and whitespace-free")
        if self.backend not in KNOWN_BACKENDS:
            raise SpecError(
                f"spec {self.name!r}: unknown backend {self.backend!r}; "
                f"accepted: {', '.join(KNOWN_BACKENDS)}"
            )
        if self.shards < 1:
            raise SpecError(f"spec {self.name!r}: shards must be >= 1")
        if self.tenants < 1:
            raise SpecError(f"spec {self.name!r}: tenants must be >= 1")
        if self.rate < 0:
            raise SpecError(f"spec {self.name!r}: rate must be >= 0")
        if self.updates < 1:
            raise SpecError(f"spec {self.name!r}: updates must be >= 1")
        if self.ingest_batch < 1:
            raise SpecError(f"spec {self.name!r}: ingest_batch must be >= 1")
        if not 0.0 <= self.query_ratio < 1.0:
            raise SpecError(
                f"spec {self.name!r}: query_ratio must be in [0, 1) — an "
                "all-query spec would never drain its update stream"
            )
        if self.query_size < 1:
            raise SpecError(f"spec {self.name!r}: query_size must be >= 1")
        if self.queue_capacity < 1:
            raise SpecError(f"spec {self.name!r}: queue_capacity must be >= 1")
        if self.slo_p99_ms <= 0:
            raise SpecError(f"spec {self.name!r}: slo_p99_ms must be > 0")
        if self.saturation_rounds < 1:
            raise SpecError(f"spec {self.name!r}: saturation_rounds must be >= 1")
        if self.probe_seconds <= 0:
            raise SpecError(f"spec {self.name!r}: probe_seconds must be > 0")
        if self.replicas.chain_depth and not self.durable:
            # replication ships the primary's WAL: force the durable path
            # rather than failing deep inside tenant creation
            object.__setattr__(self, "durable", True)

    @property
    def tenant_names(self) -> List[str]:
        return [f"t{i}" for i in range(self.tenants)]

    def as_dict(self) -> Dict[str, object]:
        """The effective-knob echo embedded in every report."""
        document = dataclasses.asdict(self)
        document["replicas"] = self.replicas.as_dict()
        return document


#: Spec fields settable from a matrix file (everything except the name,
#: which only explicit spec entries may carry).
_SPEC_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(BenchSpec) if f.name != "name"
)


def _build_spec(name: str, document: Mapping[str, object]) -> BenchSpec:
    kwargs: Dict[str, object] = {}
    for key, value in document.items():
        if key == "replicas":
            if not isinstance(value, Mapping):
                raise SpecError(
                    f"spec {name!r}: replicas must be an object, "
                    f"got {type(value).__name__}"
                )
            kwargs[key] = ReplicaTopology.from_document(value)
        else:
            kwargs[key] = value
    try:
        return BenchSpec(name=name, **kwargs)  # type: ignore[arg-type]
    except TypeError as exc:  # non-mapping garbage for a scalar field
        raise SpecError(f"spec {name!r}: {exc}") from exc


def _auto_name(document: Mapping[str, object], axes: Sequence[str]) -> str:
    """A readable deterministic name from the expanded axis values."""
    parts: List[str] = []
    for axis in axes:
        value = document[axis]
        if axis == "replicas" and isinstance(value, Mapping):
            depth = value.get("chain_depth", 0)
            fanout = value.get("fanout", 1)
            parts.append(f"chain{depth}x{fanout}")
        elif axis == "rate":
            parts.append("ratemax" if not value else f"rate{value:g}")
        elif isinstance(value, bool):
            parts.append(f"{axis}{'on' if value else 'off'}")
        else:
            parts.append(f"{axis}{value}")
    return "-".join(parts) if parts else "spec"


def expand_matrix(
    document: Mapping[str, object], source: str = "<matrix>"
) -> List[BenchSpec]:
    """Expand a parsed matrix document into the full, validated spec list."""
    if not isinstance(document, Mapping):
        raise SpecError(f"{source}: matrix document must be an object")
    _reject_unknown(document, ("defaults", "matrix", "specs"), source)
    defaults = document.get("defaults", {})
    if not isinstance(defaults, Mapping):
        raise SpecError(f"{source}: defaults must be an object")
    _reject_unknown(defaults, _SPEC_FIELDS, f"{source}: defaults")

    specs: List[BenchSpec] = []
    axes_document = document.get("matrix", {})
    if not isinstance(axes_document, Mapping):
        raise SpecError(f"{source}: matrix must be an object of axis lists")
    _reject_unknown(axes_document, _SPEC_FIELDS, f"{source}: matrix")
    if axes_document:
        axes = sorted(axes_document)
        for axis in axes:
            values = axes_document[axis]
            if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
                raise SpecError(
                    f"{source}: matrix axis {axis!r} must be a list of values"
                )
            if not values:
                raise SpecError(f"{source}: matrix axis {axis!r} is empty")
        for combo in itertools.product(*(axes_document[axis] for axis in axes)):
            merged: Dict[str, object] = dict(defaults)
            merged.update(dict(zip(axes, combo)))
            specs.append(_build_spec(_auto_name(merged, axes), merged))

    explicit = document.get("specs", [])
    if not isinstance(explicit, Sequence) or isinstance(explicit, (str, bytes)):
        raise SpecError(f"{source}: specs must be a list of objects")
    for index, entry in enumerate(explicit):
        if not isinstance(entry, Mapping):
            raise SpecError(f"{source}: specs[{index}] must be an object")
        _reject_unknown(
            entry, _SPEC_FIELDS + ("name",), f"{source}: specs[{index}]"
        )
        merged = dict(defaults)
        merged.update({k: v for k, v in entry.items() if k != "name"})
        name = str(entry.get("name", f"spec{index}"))
        specs.append(_build_spec(name, merged))

    if not specs:
        raise SpecError(f"{source}: no specs — provide 'matrix' axes or 'specs'")
    seen: Dict[str, int] = {}
    unique: List[BenchSpec] = []
    for spec in specs:
        count = seen.get(spec.name, 0)
        seen[spec.name] = count + 1
        if count:
            spec = dataclasses.replace(spec, name=f"{spec.name}-{count + 1}")
        unique.append(spec)
    return unique


def load_matrix(path: "str | Path") -> List[BenchSpec]:
    """Read and expand a JSON (or TOML) matrix file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise SpecError(f"cannot read matrix file {path}: {exc}") from exc
    if path.suffix.lower() == ".toml":
        if tomllib is None:
            raise SpecError(
                f"{path}: TOML matrix files need python >= 3.11 (tomllib); "
                "use the JSON form on this interpreter"
            )
        try:
            document = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as exc:
            raise SpecError(f"{path}: malformed TOML: {exc}") from exc
    else:
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SpecError(f"{path}: malformed JSON: {exc}") from exc
    return expand_matrix(document, source=str(path))


def select_specs(
    specs: Sequence[BenchSpec], only: Optional[Sequence[str]]
) -> List[BenchSpec]:
    """Filter the expanded list down to explicitly named specs."""
    if not only:
        return list(specs)
    by_name = {spec.name: spec for spec in specs}
    missing = [name for name in only if name not in by_name]
    if missing:
        raise SpecError(
            f"unknown spec name(s) {', '.join(map(repr, missing))}; "
            f"expanded matrix has: {', '.join(sorted(by_name))}"
        )
    return [by_name[name] for name in only]
